"""Scenario: unsupervised continual learning over a stream of *tables*.

The Sec. IV-E setting: five binary-classification tables (Bank, Shoppers,
Income, BlastChar, Shrutime analogues) arrive one at a time; the encoder is
a 7-layer MLP, the augmentation is SCARF-style feature corruption, and ~1%
of each table is stored.  Takes ~30 seconds on CPU.

Usage::

    python examples/tabular_continual.py
"""

from repro import ContinualConfig, load_tabular_benchmark, run_method, run_multitask
from repro.utils import format_table


def main() -> None:
    sequence = load_tabular_benchmark("ci")
    for task in sequence:
        positives = task.train.y == task.classes[1]
        print(f"increment {task.task_id}: {task.train.name:15s} "
              f"{len(task.train):4d} rows, positive rate {positives.mean():.3f}")

    config = ContinualConfig(
        epochs=6, optimizer="adam", lr=1e-3, weight_decay=1e-5,
        representation_dim=32, memory_budget=50, replay_batch_size=16)

    rows = []
    multitask = run_multitask(sequence, config, seed=0)
    rows.append(["multitask", f"{100 * multitask.acc():.2f}", "-"])
    for method in ("finetune", "cassle", "edsr"):
        result = run_method(method, sequence, config, seed=0)
        rows.append([method, f"{100 * result.acc():.2f}", f"{100 * result.fgt():.2f}"])
    print()
    print(format_table(["method", "Acc %", "Fgt %"], rows,
                       title="tabular 5-dataset sequence (single seed)"))


if __name__ == "__main__":
    main()
