"""Scenario: build your own continual method on the library's primitives.

Implements "EDSR-lite" from scratch in ~40 lines — random memory selection
plus plain (noise-free) distillation replay — by subclassing
:class:`ContinualMethod` directly, and compares it against Finetune and the
full EDSR.  This is the template for experimenting with new selection /
replay ideas.  Takes ~30 seconds on CPU.

Usage::

    python examples/custom_method.py
"""

import numpy as np

from repro import ContinualConfig, load_image_benchmark, run_method
from repro.continual import ContinualTrainer, build_objective
from repro.continual.method import ContinualMethod
from repro.memory import MemoryBuffer, MemoryRecord
from repro.ssl import DistillationHead
from repro.tensor.tensor import no_grad
from repro.utils import format_table


class EDSRLite(ContinualMethod):
    """Random memory + plain distillation replay (no entropy, no noise)."""

    name = "edsr-lite"
    uses_memory = True

    def __init__(self, objective, config, rng):
        super().__init__(objective, config, rng)
        self.buffer = None
        self.old_objective = None
        self.head = None

    def begin_task(self, task, task_index, n_tasks):
        if self.buffer is None:
            self.buffer = MemoryBuffer(self.config.memory_budget, n_tasks)
        if task_index > 0:
            self.old_objective = self.objective.copy()
            self.old_objective.eval()
            self.head = DistillationHead(self.objective, rng=self.rng)

    def trainable_parameters(self):
        params = self.objective.parameters()
        if self.head is not None:
            params = params + self.head.parameters()
        return params

    def batch_loss(self, view1, view2, raw):
        loss = self.objective.css_loss(view1, view2)
        if self.old_objective is None or self.buffer.is_empty:
            return loss
        idx = self.buffer.sample_batch(self.config.replay_batch_size, self.rng)
        memory_view = self.augment.pipeline(self.buffer.all_samples()[idx], self.rng)
        with no_grad():
            target = self.old_objective.representation(memory_view).numpy()
        return loss + 0.5 * self.head.loss(memory_view, target)

    def end_task(self, task, task_index):
        quota = self.buffer.per_task_quota
        chosen = self.rng.choice(len(task.train), size=min(quota, len(task.train)),
                                 replace=False)
        self.buffer.add(MemoryRecord(task_id=task_index,
                                     samples=task.train.x[chosen].copy()))


def main() -> None:
    sequence = load_image_benchmark("cifar10-like", scale="ci")
    config = ContinualConfig(epochs=8)

    rows = []
    for name in ("finetune", "edsr"):
        result = run_method(name, sequence, config, seed=0)
        rows.append([name, f"{100 * result.acc():.2f}", f"{100 * result.fgt():.2f}"])

    rng = np.random.default_rng(0)
    objective = build_objective(config, sequence[0].train.x.shape[1:], rng)
    custom = EDSRLite(objective, config, rng)
    result = ContinualTrainer(custom, config, rng).run(sequence)
    rows.append([custom.name, f"{100 * result.acc():.2f}", f"{100 * result.fgt():.2f}"])

    print(format_table(["method", "Acc %", "Fgt %"], rows,
                       title="custom method vs built-ins (single seed)"))


if __name__ == "__main__":
    main()
