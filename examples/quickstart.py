"""Quickstart: train EDSR on a class-incremental image benchmark.

Runs the paper's method on the CI-scale CIFAR-10 analogue (5 increments of
2 classes) and prints the accuracy matrix, average accuracy (Eq. 17) and
average forgetting (Eq. 18).  Takes ~10 seconds on CPU.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import ContinualConfig, load_image_benchmark, run_method


def main() -> None:
    sequence = load_image_benchmark("cifar10-like", scale="ci")
    print(f"benchmark: {len(sequence)} increments of {len(sequence[0].classes)} classes, "
          f"{len(sequence[0].train)} train / {len(sequence[0].test)} test samples each")

    config = ContinualConfig(epochs=8)  # defaults: SimSiam, high-entropy, L_rpl
    result = run_method("edsr", sequence, config, seed=0, verbose=True)

    print("\naccuracy matrix A[i, j] (test acc on increment j after learning increment i):")
    with np.printoptions(precision=3, nanstr="  .  "):
        print(result.accuracy_matrix)
    print(f"\nAcc = {100 * result.acc():.2f}%   Fgt = {100 * result.fgt():.2f}%")
    print(f"wall clock: {result.elapsed_seconds:.1f}s")


if __name__ == "__main__":
    main()
