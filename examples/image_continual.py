"""Scenario: compare continual-learning methods on an image sequence.

Reproduces a single-seed slice of the paper's Table III: every method is
trained on the same class-incremental benchmark and ranked by average
accuracy and forgetting.  Also prints each method's forgetting matrix, the
Fig. 4 visualization.  Takes ~1 minute on CPU.

Usage::

    python examples/image_continual.py [benchmark]

where ``benchmark`` is one of cifar10-like (default), cifar100-like,
tiny-imagenet-like, domainnet-like.
"""

import sys

import numpy as np

from repro import ContinualConfig, load_image_benchmark, run_method, run_multitask
from repro.utils import format_heatmap, format_table

METHODS = ["finetune", "si", "der", "lump", "cassle", "edsr"]


def main(benchmark_name: str = "cifar10-like") -> None:
    sequence = load_image_benchmark(benchmark_name, scale="ci")
    config = ContinualConfig(epochs=8)

    rows = []
    matrices = {}
    multitask = run_multitask(sequence, config, seed=0)
    rows.append(["multitask", f"{100 * multitask.acc():.2f}", "-",
                 f"{multitask.elapsed_seconds:.1f}"])
    for method in METHODS:
        result = run_method(method, sequence, config, seed=0)
        matrices[method] = result.forgetting()
        rows.append([method, f"{100 * result.acc():.2f}", f"{100 * result.fgt():.2f}",
                     f"{result.elapsed_seconds:.1f}"])

    print(format_table(["method", "Acc %", "Fgt %", "time s"], rows,
                       title=f"single-seed comparison on {benchmark_name}"))

    for method in ("finetune", "edsr"):
        print()
        print(format_heatmap(matrices[method],
                             title=f"forgetting matrix F[i, j] — {method}"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "cifar10-like")
