"""Scenario: inspect the data-selection strategies directly.

Trains one SimSiam encoder on a single increment, extracts representations,
runs all five Table V selection strategies on the same budget, and scores
each chosen subset with the coding-length entropy of Sec. III-A — the exact
quantity the high-entropy strategy approximately maximizes.  Also shows the
noise scales r(x) (Sec. III-B) of the selected samples.

Usage::

    python examples/selection_playground.py
"""

import numpy as np

from repro import ContinualConfig, load_image_benchmark
from repro.continual import build_objective
from repro.continual.trainer import ContinualTrainer, _build_augment, _build_optimizer, _build_schedule
from repro.data.loader import DataLoader
from repro.eval.protocol import extract_representations
from repro.replay import noise_scales
from repro.selection import SelectionContext, coding_length_entropy, make_strategy
from repro.utils import format_table

BUDGET = 12
STRATEGIES = ["random", "kmeans", "min-var", "distant", "high-entropy"]


def train_one_increment(config, task, rng):
    objective = build_objective(config, task.train.x.shape[1:], rng)
    augment = _build_augment(config, task.train.x)
    optimizer = _build_optimizer(config, objective.parameters())
    schedule = _build_schedule(config, optimizer)
    loader = DataLoader(task.train, config.batch_size, rng=rng)
    for epoch in range(config.epochs):
        schedule.step(epoch)
        for x_batch, _y in loader:
            view1, view2 = augment(x_batch, rng)
            optimizer.zero_grad()
            objective.css_loss(view1, view2).backward()
            optimizer.step()
    return objective, augment


def main() -> None:
    rng = np.random.default_rng(0)
    sequence = load_image_benchmark("cifar10-like", "ci")
    task = sequence[0]
    config = ContinualConfig(epochs=8)
    objective, augment = train_one_increment(config, task, rng)
    representations = extract_representations(objective, task.train.x)

    # min-var needs augmented-view variances
    views = np.stack([extract_representations(objective, augment.pipeline(task.train.x, rng))
                      for _ in range(4)])
    view_variances = views.var(axis=0).mean(axis=1)

    rows = []
    for name in STRATEGIES:
        context = SelectionContext(representations=representations, budget=BUDGET,
                                   rng=np.random.default_rng(1),
                                   view_variances=view_variances, n_groups=2)
        chosen = make_strategy(name).select(context)
        entropy = coding_length_entropy(representations[chosen])
        scales = noise_scales(representations[chosen], representations, k=30, mode="scalar")
        classes = np.bincount(task.train.y[chosen], minlength=int(task.train.y.max()) + 1)
        rows.append([name, f"{entropy:9.1f}", f"{scales.mean():.3f}",
                     "/".join(str(c) for c in classes if c or True)])
    print(format_table(
        ["strategy", "coding-length H(M)", "mean r(x)", "class balance"],
        rows,
        title=f"selection of {BUDGET} from {len(task.train)} samples "
              "(labels shown for inspection only — never used by selection)"))


if __name__ == "__main__":
    main()
