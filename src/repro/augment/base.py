"""Augmentation composition (Eq. 2 of the paper).

An augmentation ``T(x; O_sub)`` applies a sequence of stochastic operations
``o_k`` to a *batch* of samples.  Operating on batches keeps everything
vectorized in numpy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class Augmentation:
    """One stochastic operation ``o(x)`` applied to a batch."""

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class Identity(Augmentation):
    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return x


class Compose(Augmentation):
    """Sequential application ``x_(k) = o_k(x_(k-1))`` (Eq. 2)."""

    def __init__(self, ops: Sequence[Augmentation]):
        self.ops = list(ops)

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for op in self.ops:
            x = op(x, rng)
        return x


class TwoViewAugment:
    """Draws the two positive views ``x_1, x_2`` used by every CSSL loss."""

    def __init__(self, pipeline: Augmentation):
        self.pipeline = pipeline

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        return self.pipeline(x, rng), self.pipeline(x, rng)
