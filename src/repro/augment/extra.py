"""The remaining operations of the paper's example op set.

Sec. II-A1 lists ``{cutout, rotate, flip, colorContrast, resize}`` as an
example operation set ``O``.  The SimSiam pipeline (Sec. IV-A5) uses crop /
flip / jitter / grayscale / blur, implemented in :mod:`repro.augment.image`;
this module supplies the rest so users can compose custom ``O_sub`` subsets
exactly as Eq. 2 describes.
"""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation


class Cutout(Augmentation):
    """Zero a random square patch per sample (DeVries & Taylor 2017)."""

    def __init__(self, size: int = 2, p: float = 0.5, fill: float = 0.0):
        if size < 1:
            raise ValueError("cutout size must be >= 1")
        self.size = size
        self.p = p
        self.fill = fill

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, _c, h, w = x.shape
        if self.size > min(h, w):
            raise ValueError(f"cutout size {self.size} exceeds image size {(h, w)}")
        out = x.copy()
        apply = rng.uniform(size=n) < self.p
        tops = rng.integers(0, h - self.size + 1, size=n)
        lefts = rng.integers(0, w - self.size + 1, size=n)
        for i in np.nonzero(apply)[0]:
            out[i, :, tops[i]:tops[i] + self.size, lefts[i]:lefts[i] + self.size] = self.fill
        return out


class RandomRotate90(Augmentation):
    """Rotate each sample by a random multiple of 90 degrees."""

    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = x.copy()
        apply = rng.uniform(size=len(x)) < self.p
        quarter_turns = rng.integers(1, 4, size=len(x))
        for i in np.nonzero(apply)[0]:
            out[i] = np.rot90(x[i], k=quarter_turns[i], axes=(1, 2))
        return out


class RandomResizedZoom(Augmentation):
    """Zoom into a random sub-window and resize back (the "resize" op).

    A nearest-neighbour implementation of random-resized-crop: a scale
    factor in ``scale_range`` picks a window size, a random offset picks its
    position, and the window is upsampled back to the original resolution.
    """

    def __init__(self, scale_range: tuple[float, float] = (0.6, 1.0), p: float = 0.5):
        low, high = scale_range
        if not 0.0 < low <= high <= 1.0:
            raise ValueError("scale_range must satisfy 0 < low <= high <= 1")
        self.scale_range = scale_range
        self.p = p

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, _c, h, w = x.shape
        out = x.copy()
        apply = rng.uniform(size=n) < self.p
        for i in np.nonzero(apply)[0]:
            scale = rng.uniform(*self.scale_range)
            crop_h = max(1, int(round(h * scale)))
            crop_w = max(1, int(round(w * scale)))
            top = int(rng.integers(0, h - crop_h + 1))
            left = int(rng.integers(0, w - crop_w + 1))
            window = x[i, :, top:top + crop_h, left:left + crop_w]
            rows = np.clip((np.arange(h) * crop_h / h).astype(int), 0, crop_h - 1)
            cols = np.clip((np.arange(w) * crop_w / w).astype(int), 0, crop_w - 1)
            out[i] = window[:, rows][:, :, cols]
        return out
