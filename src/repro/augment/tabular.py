"""Tabular augmentation: SCARF-style feature corruption (``tabularCrop``).

Bahri et al. (SCARF, ICLR 2022): a positive view of a table row replaces a
random subset of features with values drawn from the empirical marginal of
each feature.  The paper adopts this as its tabular augmentation.
"""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation, Compose


class TabularCrop(Augmentation):
    """Corrupt ``corruption_rate`` of each row's features with marginal samples.

    Parameters
    ----------
    corruption_rate:
        Fraction of features replaced per row.
    reference:
        The table (N, F) providing the empirical marginals; typically the
        current training increment.  Must be set (or passed to ``fit``)
        before use.
    """

    def __init__(self, corruption_rate: float = 0.3, reference: np.ndarray | None = None):
        if not 0.0 <= corruption_rate <= 1.0:
            raise ValueError("corruption_rate must be in [0, 1]")
        self.corruption_rate = corruption_rate
        self.reference = None if reference is None else np.asarray(reference, dtype=np.float32)

    def fit(self, reference: np.ndarray) -> "TabularCrop":
        self.reference = np.asarray(reference, dtype=np.float32)
        return self

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.reference is None:
            raise RuntimeError("TabularCrop used before fit(); no marginal reference table")
        n, f = x.shape
        mask = rng.uniform(size=(n, f)) < self.corruption_rate
        # independent marginal draw per (row, feature)
        donor_rows = rng.integers(0, len(self.reference), size=(n, f))
        marginals = self.reference[donor_rows, np.arange(f)[None, :]]
        return np.where(mask, marginals, x).astype(x.dtype)


def tabular_pipeline(reference: np.ndarray, corruption_rate: float = 0.3) -> Compose:
    """The paper's tabular augmentation: a fitted ``tabularCrop``."""
    return Compose([TabularCrop(corruption_rate, reference)])
