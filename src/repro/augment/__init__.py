"""Stochastic data augmentation (Sec. II-A1 / Sec. IV-A5 of the paper).

Image pipeline: {crop, horizontalFlip, colorJitter, grayScale, gaussianBlur}
— the exact operation set the paper lists.  Tabular pipeline: the SCARF-style
``tabularCrop`` feature corruption.  All augmentations are batch functions of
an explicit ``numpy.random.Generator``; ``TwoViewAugment`` draws the two
positive views every CSSL loss consumes.
"""

from repro.augment.base import Augmentation, Compose, TwoViewAugment, Identity
from repro.augment.image import (
    RandomCrop,
    RandomHorizontalFlip,
    ColorJitter,
    RandomGrayscale,
    GaussianBlur,
    simsiam_image_pipeline,
)
from repro.augment.extra import Cutout, RandomResizedZoom, RandomRotate90
from repro.augment.tabular import TabularCrop, tabular_pipeline

__all__ = [
    "Cutout",
    "RandomRotate90",
    "RandomResizedZoom",
    "Augmentation",
    "Compose",
    "TwoViewAugment",
    "Identity",
    "RandomCrop",
    "RandomHorizontalFlip",
    "ColorJitter",
    "RandomGrayscale",
    "GaussianBlur",
    "simsiam_image_pipeline",
    "TabularCrop",
    "tabular_pipeline",
]
