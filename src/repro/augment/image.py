"""Image augmentations, vectorized over (N, C, H, W) batches in [0, 1].

These are numpy re-implementations of the torchvision transforms SimSiam
uses; each applies independently per sample in the batch.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.augment.base import Augmentation, Compose


class RandomCrop(Augmentation):
    """Pad-and-crop: reflect-pad by ``padding`` then crop back at a random offset."""

    def __init__(self, padding: int = 1):
        if padding < 0:
            raise ValueError("padding must be >= 0")
        self.padding = padding

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return x
        p = self.padding
        n, _c, h, w = x.shape
        padded = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), mode="reflect")
        out = np.empty_like(x)
        offsets = rng.integers(0, 2 * p + 1, size=(n, 2))
        for i in range(n):
            dy, dx = offsets[i]
            out[i] = padded[i, :, dy:dy + h, dx:dx + w]
        return out


class RandomHorizontalFlip(Augmentation):
    def __init__(self, p: float = 0.5):
        self.p = p

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flip = rng.uniform(size=len(x)) < self.p
        out = x.copy()
        out[flip] = out[flip, :, :, ::-1]
        return out


class ColorJitter(Augmentation):
    """Per-sample brightness and contrast jitter (the color part of SimSiam's jitter)."""

    def __init__(self, brightness: float = 0.2, contrast: float = 0.2, p: float = 0.8):
        self.brightness = brightness
        self.contrast = contrast
        self.p = p

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = len(x)
        apply = rng.uniform(size=n) < self.p
        bright = rng.uniform(-self.brightness, self.brightness, size=(n, 1, 1, 1))
        contrast = rng.uniform(1 - self.contrast, 1 + self.contrast, size=(n, 1, 1, 1))
        mean = x.mean(axis=(2, 3), keepdims=True)
        jittered = (x - mean) * contrast + mean + bright
        out = np.where(apply[:, None, None, None], jittered, x)
        return np.clip(out, 0.0, 1.0).astype(x.dtype)


class RandomGrayscale(Augmentation):
    def __init__(self, p: float = 0.2):
        self.p = p

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        apply = rng.uniform(size=len(x)) < self.p
        gray = x.mean(axis=1, keepdims=True)
        gray = np.broadcast_to(gray, x.shape)
        return np.where(apply[:, None, None, None], gray, x).astype(x.dtype)


class GaussianBlur(Augmentation):
    def __init__(self, sigma: tuple[float, float] = (0.1, 1.0), p: float = 0.5):
        self.sigma = sigma
        self.p = p

    def __call__(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = x.copy()
        apply = rng.uniform(size=len(x)) < self.p
        sigmas = rng.uniform(self.sigma[0], self.sigma[1], size=len(x))
        for i in np.nonzero(apply)[0]:
            out[i] = ndimage.gaussian_filter(x[i], sigma=(0, sigmas[i], sigmas[i]))
        return out


def simsiam_image_pipeline(padding: int = 1) -> Compose:
    """The paper's image op set: crop, flip, color jitter, grayscale, blur."""
    return Compose([
        RandomCrop(padding=padding),
        RandomHorizontalFlip(),
        ColorJitter(),
        RandomGrayscale(),
        GaussianBlur(),
    ])
