"""Episodic memory for replay-based continual methods."""

from repro.memory.buffer import MemoryBuffer, MemoryRecord

__all__ = ["MemoryBuffer", "MemoryRecord"]
