"""Budget-limited episodic memory (the ``{M_i}`` of Def. 3).

The paper's protocol stores a fixed per-increment quota summing to the
total budget ``s`` (e.g. 640 over 20 CIFAR-100 tasks = 32 per task; Fig. 7
states "32 samples are stored for each data subset").  Besides the raw
samples, the buffer carries per-sample metadata the replay losses need:
the noise scale ``r(x)`` (Sec. III-B) and auxiliary targets (DER stores the
old backbone outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class MemoryRecord:
    """Everything stored for one past increment."""

    task_id: int
    samples: np.ndarray                       # (m, ...) raw inputs
    noise_scales: np.ndarray | None = None    # r(x), EDSR only: (m, d) in the
                                              # default "vector" noise mode,
                                              # (m,) in "scalar" mode
    targets: np.ndarray | None = None         # (m, d) stored outputs, DER only
    labels: np.ndarray | None = None          # (m,) evaluation-only labels

    def __len__(self) -> int:
        return len(self.samples)

    def state_dict(self) -> dict:
        """Serializable snapshot (arrays copied; optional fields stay None)."""
        return {
            "task_id": int(self.task_id),
            "samples": self.samples.copy(),
            "noise_scales": None if self.noise_scales is None else self.noise_scales.copy(),
            "targets": None if self.targets is None else self.targets.copy(),
            "labels": None if self.labels is None else self.labels.copy(),
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MemoryRecord":
        """Rebuild a record from :meth:`state_dict` output."""
        return cls(
            task_id=int(state["task_id"]),
            samples=np.asarray(state["samples"]),
            noise_scales=None if state["noise_scales"] is None else np.asarray(state["noise_scales"]),
            targets=None if state["targets"] is None else np.asarray(state["targets"]),
            labels=None if state["labels"] is None else np.asarray(state["labels"]),
        )


class MemoryBuffer:
    """Fixed total budget split evenly across the expected task count."""

    def __init__(self, total_budget: int, n_tasks: int):
        if total_budget < 0:
            raise ValueError("total_budget must be >= 0")
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        self.total_budget = total_budget
        self.n_tasks = n_tasks
        self.records: list[MemoryRecord] = []

    @property
    def per_task_quota(self) -> int:
        return self.total_budget // self.n_tasks

    def __len__(self) -> int:
        return sum(len(r) for r in self.records)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def unused_budget(self) -> int:
        """Budget the even integer split cannot assign (``s mod n_tasks``)."""
        return self.total_budget - self.per_task_quota * self.n_tasks

    def add(self, record: MemoryRecord) -> None:
        if len(record) > self.per_task_quota:
            hint = ""
            if self.unused_budget:
                hint = (f" (the even split of budget {self.total_budget} over "
                        f"{self.n_tasks} tasks leaves {self.unused_budget} "
                        f"samples of quota unused)")
            raise ValueError(
                f"record of {len(record)} samples exceeds per-task quota "
                f"{self.per_task_quota}{hint}")
        if any(r.task_id == record.task_id for r in self.records):
            raise ValueError(f"task {record.task_id} already stored")
        self.records.append(record)

    def all_samples(self) -> np.ndarray:
        if self.is_empty:
            raise ValueError("memory is empty")
        return np.concatenate([r.samples for r in self.records], axis=0)

    def all_noise_scales(self) -> np.ndarray:
        scales = [r.noise_scales for r in self.records]
        if any(s is None for s in scales):
            raise ValueError("some records lack noise scales")
        ndims = {s.ndim for s in scales}
        if len(ndims) > 1:
            per_task = ", ".join(f"task {r.task_id}: ndim {r.noise_scales.ndim}"
                                 for r in self.records)
            raise ValueError(
                "noise scales mix vector (m, d) and scalar (m,) modes across "
                f"records ({per_task}); store all tasks with the same "
                "noise_mode")
        return np.concatenate(scales, axis=0)

    def all_targets(self) -> np.ndarray:
        targets = [r.targets for r in self.records]
        if any(t is None for t in targets):
            raise ValueError("some records lack stored targets")
        return np.concatenate(targets, axis=0)

    def state_dict(self) -> dict:
        """Serializable snapshot of the buffer: budget split plus all records."""
        return {
            "total_budget": self.total_budget,
            "n_tasks": self.n_tasks,
            "records": [r.state_dict() for r in self.records],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "MemoryBuffer":
        """Rebuild a buffer (and its records) from :meth:`state_dict` output."""
        buffer = cls(int(state["total_budget"]), int(state["n_tasks"]))
        for record_state in state["records"]:
            buffer.add(MemoryRecord.from_state_dict(record_state))
        return buffer

    def sample_batch(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        """Indices of a replay batch drawn uniformly from the whole memory."""
        n = len(self)
        if n == 0:
            raise ValueError("cannot sample from empty memory")
        size = min(batch_size, n)
        return rng.choice(n, size=size, replace=False)
