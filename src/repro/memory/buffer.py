"""Budget-limited episodic memory (the ``{M_i}`` of Def. 3).

The paper's protocol stores a fixed per-increment quota summing to the
total budget ``s`` (e.g. 640 over 20 CIFAR-100 tasks = 32 per task; Fig. 7
states "32 samples are stored for each data subset").  Besides the raw
samples, the buffer carries per-sample metadata the replay losses need:
the noise scale ``r(x)`` (Sec. III-B) and auxiliary targets (DER stores the
old backbone outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class MemoryRecord:
    """Everything stored for one past increment."""

    task_id: int
    samples: np.ndarray                       # (m, ...) raw inputs
    noise_scales: np.ndarray | None = None    # (m,) r(x) values, EDSR only
    targets: np.ndarray | None = None         # (m, d) stored outputs, DER only
    labels: np.ndarray | None = None          # (m,) evaluation-only labels

    def __len__(self) -> int:
        return len(self.samples)


class MemoryBuffer:
    """Fixed total budget split evenly across the expected task count."""

    def __init__(self, total_budget: int, n_tasks: int):
        if total_budget < 0:
            raise ValueError("total_budget must be >= 0")
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        self.total_budget = total_budget
        self.n_tasks = n_tasks
        self.records: list[MemoryRecord] = []

    @property
    def per_task_quota(self) -> int:
        return self.total_budget // self.n_tasks

    def __len__(self) -> int:
        return sum(len(r) for r in self.records)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def add(self, record: MemoryRecord) -> None:
        if len(record) > self.per_task_quota:
            raise ValueError(
                f"record of {len(record)} samples exceeds per-task quota {self.per_task_quota}")
        if any(r.task_id == record.task_id for r in self.records):
            raise ValueError(f"task {record.task_id} already stored")
        self.records.append(record)

    def all_samples(self) -> np.ndarray:
        if self.is_empty:
            raise ValueError("memory is empty")
        return np.concatenate([r.samples for r in self.records], axis=0)

    def all_noise_scales(self) -> np.ndarray:
        scales = [r.noise_scales for r in self.records]
        if any(s is None for s in scales):
            raise ValueError("some records lack noise scales")
        return np.concatenate(scales, axis=0)

    def all_targets(self) -> np.ndarray:
        targets = [r.targets for r in self.records]
        if any(t is None for t in targets):
            raise ValueError("some records lack stored targets")
        return np.concatenate(targets, axis=0)

    def sample_batch(self, batch_size: int, rng: np.random.Generator) -> np.ndarray:
        """Indices of a replay batch drawn uniformly from the whole memory."""
        n = len(self)
        if n == 0:
            raise ValueError("cannot sample from empty memory")
        size = min(batch_size, n)
        return rng.choice(n, size=size, replace=False)
