"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      train one method on one benchmark, print Acc/Fgt and the
             accuracy matrix, optionally save the result JSON; with
             ``--checkpoint-dir`` the run checkpoints atomically after every
             task and ``--resume`` continues a killed run bit-for-bit;
             ``--guardrails`` enables NaN/divergence recovery; ``--scenario``
             routes through the scenario registry (task-free, blurry,
             domain-incremental, long streams) and writes the serialized
             transfer matrix next to the result;
``compare``  train several methods on one benchmark and print a ranking
             table (a single-seed Table III slice); ``--checkpoint-dir`` +
             ``--resume`` checkpoint each method in its own subdirectory and
             skip methods whose results are already complete;
``sweep``    run methods x seeds, saving one result JSON per run into a
             directory; ``--resume`` skips runs whose JSON already exists;
``report``   render a directory of saved results as a markdown report;
``list``     show available benchmarks, methods, selection strategies,
             replay losses, and objectives;
``lint``     run the repo-specific static analysis — single-file rules
             (DET001/AD001/AD002/API001/SER001/PERF001/TAPE001/MP001/RB001)
             and whole-program dataflow rules (DET002/TAPE002/MP002/SER002)
             — plus the gradcheck-coverage audit; supports ``--format``
             text/json/sarif, an incremental cache, and a baseline
             ratchet; exits non-zero on any non-baselined violation;
``chaos``    run the seeded fault-injection campaign: every catalog
             scenario (worker kills, torn checkpoint writes, loader
             faults, NaN payloads, whole-process crashes) end-to-end
             through the trainer plus the checkpoint crash-consistency
             sweep, emitting a JSON survival report; every failure
             reproduces exactly from its ``(seed, scenario)`` pair;
``bench``    run the op-registry microbenchmarks (fused-vs-unfused kernels,
             the SSL training-step bench, the tape eager-vs-replay bench,
             the serial-vs-multiprocess sharded-step bench, and the
             eval-probe bench: SGD vs closed-form ridge probe wall-time,
             accuracy delta, and the shard-merge bit-for-bit check);
             ``--output`` writes the JSON report, ``--smoke`` runs a
             sub-second variant for CI.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.continual import ContinualConfig, run_method, run_multitask
from repro.data import load_image_benchmark, load_tabular_benchmark
from repro.data.registry import IMAGE_PRESETS
from repro.utils import format_table
from repro.utils.serialization import save_result

METHODS = ["finetune", "si", "der", "lump", "cassle", "edsr", "lin", "pfr", "curl"]


def _scenario_names() -> list[str]:
    from repro.scenarios import scenario_names

    return scenario_names()


def _load_benchmark(name: str, scale: str, n_tasks: int | None):
    if name == "tabular":
        return load_tabular_benchmark(scale)
    return load_image_benchmark(name, scale, n_tasks=n_tasks)


def _config_from_args(args: argparse.Namespace) -> ContinualConfig:
    overrides = {}
    for field in ("epochs", "batch_size", "lr", "memory_budget", "replay_batch_size",
                  "noise_neighbors", "selection", "replay_loss", "objective",
                  "replay_sampling", "use_tape", "workers", "probe",
                  "scenario", "scenario_seed", "blur_ratio", "segments_per_task",
                  "drift_threshold", "domain_count", "domain_shift", "long_cycles"):
        value = getattr(args, field, None)
        if value is not None:
            overrides[field] = value
    if args.benchmark == "tabular" and "lr" not in overrides:
        overrides.update(optimizer="adam", lr=1e-3)
    return ContinualConfig().with_overrides(**overrides)


def _add_fault_tolerance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", dest="checkpoint_dir",
                        help="write atomic per-task checkpoints + event log here")
    parser.add_argument("--resume", action="store_true",
                        help="continue from the last good checkpoint in "
                             "--checkpoint-dir (bit-for-bit)")
    parser.add_argument("--guardrails", action="store_true",
                        help="enable divergence guardrails (skip batch -> "
                             "restore with LR backoff -> abort with report)")
    parser.add_argument("--max-grad-norm", dest="max_grad_norm", type=float,
                        help="gradient-norm explosion threshold (implies --guardrails)")
    parser.add_argument("--max-batch-skips", dest="max_batch_skips", type=int,
                        help="skipped batches per task before a restore "
                             "(implies --guardrails)")
    parser.add_argument("--lr-backoff", dest="lr_backoff", type=float,
                        help="LR factor applied per restore (implies --guardrails)")
    parser.add_argument("--max-restores", dest="max_restores", type=int,
                        help="restores per task before aborting (implies --guardrails)")


def _guardrails_from_args(args: argparse.Namespace):
    from repro.runtime import GuardrailPolicy

    overrides = {}
    if args.max_grad_norm is not None:
        overrides["max_grad_norm"] = args.max_grad_norm
    if args.max_batch_skips is not None:
        overrides["max_skips_per_task"] = args.max_batch_skips
    if args.lr_backoff is not None:
        overrides["lr_backoff"] = args.lr_backoff
    if args.max_restores is not None:
        overrides["max_restores_per_task"] = args.max_restores
    if not args.guardrails and not overrides:
        return None
    return GuardrailPolicy(**overrides)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--epochs", type=int)
    parser.add_argument("--batch-size", dest="batch_size", type=int)
    parser.add_argument("--lr", type=float)
    parser.add_argument("--memory-budget", dest="memory_budget", type=int)
    parser.add_argument("--replay-batch-size", dest="replay_batch_size", type=int)
    parser.add_argument("--noise-neighbors", dest="noise_neighbors", type=int)
    parser.add_argument("--selection", choices=["random", "kmeans", "min-var",
                                                "distant", "high-entropy"])
    parser.add_argument("--replay-loss", dest="replay_loss", choices=["css", "dis", "rpl"])
    parser.add_argument("--replay-sampling", dest="replay_sampling",
                        choices=["uniform", "similarity"])
    parser.add_argument("--objective", choices=["simsiam", "barlow", "byol", "vae"])
    parser.add_argument("--probe", choices=["knn", "linear", "ridge"],
                        help="evaluation probe fitted per accuracy-matrix "
                             "cell: knn (paper default), linear (SGD softmax "
                             "head), or ridge (closed-form streaming probe)")
    parser.add_argument("--no-tape", dest="use_tape", action="store_const",
                        const=False, default=None,
                        help="disable tape capture/replay of the training "
                             "step (force eager dispatch)")
    parser.add_argument("--workers", type=int,
                        help="enter the sharded data-parallel regime with N "
                             "processes (bit-for-bit identical for every N; "
                             "1 runs the shard program serially; default: "
                             "classic single-process step)")
    parser.add_argument("--scale", default="ci", choices=["ci", "paper"])
    parser.add_argument("--scenario-seed", dest="scenario_seed", type=int,
                        help="seed for the stream builders (independent of "
                             "the training --seed)")
    parser.add_argument("--blur-ratio", dest="blur_ratio", type=float,
                        help="blurry scenario: fraction of each task's data "
                             "donated to neighbour tasks")
    parser.add_argument("--segments-per-task", dest="segments_per_task", type=int,
                        help="task-free scenario: unsignalled segments per "
                             "base task")
    parser.add_argument("--drift-threshold", dest="drift_threshold", type=float,
                        help="task-free scenario: drift-detector firing "
                             "threshold")
    parser.add_argument("--domain-count", dest="domain_count", type=int,
                        help="domain-incremental scenario: number of domains")
    parser.add_argument("--domain-shift", dest="domain_shift", type=float,
                        help="domain-incremental scenario: nuisance-transform "
                             "strength")
    parser.add_argument("--long-cycles", dest="long_cycles", type=int,
                        help="long-sequence scenario: cycles over the base "
                             "task order")
    parser.add_argument("--n-tasks", dest="n_tasks", type=int)
    parser.add_argument("--seed", type=int, default=0)


def _transfer_output_path(args: argparse.Namespace):
    """Where the serialized TransferMatrix lands for a scenario run."""
    import pathlib

    if args.transfer_output:
        return pathlib.Path(args.transfer_output)
    if args.output:
        out = pathlib.Path(args.output)
        return out.with_name(out.stem + "-transfer.json")
    return pathlib.Path("transfer-matrix.json")


def _command_run(args: argparse.Namespace) -> int:
    sequence = _load_benchmark(args.benchmark, args.scale, args.n_tasks)
    config = _config_from_args(args)
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.method == "multitask":
        result = run_multitask(sequence, config, seed=args.seed, verbose=True)
        print(f"Acc = {100 * result.acc():.2f}%")
        return 0
    transfer = None
    if args.scenario is not None:
        from repro.scenarios import run_scenario_method
        from repro.utils.serialization import save_transfer_matrix

        result, transfer = run_scenario_method(
            args.method, sequence, config, seed=args.seed, verbose=True,
            checkpoint_dir=args.checkpoint_dir, resume=args.resume,
            guardrails=_guardrails_from_args(args))
    else:
        result = run_method(args.method, sequence, config, seed=args.seed,
                            verbose=True, checkpoint_dir=args.checkpoint_dir,
                            resume=args.resume,
                            guardrails=_guardrails_from_args(args))
    print(f"\nAcc = {100 * result.acc():.2f}%   Fgt = {100 * result.fgt():.2f}%   "
          f"time = {result.elapsed_seconds:.1f}s")
    with np.printoptions(precision=3, nanstr="  .  "):
        print(result.accuracy_matrix)
    if transfer is not None:
        summary = transfer.summary()
        cells = "   ".join(
            f"{key} = {100 * value:.2f}%" if value is not None else f"{key} = n/a"
            for key, value in summary.items())
        print(f"transfer[{args.scenario}]: {cells}")
        transfer_path = _transfer_output_path(args)
        save_transfer_matrix(transfer, transfer_path)
        print(f"transfer matrix written to {transfer_path}")
    if args.output:
        save_result(result, args.output)
        print(f"result written to {args.output}")
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    import pathlib

    from repro.utils.serialization import load_result

    sequence = _load_benchmark(args.benchmark, args.scale, args.n_tasks)
    config = _config_from_args(args)
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    guardrails = _guardrails_from_args(args)
    rows = []
    for method in args.methods:
        if method == "multitask":
            result = run_multitask(sequence, config, seed=args.seed)
            rows.append(["multitask", f"{100 * result.acc():.2f}", "-",
                         f"{result.elapsed_seconds:.1f}"])
            continue
        method_dir = result_path = None
        if args.checkpoint_dir:
            method_dir = pathlib.Path(args.checkpoint_dir) / method
            result_path = method_dir / "result.json"
        if args.resume and result_path is not None and result_path.exists():
            result = load_result(result_path)
            if result.complete:
                print(f"{method}: complete result found, skipping training")
                rows.append([method, f"{100 * result.acc():.2f}",
                             f"{100 * result.fgt():.2f}",
                             f"{result.elapsed_seconds:.1f}"])
                continue
        result = run_method(method, sequence, config, seed=args.seed,
                            checkpoint_dir=method_dir, resume=args.resume,
                            guardrails=guardrails)
        if result_path is not None:
            save_result(result, result_path)
        rows.append([method, f"{100 * result.acc():.2f}", f"{100 * result.fgt():.2f}",
                     f"{result.elapsed_seconds:.1f}"])
    print(format_table(["method", "Acc %", "Fgt %", "time s"], rows,
                       title=f"{args.benchmark} ({args.scale} scale, seed {args.seed})"))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    import pathlib

    sequence = _load_benchmark(args.benchmark, args.scale, args.n_tasks)
    config = _config_from_args(args)
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for method in args.methods:
        for seed in range(args.seeds):
            path = out_dir / f"{method}_seed{seed}.json"
            if args.resume and path.exists():
                print(f"{method} seed {seed}: result exists, skipping -> {path}")
                continue
            result = run_method(method, sequence, config, seed=seed)
            save_result(result, path)
            print(f"{method} seed {seed}: Acc={100 * result.acc():.2f} "
                  f"Fgt={100 * result.fgt():.2f} -> {path}")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.utils.report import build_report, write_report

    if args.output:
        path = write_report(args.results_dir, args.output, title=args.title)
        print(f"report written to {path}")
    else:
        print(build_report(args.results_dir, title=args.title))
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis import main as lint_main

    argv = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.format != "text":
        argv += ["--format", args.format]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.update_baseline:
        argv += ["--update-baseline"]
    if args.stats:
        argv += ["--stats"]
    if args.cache:
        argv += ["--cache", args.cache]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.tests:
        argv += ["--tests", args.tests]
    if args.no_coverage:
        argv += ["--no-coverage"]
    return lint_main(argv)


def _command_bench(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.bench import REQUIRED_SPEEDUP, format_report, run_suite

    report = run_suite(smoke=args.smoke, repeats=args.repeats)
    print(format_report(report))
    if args.output:
        path = pathlib.Path(args.output)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"\nbench report written to {path}")
    ssl = report["ssl_step"]
    if "speedup_vs_pre_refactor" in ssl \
            and ssl["speedup_vs_pre_refactor"] < REQUIRED_SPEEDUP:
        return 1
    tape = report.get("tape", {})
    if "required_speedup" in tape \
            and tape["speedup_replay_vs_eager"] < tape["required_speedup"]:
        return 1
    sharding = report.get("sharding", {})
    if "required_speedup" in sharding \
            and sharding["speedup_sharded_vs_serial"] < sharding["required_speedup"]:
        return 1
    probe = report.get("eval_probe", {})
    if "shard_merge" in probe \
            and not probe["shard_merge"]["identical_across_worker_counts"]:
        # The merge contract is shape-independent — enforced even in smoke.
        return 1
    if "required_speedup" in probe \
            and (probe["speedup_ridge_vs_linear"] < probe["required_speedup"]
                 or probe["accuracy_delta"] > probe["max_accuracy_delta"]):
        return 1
    return 0


def _command_chaos(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.faults.chaos import format_campaign, run_campaign
    from repro.faults.scenarios import SCENARIOS, scenario_names

    if args.list_scenarios:
        for name in scenario_names():
            scenario = SCENARIOS[name]
            print(f"{name:24s} expect={scenario.expect:16s} "
                  f"{scenario.description}")
        return 0
    report = run_campaign(seed=args.seed, names=args.scenarios or None,
                          workdir=args.workdir,
                          include_sweep=not args.skip_sweep)
    print(format_campaign(report))
    if args.output:
        path = pathlib.Path(args.output)
        path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"survival report written to {path}")
    return 0 if report["ok"] else 1


def _command_list(_args: argparse.Namespace) -> int:
    print("benchmarks:", ", ".join(sorted(IMAGE_PRESETS)) + ", tabular")
    print("methods:   ", ", ".join(METHODS + ["multitask"]))
    print("selection: ", "random, kmeans, min-var, distant, high-entropy")
    print("replay:    ", "css, dis, rpl (x uniform/similarity sampling)")
    print("objectives:", "simsiam, barlow, byol, vae")
    print("probes:    ", "knn, linear, ridge")
    print("scenarios: ", ", ".join(_scenario_names()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EDSR (ICDE 2024) reproduction — unsupervised continual learning")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="train one method on one benchmark")
    run_parser.add_argument("method", choices=METHODS + ["multitask"])
    run_parser.add_argument("benchmark")
    run_parser.add_argument("--output", help="write the result JSON here")
    run_parser.add_argument("--scenario", choices=_scenario_names(),
                            help="route the run through the scenario registry "
                                 "(stream shape + first-class transfer matrix); "
                                 "default: classic class-incremental trainer "
                                 "path")
    run_parser.add_argument("--transfer-output", dest="transfer_output",
                            help="write the serialized transfer matrix here "
                                 "(default: next to --output, else "
                                 "./transfer-matrix.json)")
    _add_config_arguments(run_parser)
    _add_fault_tolerance_arguments(run_parser)
    run_parser.set_defaults(handler=_command_run)

    compare_parser = subparsers.add_parser("compare", help="rank several methods")
    compare_parser.add_argument("benchmark")
    compare_parser.add_argument("--methods", nargs="+",
                                default=["finetune", "lump", "cassle", "edsr"],
                                choices=METHODS + ["multitask"])
    _add_config_arguments(compare_parser)
    _add_fault_tolerance_arguments(compare_parser)
    compare_parser.set_defaults(handler=_command_compare)

    sweep_parser = subparsers.add_parser("sweep", help="run methods x seeds, save JSONs")
    sweep_parser.add_argument("benchmark")
    sweep_parser.add_argument("out_dir")
    sweep_parser.add_argument("--methods", nargs="+",
                              default=["finetune", "cassle", "edsr"],
                              choices=METHODS)
    sweep_parser.add_argument("--seeds", type=int, default=2)
    sweep_parser.add_argument("--resume", action="store_true",
                              help="skip runs whose result JSON already exists")
    _add_config_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_command_sweep)

    report_parser = subparsers.add_parser("report", help="markdown report from saved results")
    report_parser.add_argument("results_dir")
    report_parser.add_argument("--output", help="write here instead of stdout")
    report_parser.add_argument("--title", default="Experiment report")
    report_parser.set_defaults(handler=_command_report)

    lint_parser = subparsers.add_parser(
        "lint", help="static analysis + gradcheck-coverage audit")
    lint_parser.add_argument("paths", nargs="*", default=["src/repro"],
                             help="files or directories to lint (default: src/repro)")
    lint_parser.add_argument("--select", metavar="CODES",
                             help="comma-separated rule codes (e.g. DET001,AD001)")
    lint_parser.add_argument("--format", default="text",
                             choices=("text", "json", "sarif"),
                             help="report format (default: text)")
    lint_parser.add_argument("--baseline", metavar="FILE",
                             help="accepted-violation baseline (ratchet)")
    lint_parser.add_argument("--update-baseline", action="store_true",
                             help="re-pin the baseline to current violations")
    lint_parser.add_argument("--stats", action="store_true",
                             help="print per-rule counts and cache hit rate")
    lint_parser.add_argument("--cache", metavar="FILE",
                             help="incremental cache file "
                                  "(default: .repro-lint-cache.json)")
    lint_parser.add_argument("--no-cache", action="store_true",
                             help="disable the incremental cache")
    lint_parser.add_argument("--jobs", type=int, metavar="N",
                             help="parallel parse processes")
    lint_parser.add_argument("--tests", metavar="DIR",
                             help="gradcheck test dir (default: tests/tensor)")
    lint_parser.add_argument("--no-coverage", action="store_true",
                             help="skip the gradcheck-coverage audit")
    lint_parser.set_defaults(handler=_command_lint)

    chaos_parser = subparsers.add_parser(
        "chaos", help="seeded fault-injection campaign + crash sweep")
    chaos_parser.add_argument("--seed", type=int, default=0,
                              help="campaign seed; every scenario's fault "
                                   "plan is a pure function of (seed, name)")
    chaos_parser.add_argument("--scenarios", nargs="+", metavar="NAME",
                              help="run only these catalog scenarios "
                                   "(default: all; see --list)")
    chaos_parser.add_argument("--workdir",
                              help="keep run artifacts (checkpoints, event "
                                   "logs) here instead of a temp dir")
    chaos_parser.add_argument("--output", help="write the JSON survival "
                                               "report here")
    chaos_parser.add_argument("--skip-sweep", action="store_true",
                              help="skip the checkpoint crash-consistency "
                                   "sweep")
    chaos_parser.add_argument("--list", dest="list_scenarios",
                              action="store_true",
                              help="list catalog scenarios and exit")
    chaos_parser.set_defaults(handler=_command_chaos)

    bench_parser = subparsers.add_parser(
        "bench", help="op-registry microbenchmarks (fused vs unfused)")
    bench_parser.add_argument("--output", help="write the JSON report here")
    bench_parser.add_argument("--smoke", action="store_true",
                              help="tiny shapes + few repeats (sub-second, for CI)")
    bench_parser.add_argument("--repeats", type=int,
                              help="timed repetitions per bench (default 30, smoke 3)")
    bench_parser.set_defaults(handler=_command_bench)

    list_parser = subparsers.add_parser("list", help="show available components")
    list_parser.set_defaults(handler=_command_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
