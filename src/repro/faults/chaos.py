"""The chaos campaign: seeded failure scenarios run end-to-end.

Each catalog scenario (:mod:`repro.faults.scenarios`) is executed as a
real — tiny — continual run through :class:`ContinualTrainer` with its
fault plan armed, then classified:

``survived``
    the run completed *and* the final checkpoint restores to exactly the
    returned result (timing excluded);
``clean-abort``
    the guardrail ladder aborted with :class:`TrainingDiverged` and wrote
    its structured failure report;
``resume-verified``
    the injected crash killed the run, and a fresh trainer resumed from
    the surviving checkpoints to a result bit-for-bit equal to an
    uninjected reference run;
``FAILED``
    anything else — the report entry carries the scenario's seed and full
    fault plan, so the failure replays exactly via
    ``run_scenario(name, seed=...)``.

Scenarios with ``verify="identical"`` additionally require the injected
run's result to equal the uninjected reference bit-for-bit (the
degradation scenario compares against the uninjected ``workers=1`` run).
:func:`run_campaign` bundles the scenario entries with a crash-consistency
sweep (:mod:`repro.faults.crashsweep`) into one JSON survival report —
the ``repro chaos`` CLI command is a thin wrapper over it.
"""

from __future__ import annotations

import pathlib
import tempfile
from collections import Counter

import numpy as np

from repro.continual.config import ContinualConfig, build_objective
from repro.continual.method import make_method
from repro.continual.trainer import ContinualTrainer
from repro.data.splits import TaskSequence, class_incremental_split
from repro.data.synthetic import SyntheticImageConfig, make_image_dataset
from repro.faults import plane
from repro.faults.crashsweep import run_sweep, states_equal
from repro.faults.scenarios import SCENARIOS, Scenario, build_plan, scenario_names
from repro.runtime.guardrail import GuardrailPolicy, TrainingDiverged

__all__ = ["format_campaign", "run_campaign", "run_scenario"]

#: The method every scenario trains (shard- and tape-safe, cheapest).
METHOD = "finetune"


def chaos_sequence() -> TaskSequence:
    """The fixed tiny benchmark every scenario runs: 3 tasks, 3 steps each.

    Scenario hit ranges (:mod:`repro.faults.scenarios`) are tuned to this
    shape — 24 train samples per task, batch 8, one epoch — so faults
    always land inside the run.
    """
    config = SyntheticImageConfig(
        n_classes=6, train_per_class=12, test_per_class=6,
        image_size=8, seed=11, name="chaos")
    train, test = make_image_dataset(config)
    return class_incremental_split(train, test, 3)


def chaos_config(workers: int | None = None,
                 use_tape: bool = True) -> ContinualConfig:
    """The run configuration scenarios train under (seconds per scenario)."""
    return ContinualConfig(
        epochs=1, batch_size=8, representation_dim=16,
        memory_budget=12, replay_batch_size=8, noise_neighbors=5, knn_k=5,
        workers=workers, use_tape=use_tape)


def _policy(scenario: Scenario) -> GuardrailPolicy:
    overrides = dict(scenario.policy_overrides)
    overrides.setdefault("anomaly_mode", scenario.anomaly)
    return GuardrailPolicy(**overrides)


def _run_target(scenario: Scenario, sequence: TaskSequence,
                config: ContinualConfig):
    """What the trainer consumes: the sharp sequence, or — for scenarios
    with a ``stream`` — the registry-built stream over it.

    Streams are pure functions of ``(scenario_seed, params)``, so every
    leg (injected, resume, reference) rebuilds the identical stream.
    """
    if scenario.stream is None:
        return sequence
    from repro.scenarios import build_stream

    return build_stream(scenario.stream, sequence,
                        config.with_overrides(scenario=scenario.stream))


def _build_trainer(config: ContinualConfig, seed: int, sequence: TaskSequence,
                   checkpoint_dir, policy: GuardrailPolicy) -> ContinualTrainer:
    rng = np.random.default_rng(seed)
    sample_shape = sequence[0].train.x.shape[1:]
    objective = build_objective(config, sample_shape, rng)
    method = make_method(METHOD, objective, config, rng)
    return ContinualTrainer(method, config, rng,
                            checkpoint_dir=checkpoint_dir, guardrails=policy)


def _comparable(result_state: dict) -> dict:
    """A result state with wall-clock timing dropped (never bit-stable)."""
    return {key: value for key, value in result_state.items()
            if key != "elapsed_seconds"}


def _reference_state(scenario: Scenario, seed: int, sequence: TaskSequence,
                     cache: dict) -> dict:
    """The uninjected reference result for ``scenario``'s run shape.

    Cached per (workers, use_tape, anomaly, stream) — the knobs that
    select the dispatch path and the stream the trainer consumes;
    scenarios sharing a shape share the reference.
    """
    workers = (scenario.reference_workers
               if scenario.reference_workers is not None else scenario.workers)
    key = (workers, scenario.use_tape, scenario.anomaly, scenario.stream)
    if key not in cache:
        config = chaos_config(workers=workers, use_tape=scenario.use_tape)
        policy = GuardrailPolicy(anomaly_mode=scenario.anomaly)
        trainer = _build_trainer(config, seed, sequence, None, policy)
        target = _run_target(scenario, sequence, config)
        cache[key] = _comparable(trainer.run(target).state_dict())
    return cache[key]


def _resume_leg(scenario: Scenario, seed: int, sequence: TaskSequence,
                run_dir, policy: GuardrailPolicy, config: ContinualConfig,
                references: dict, crash: plane.InjectedCrash):
    """After an injected crash: resume unfaulted, demand bit-for-bit."""
    try:
        trainer = _build_trainer(config, seed, sequence, run_dir, policy)
        result = trainer.run(_run_target(scenario, sequence, config),
                             resume=True)
    except Exception as exc:  # noqa: BLE001 - classified, not propagated
        return "FAILED", (f"resume after crash failed: "
                          f"{type(exc).__name__}: {exc}"), None
    reference = _reference_state(scenario, seed, sequence, references)
    if states_equal(reference, _comparable(result.state_dict())):
        return ("resume-verified",
                f"crashed at {crash.site}, resumed bit-for-bit", result)
    return ("FAILED",
            "resumed result diverges from the uninterrupted run", result)


def run_scenario(name: str, seed: int = 0,
                 workdir: str | pathlib.Path = ".",
                 sequence: TaskSequence | None = None,
                 references: dict | None = None) -> dict:
    """Run one scenario; returns its JSON-safe report entry.

    Deterministic end to end: the fault plan is a pure function of
    ``(seed, name)`` and the run itself is seeded, so a FAILED entry
    reproduces from exactly the two values it records.
    """
    scenario = SCENARIOS[name]
    if sequence is None:
        sequence = chaos_sequence()
    if references is None:
        references = {}
    plan = build_plan(seed, name)
    run_dir = pathlib.Path(workdir) / name
    config = chaos_config(workers=scenario.workers, use_tape=scenario.use_tape)
    policy = _policy(scenario)
    trainer = _build_trainer(config, seed, sequence, run_dir, policy)

    result = None
    detail = ""
    try:
        with plane.armed(plan):
            result = trainer.run(_run_target(scenario, sequence, config))
        outcome = "survived"
    except TrainingDiverged as exc:
        outcome = "clean-abort"
        detail = str(exc)
        if exc.report_path is None or not pathlib.Path(exc.report_path).exists():
            outcome = "FAILED"
            detail = "aborted without writing a failure report"
    except plane.InjectedCrash as crash:
        outcome, detail, result = _resume_leg(
            scenario, seed, sequence, run_dir, policy, config, references,
            crash)
    except Exception as exc:  # noqa: BLE001 - classified, not propagated
        outcome = "FAILED"
        detail = f"{type(exc).__name__}: {exc}"

    if outcome == "survived":
        loaded = trainer.checkpoints.load_latest()
        if loaded is None or not states_equal(
                _comparable(loaded.state["result"]),
                _comparable(result.state_dict())):
            outcome = "FAILED"
            detail = "final checkpoint does not restore to the run result"
        elif scenario.verify == "identical":
            reference = _reference_state(scenario, seed, sequence, references)
            if not states_equal(reference, _comparable(result.state_dict())):
                outcome = "FAILED"
                detail = "result differs from the uninjected reference run"

    return {
        "scenario": name,
        "seed": seed,
        "expected": scenario.expect,
        "outcome": outcome,
        "ok": outcome == scenario.expect,
        "detail": detail,
        "plan": plan.describe(),
    }


def run_campaign(seed: int = 0, names: list[str] | None = None,
                 workdir: str | pathlib.Path | None = None,
                 include_sweep: bool = True) -> dict:
    """Run scenarios (default: the full catalog) plus the crash sweep.

    Returns the JSON survival report; ``report["ok"]`` is true only when
    every scenario met its expected outcome and (when included) the crash
    sweep covered every registered boundary without a corrupt load.
    """
    if names is None:
        names = scenario_names()
    own_tmp = None
    if workdir is None:
        own_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = own_tmp.name
    try:
        sequence = chaos_sequence()
        references: dict = {}
        entries = [run_scenario(name, seed=seed, workdir=workdir,
                                sequence=sequence, references=references)
                   for name in names]
        report = {
            "seed": seed,
            "scenarios": entries,
            "summary": dict(Counter(entry["outcome"] for entry in entries)),
            "ok": all(entry["ok"] for entry in entries),
        }
        if include_sweep:
            sweep = run_sweep(pathlib.Path(workdir) / "crash-sweep", seed=seed)
            report["crash_sweep"] = sweep
            report["ok"] = report["ok"] and sweep["ok"]
        return report
    finally:
        if own_tmp is not None:
            own_tmp.cleanup()


def format_campaign(report: dict) -> str:
    """Human-readable summary table of a campaign report."""
    from repro.utils import format_table

    rows = [[entry["scenario"], entry["expected"], entry["outcome"],
             "ok" if entry["ok"] else "FAIL", entry["detail"][:60]]
            for entry in report["scenarios"]]
    table = format_table(["scenario", "expected", "outcome", "", "detail"],
                         rows, title=f"chaos campaign (seed {report['seed']})")
    lines = [table]
    sweep = report.get("crash_sweep")
    if sweep is not None:
        bad = [case for case in sweep["cases"] if not case["ok"]]
        lines.append(
            f"crash sweep: {len(sweep['cases'])} boundaries, "
            f"coverage {'complete' if sweep['coverage']['complete'] else 'INCOMPLETE'}, "
            f"{len(bad)} failure(s)")
    lines.append(f"overall: {'OK' if report['ok'] else 'FAILED'}")
    return "\n".join(lines)
