"""Deterministic fault injection and the chaos campaign harness.

``repro.faults`` is the robustness substrate of the repo: a seed-
reproducible fault-injection *plane* threaded through every I/O and IPC
choke point (checkpoint writes, worker pool send/recv/spawn, the engine
dispatch, the data loader, the trainer's task boundary), plus the
harnesses that drive it:

- :mod:`repro.faults.plane` — :class:`FaultPlan`/:class:`FaultEvent`, the
  ``fault_point``/``corrupt``/``take_torn`` site primitives, and the
  process-local arming state (zero-overhead no-ops while disarmed);
- :mod:`repro.faults.scenarios` — the scenario catalog: a pure function
  of ``(seed, scenario)`` to a concrete plan, so every chaos failure is
  replayable from two integers and a name;
- :mod:`repro.faults.crashsweep` — the checkpoint crash-consistency
  sweep: re-runs ``CheckpointManager.save`` in a subprocess, SIGKILLs it
  at every registered I/O boundary in turn, and asserts ``load_latest``
  always yields the previous or the new checkpoint bit-for-bit — never a
  corrupt hybrid;
- :mod:`repro.faults.chaos` — the end-to-end campaign: N seeded
  scenarios through the full trainer (guardrails + checkpoints armed),
  classified survived / clean-abort / resume-verified / FAILED into a
  JSON survival report (``repro chaos``).

The heavyweight harnesses import the trainer, so they are *not* imported
here — ``from repro.faults.chaos import run_campaign`` explicitly.

See DESIGN.md ("Failure model") for the fault taxonomy, the site
registry, and the degradation ladder.
"""

from repro.faults.plane import (
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    InjectedCrash,
    InjectedIOError,
    InjectedTornWrite,
    InjectedWorkerError,
    arm,
    armed,
    corrupt,
    current_plan,
    disarm,
    fault_point,
    site_counts,
    take_torn,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "InjectedCrash",
    "InjectedIOError",
    "InjectedTornWrite",
    "InjectedWorkerError",
    "arm",
    "armed",
    "corrupt",
    "current_plan",
    "disarm",
    "fault_point",
    "site_counts",
    "take_torn",
]
