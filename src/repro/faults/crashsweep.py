"""Crash-consistency sweep of the checkpoint write path.

For every registered I/O boundary in ``CheckpointManager.save`` (the
``CHECKPOINT_SITES`` registry in :mod:`repro.runtime.checkpoint`), the
sweep re-runs a save in a forked subprocess with a ``kill`` event armed
at exactly that site — the process is SIGKILLed mid-write — then asserts
the invariant the atomic protocol promises:

    after a crash at *any* boundary, ``load_latest()`` yields either the
    previous checkpoint or the new one, bit-for-bit — never a corrupt
    hybrid, and never nothing.

Two torn-write cases (truncated bytes at the final path of each file)
ride along in-process, covering the corruption mode SIGKILL alone cannot
produce.  A probe pass runs one uninjected save under an empty armed plan
and compares the sites actually observed against the registry, so adding
an I/O boundary to ``save`` without registering its site fails the sweep
rather than silently shrinking coverage.
"""

from __future__ import annotations

import multiprocessing
import os
import pathlib
import signal

import numpy as np

from repro.faults import plane
from repro.runtime.checkpoint import (CHECKPOINT_SITES, CheckpointManager,
                                      flatten_state)

__all__ = ["run_sweep", "states_equal"]

#: Seconds the parent waits for one killed child before declaring it hung.
CHILD_TIMEOUT = 60.0


def states_equal(a: dict, b: dict) -> bool:
    """Bit-for-bit equality of two checkpointable state trees.

    Both trees are flattened with the checkpoint serializer, so the
    comparison covers exactly what a checkpoint round-trips: the JSON
    tree must match exactly and every array must match in dtype, shape
    and bytes (NaNs compare equal — a partially recorded accuracy matrix
    is NaN-padded by construction).
    """
    tree_a, arrays_a = flatten_state(a)
    tree_b, arrays_b = flatten_state(b)
    if tree_a != tree_b or set(arrays_a) != set(arrays_b):
        return False
    for key, left in arrays_a.items():
        right = arrays_b[key]
        if left.dtype != right.dtype or left.shape != right.shape:
            return False
        equal_nan = left.dtype.kind == "f"
        if not np.array_equal(left, right, equal_nan=equal_nan):
            return False
    return True


def _demo_state(task_index: int, seed: int) -> dict:
    """A small deterministic state tree standing in for real run state."""
    rng = np.random.default_rng([seed, task_index, 0xC4A5])
    return {
        "task_index": task_index,
        "weights": {
            "w": rng.normal(size=(16, 8)).astype(np.float32),
            "b": rng.normal(size=(8,)).astype(np.float32),
        },
        "note": f"sweep-state-{task_index}",
    }


def _sweep_child(directory: str, site: str, seed: int) -> None:
    """Child body: arm a kill at ``site`` and attempt the task-1 save."""
    plan = plane.FaultPlan(seed=seed, scenario=f"kill@{site}",
                           events=(plane.FaultEvent(site=site, kind="kill"),))
    plane.arm(plan)
    CheckpointManager(directory).save(1, _demo_state(1, seed))
    # Reached only when the armed site never fired on the save path; a
    # distinctive clean exit the parent reports as a coverage gap.
    os._exit(3)


def _pick_context() -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _clear_task1(directory: pathlib.Path) -> None:
    """Remove whatever a (possibly killed) task-1 save left behind."""
    for leftover in directory.glob("ckpt-00001*"):
        leftover.unlink(missing_ok=True)


def _classify_load(manager: CheckpointManager, state_a: dict,
                   state_b: dict) -> tuple[str, bool]:
    """What ``load_latest`` yields after the crash: previous/new/corrupt."""
    loaded = manager.load_latest()
    if loaded is None:
        return "nothing", False
    if loaded.task_index == 1:
        return "new", states_equal(loaded.state, state_b)
    if loaded.task_index == 0:
        return "previous", states_equal(loaded.state, state_a)
    return f"unexpected task {loaded.task_index}", False


def run_sweep(directory: str | pathlib.Path, seed: int = 0,
              timeout: float = CHILD_TIMEOUT) -> dict:
    """Run the full crash sweep in ``directory``; returns a JSON-safe report.

    The report's ``ok`` is true only when the probe pass observed exactly
    the registered boundary set *and* every kill/torn case loaded a
    bit-for-bit previous-or-new checkpoint.
    """
    directory = pathlib.Path(directory)
    manager = CheckpointManager(directory)
    state_a = _demo_state(0, seed)
    state_b = _demo_state(1, seed)
    manager.save(0, state_a)

    # Probe pass: one uninjected save under an empty armed plan records
    # which sites the write path actually visits.
    with plane.armed(plane.FaultPlan(seed=seed, scenario="probe", events=())):
        manager.save(1, state_b)
        observed = sorted(site for site in plane.site_counts()
                          if site.startswith("ckpt."))
    boundaries = {site for site in observed if not site.endswith(".torn")}
    coverage_complete = boundaries == set(CHECKPOINT_SITES)
    _clear_task1(directory)

    ctx = _pick_context()
    cases: list[dict] = []
    for site in CHECKPOINT_SITES:
        child = ctx.Process(target=_sweep_child,
                            args=(str(directory), site, seed),
                            name=f"repro-crash-sweep-{site}", daemon=True)
        child.start()
        child.join(timeout)
        if child.is_alive():  # pragma: no cover - only on a wedged child
            child.kill()
            child.join(timeout)
        exitcode = child.exitcode
        killed = exitcode == -signal.SIGKILL
        loaded, intact = _classify_load(CheckpointManager(directory),
                                        state_a, state_b)
        cases.append({
            "site": site, "mode": "kill", "exitcode": exitcode,
            "loaded": loaded,
            "ok": killed and intact,
            "detail": "" if killed else
                      f"site never fired (child exit {exitcode})",
        })
        _clear_task1(directory)

    for torn_site in ("ckpt.arrays.torn", "ckpt.manifest.torn"):
        torn_plan = plane.FaultPlan(
            seed=seed, scenario=f"torn@{torn_site}",
            events=(plane.FaultEvent(site=torn_site, kind="torn_write"),))
        raised = False
        with plane.armed(torn_plan):
            try:
                CheckpointManager(directory).save(1, state_b)
            except plane.InjectedTornWrite:
                raised = True
        loaded, intact = _classify_load(CheckpointManager(directory),
                                        state_a, state_b)
        cases.append({
            "site": torn_site, "mode": "torn", "exitcode": None,
            "loaded": loaded,
            "ok": raised and loaded == "previous" and intact,
            "detail": "" if raised else "torn write was not injected",
        })
        _clear_task1(directory)

    return {
        "seed": seed,
        "directory": str(directory),
        "coverage": {
            "registered": list(CHECKPOINT_SITES),
            "observed": observed,
            "complete": coverage_complete,
        },
        "cases": cases,
        "ok": coverage_complete and all(case["ok"] for case in cases),
    }
