"""The chaos scenario catalog: named failure stories, seed-keyed plans.

A :class:`Scenario` bundles what the chaos harness needs to run one
failure story end-to-end through the trainer: the run shape (worker
count, tape mode, guardrail knobs), the :class:`~repro.faults.FaultPlan`
builder, the *expected* outcome, and how to verify the run afterwards.

:func:`build_plan` is the determinism contract: the plan is a pure
function of ``(seed, scenario_name)`` — hit positions are drawn from
``np.random.default_rng([seed, crc32(name)])`` and nothing else — so any
failing campaign entry reproduces exactly from the two values printed in
its report line.

The hit ranges below are tuned to the harness's fixed tiny run (3 tasks,
1 epoch, 3 batches per task — see :mod:`repro.faults.chaos`): e.g. the
trainer executes 9 optimizer steps total, so a ``worker.step`` hit drawn
from ``[4, 8]`` kills a worker at most twice (the respawned worker
re-counts from zero), which stays inside the default skip budget.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.faults.plane import FaultEvent, FaultPlan

__all__ = ["SCENARIOS", "Scenario", "build_plan", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """One named failure story the chaos harness can run.

    ``expect`` is the outcome the campaign requires (``survived`` /
    ``clean-abort`` / ``resume-verified``); anything else is a FAILED
    entry.  ``verify="identical"`` additionally requires the final result
    to be bit-for-bit equal to an uninjected reference run
    (``reference_workers`` overrides the reference's worker count — the
    degradation scenario compares against the uninjected ``workers=1``
    run, per the serial-fallback contract).  ``stream`` names a scenario
    from :data:`repro.scenarios.SCENARIO_REGISTRY`: the harness then
    trains on that stream shape instead of the sharp task sequence, so
    faults land inside task-free segments and blurry pseudo-boundaries.
    """

    name: str
    description: str
    expect: str
    events: Callable[[np.random.Generator], tuple[FaultEvent, ...]]
    workers: int | None = None
    use_tape: bool = True
    anomaly: bool = True
    verify: str = "none"  # "none" | "identical"
    reference_workers: int | None = None
    policy_overrides: Mapping[str, object] = field(default_factory=dict)
    stream: str | None = None


def _no_events(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return ()


def _engine_nan_once(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("engine.dispatch", "nan_payload",
                       hit=int(rng.integers(2, 30))),)


def _engine_nan_persistent(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("engine.dispatch", "nan_payload", hit=0),)


def _shard_grads_nan(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("shard.grads", "nan_payload",
                       hit=int(rng.integers(1, 7))),)


def _loader_transient(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("data.loader.batch", "loader_fault",
                       hit=int(rng.integers(1, 10)), transient=True),)


def _loader_persistent(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("data.loader.batch", "loader_fault",
                       hit=int(rng.integers(1, 10))),)


def _ckpt_io_error(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("ckpt.arrays.begin", "io_error", hit=1),)


def _ckpt_torn_manifest(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("ckpt.manifest.torn", "torn_write", hit=1),)


def _crash_boundary(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("trainer.task.boundary", "crash", hit=1),)


def _crash_late(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("trainer.task.boundary", "crash", hit=2),)


def _crash_torn_checkpoint(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    # Task 1's manifest is torn (the save fails, logged, run continues),
    # then the process crashes at the same boundary: resume must skip the
    # corrupt manifest, fall back to task 0's checkpoint, and re-run
    # tasks 1..2 bit-for-bit.
    return (FaultEvent("ckpt.manifest.torn", "torn_write", hit=2),
            FaultEvent("trainer.task.boundary", "crash", hit=2))


def _worker_exception(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("worker.step", "worker_exception",
                       hit=int(rng.integers(1, 9)),
                       worker=int(rng.integers(0, 2))),)


def _worker_kill(rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (FaultEvent("worker.step", "kill", hit=int(rng.integers(4, 9)),
                       worker=int(rng.integers(0, 2))),)


def _pool_degrade(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    # Worker 0 dies at its 2nd step; both respawn attempts (parent-side
    # pool.spawn hits 3 and 4 — hits 1 and 2 were the initial spawns of a
    # 2-worker pool) fail, so the pool is broken and the step must
    # degrade to the serial regime mid-task.
    return (FaultEvent("worker.step", "kill", hit=2, worker=0),
            FaultEvent("pool.spawn", "io_error", hit=3),
            FaultEvent("pool.spawn", "io_error", hit=4))


def _worker_hang_close(_rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    # The worker shrugs off the stop message (and SIGTERM) for a bounded
    # nap; close() must still return promptly via its escalation ladder.
    return (FaultEvent("worker.stop", "worker_hang", hit=1, worker=0,
                       seconds=1.0),)


_CATALOG = (
    Scenario(
        name="baseline",
        description="armed plane, no events: the plumbing itself must not "
                    "change results",
        expect="survived", events=_no_events, verify="identical"),
    Scenario(
        name="engine-nan-once",
        description="one NaN payload out of an op dispatch; the anomaly "
                    "screen skips the batch",
        expect="survived", events=_engine_nan_once),
    Scenario(
        name="engine-nan-persistent",
        description="every dispatch poisoned: skip budget, restores, then "
                    "a clean structured abort",
        expect="clean-abort", events=_engine_nan_persistent,
        policy_overrides={"max_skips_per_task": 1, "max_restores_per_task": 1}),
    Scenario(
        name="shard-grads-nan",
        description="one shard hands back a NaN gradient; the grad-norm "
                    "screen skips the batch",
        expect="survived", events=_shard_grads_nan, workers=1, anomaly=False),
    Scenario(
        name="loader-transient",
        description="transient batch-read fault absorbed by the loader's "
                    "bounded retry — zero skips",
        expect="survived", events=_loader_transient, verify="identical"),
    Scenario(
        name="loader-persistent",
        description="persistent batch-read fault: the epoch is skipped "
                    "against the guardrail budget",
        expect="survived", events=_loader_persistent),
    Scenario(
        name="ckpt-io-error",
        description="checkpoint write fails with an I/O error; best-effort "
                    "checkpointing logs and continues",
        expect="survived", events=_ckpt_io_error),
    Scenario(
        name="ckpt-torn-manifest",
        description="a torn manifest reaches disk; later checkpoints and "
                    "load_latest are unaffected",
        expect="survived", events=_ckpt_torn_manifest),
    Scenario(
        name="crash-task-boundary",
        description="process dies right after task 0's checkpoint; resume "
                    "must be bit-for-bit",
        expect="resume-verified", events=_crash_boundary),
    Scenario(
        name="crash-late",
        description="process dies after task 1's checkpoint; resume must "
                    "be bit-for-bit",
        expect="resume-verified", events=_crash_late),
    Scenario(
        name="crash-torn-checkpoint",
        description="torn newest checkpoint + crash: resume falls back to "
                    "the last good checkpoint and re-runs bit-for-bit",
        expect="resume-verified", events=_crash_torn_checkpoint),
    Scenario(
        name="worker-exception",
        description="a worker raises mid-step; the err reply enters the "
                    "guardrail ladder, the worker lives",
        expect="survived", events=_worker_exception, workers=2, anomaly=False),
    Scenario(
        name="worker-kill-respawn",
        description="SIGKILL a worker mid-step; the pool respawns it and "
                    "the run continues",
        expect="survived", events=_worker_kill, workers=2, anomaly=False),
    Scenario(
        name="pool-degrade-serial",
        description="worker dies and respawn fails twice: degrade to the "
                    "serial regime, identical to uninjected workers=1",
        expect="survived", events=_pool_degrade, workers=2, anomaly=False,
        verify="identical", reference_workers=1),
    Scenario(
        name="task-free-loader-fault",
        description="persistent batch-read fault inside an unsignalled "
                    "task-free segment: the drift-driven run survives on "
                    "the guardrail budget",
        expect="survived", events=_loader_persistent, stream="task_free"),
    Scenario(
        name="blurry-boundary-crash",
        description="process dies at the first blurry pseudo-boundary; "
                    "resume over the rebuilt stream must be bit-for-bit",
        expect="resume-verified", events=_crash_boundary, stream="blurry"),
    Scenario(
        name="worker-hang-close",
        description="a worker ignores stop/SIGTERM at shutdown; close() "
                    "escalates and the run still completes",
        expect="survived", events=_worker_hang_close, workers=2,
        anomaly=False),
)

SCENARIOS: dict[str, Scenario] = {s.name: s for s in _CATALOG}


def scenario_names() -> list[str]:
    """Catalog names in definition order."""
    return [s.name for s in _CATALOG]


def build_plan(seed: int, name: str) -> FaultPlan:
    """The scenario's fault plan — a pure function of ``(seed, name)``."""
    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise KeyError(f"unknown chaos scenario {name!r}; "
                       f"known: {', '.join(scenario_names())}")
    rng = np.random.default_rng([seed, zlib.crc32(name.encode("utf-8"))])
    return FaultPlan(seed=seed, scenario=name, events=scenario.events(rng))
