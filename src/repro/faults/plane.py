"""The deterministic fault-injection plane.

Every I/O and IPC choke point in the training stack calls a *site* —
``fault_point("ckpt.arrays.tmp_written")``, ``corrupt("engine.dispatch",
data)`` — which is a zero-overhead no-op until a :class:`FaultPlan` is
armed (the hot-path guard is a single module-attribute bool check).  A
plan is a pure value: a tuple of typed :class:`FaultEvent` records, each
naming a site, a fault kind, and the 1-based *hit* (the N-th invocation of
that site) at which it fires.  Plans are built by
:mod:`repro.faults.scenarios` as a pure function of ``(seed, scenario)``,
so any failing chaos run is exactly reproducible from those two values.

Fault kinds
-----------
``io_error``          raise :class:`InjectedIOError` (an ``OSError``);
                      ``transient=True`` marks it retryable — the bounded
                      retry/backoff paths consume it, a second identical
                      fault at the same call keeps failing
``torn_write``        consumed by the atomic writer: write *truncated*
                      bytes straight to the final path, then raise — the
                      on-disk state a torn non-atomic write leaves behind
``kill``              ``SIGKILL`` the calling process (crash sweep,
                      worker-death scenarios)
``worker_hang``       ignore ``SIGTERM`` and sleep ``seconds`` — a worker
                      wedged in uninterruptible state; only the pool's
                      ``kill()`` escalation can clear it
``worker_exception``  raise :class:`InjectedWorkerError`
``nan_payload``       consumed by :func:`corrupt`: poison the payload
                      array with a NaN
``loader_fault``      alias of ``io_error`` for data-loader sites
``crash``             raise :class:`InjectedCrash` — a whole-process
                      failure the trainer does *not* catch; the chaos
                      harness treats it like a kill and exercises resume

Arming is process-local by design: a forked worker re-arms its own
filtered plan (:meth:`FaultPlan.for_worker`) with fresh hit counters, so
parent and worker sites count independently.
"""

from __future__ import annotations

import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "InjectedCrash",
    "InjectedIOError",
    "InjectedTornWrite",
    "InjectedWorkerError",
    "arm",
    "armed",
    "corrupt",
    "current_plan",
    "disarm",
    "fault_point",
    "site_counts",
    "take_torn",
]

FAULT_KINDS = ("io_error", "torn_write", "kill", "worker_hang",
               "worker_exception", "nan_payload", "loader_fault", "crash")

#: Hot-path guard: sites check this single module attribute and return.
ARMED = False


class InjectedIOError(OSError):
    """An injected I/O failure; ``transient`` marks it retryable."""

    def __init__(self, site: str, transient: bool = False):
        super().__init__(f"injected io_error at site {site!r}"
                         + (" (transient)" if transient else ""))
        self.site = site
        self.transient = transient


class InjectedTornWrite(InjectedIOError):
    """An injected torn write: truncated bytes reached the final path."""

    def __init__(self, site: str):
        super().__init__(site, transient=False)


class InjectedWorkerError(RuntimeError):
    """An injected in-worker exception (reported, worker stays alive)."""

    def __init__(self, site: str):
        super().__init__(f"injected worker_exception at site {site!r}")
        self.site = site


class InjectedCrash(RuntimeError):
    """An injected whole-process failure the trainer must *not* absorb.

    Stands in for SIGKILL in in-process chaos scenarios: it escapes the
    guardrail ladder (which only catches batch-level poison), unwinds the
    run, and the chaos harness then exercises checkpoint resume.
    """

    def __init__(self, site: str):
        super().__init__(f"injected crash at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: fire ``kind`` at the ``hit``-th call of ``site``.

    ``hit=0`` fires on *every* call (persistent fault); ``hit >= 1`` is a
    one-shot at that occurrence.  ``worker`` restricts the event to one
    worker index (``None`` = any process that owns the site).
    """

    site: str
    kind: str
    hit: int = 1
    worker: int | None = None
    transient: bool = False
    seconds: float = 30.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {', '.join(FAULT_KINDS)}")
        if self.hit < 0:
            raise ValueError("hit must be >= 0 (0 = every occurrence)")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events for one scenario run."""

    seed: int
    scenario: str
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def for_worker(self, index: int) -> "FaultPlan":
        """The sub-plan a forked worker arms: its events plus shared ones."""
        return replace(self, events=tuple(
            e for e in self.events if e.worker is None or e.worker == index))

    def describe(self) -> dict:
        """JSON-safe summary for chaos reports."""
        return {"seed": self.seed, "scenario": self.scenario,
                "events": [{"site": e.site, "kind": e.kind, "hit": e.hit,
                            "worker": e.worker, "transient": e.transient}
                           for e in self.events]}


class _PlaneState:
    """Per-process runtime state of the armed plan (counters, fired set)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counts: dict[str, int] = {}
        self.fired: set[int] = set()

    def match(self, site: str) -> FaultEvent | None:
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        for index, event in enumerate(self.plan.events):
            if event.site != site:
                continue
            if event.hit == 0:
                return event
            if event.hit == count and index not in self.fired:
                self.fired.add(index)
                return event
        return None


_STATE: _PlaneState | None = None


def arm(plan: FaultPlan) -> None:
    """Arm ``plan`` in this process (fresh hit counters)."""
    global ARMED, _STATE
    # Injection state is process-local on purpose: each forked worker
    # re-arms its own filtered plan (fresh counters), never shares the
    # parent's.  See FaultPlan.for_worker / worker_main.
    _STATE = _PlaneState(plan)  # repro-lint: disable=MP002
    ARMED = True  # repro-lint: disable=MP002


def disarm() -> None:
    """Return every site to its zero-overhead no-op state."""
    global ARMED, _STATE
    ARMED = False  # repro-lint: disable=MP002
    _STATE = None  # repro-lint: disable=MP002


@contextmanager
def armed(plan: FaultPlan):
    """Context manager: arm ``plan``, always disarm on exit."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def current_plan() -> FaultPlan | None:
    """The armed plan, if any (what a pool forwards to spawned workers)."""
    return None if _STATE is None else _STATE.plan


def site_counts() -> dict[str, int]:
    """Sites observed since arming (site -> invocation count)."""
    return {} if _STATE is None else dict(_STATE.counts)


def fault_point(site: str) -> None:
    """Declare an injection site; no-op unless a matching event is due.

    Control-flow faults only — ``io_error``/``loader_fault`` raise,
    ``kill`` SIGKILLs the process, ``worker_hang`` wedges it,
    ``worker_exception`` raises, ``crash`` raises :class:`InjectedCrash`.
    Payload faults (``nan_payload``) go through :func:`corrupt` and torn
    writes through :func:`take_torn` instead.
    """
    if not ARMED:
        return
    event = _STATE.match(site)
    if event is None:
        return
    if event.kind in ("io_error", "loader_fault"):
        raise InjectedIOError(site, transient=event.transient)
    if event.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if event.kind == "worker_hang":
        # A hang that also shrugs off SIGTERM: the wedged-in-C-extension
        # case that forces the pool's kill() escalation.
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(event.seconds)
        return
    if event.kind == "worker_exception":
        raise InjectedWorkerError(site)
    if event.kind == "crash":
        raise InjectedCrash(site)


def corrupt(site: str, array: np.ndarray) -> np.ndarray:
    """Payload site: return ``array``, NaN-poisoned when an event is due.

    The corruption is a copy — the caller's buffers are never mutated
    behind autograd's back.
    """
    if not ARMED:
        return array
    event = _STATE.match(site)
    if event is None or event.kind != "nan_payload":
        return array
    poisoned = np.array(array, copy=True)
    if poisoned.size:
        poisoned.reshape(-1)[0] = np.nan
    return poisoned


def take_torn(site: str) -> bool:
    """Writer-side site: whether a ``torn_write`` event is due here."""
    if not ARMED:
        return False
    event = _STATE.match(site)
    return event is not None and event.kind == "torn_write"
