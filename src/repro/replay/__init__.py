"""Replay losses for stored memory (Sec. III-B and Table IV)."""

from repro.replay.noise import noise_scales, knn_indices
from repro.replay.losses import CSSReplay, DistillReplay, NoisyDistillReplay, ReplayLoss, make_replay
from repro.replay.sampling import (
    ReplaySampling,
    SimilaritySampling,
    UniformSampling,
    batch_similarities,
    make_sampling,
)

__all__ = [
    "noise_scales",
    "knn_indices",
    "ReplayLoss",
    "CSSReplay",
    "DistillReplay",
    "NoisyDistillReplay",
    "make_replay",
    "ReplaySampling",
    "UniformSampling",
    "SimilaritySampling",
    "batch_similarities",
    "make_sampling",
]
