"""The three replay losses compared in Table IV.

Given a replay batch of stored samples, each loss returns a scalar tensor:

- :class:`CSSReplay` — naive: run the CSSL objective directly on two
  augmented views of the memory (the paper shows this *over-fits* and hurts);
- :class:`DistillReplay` — ``L_dis`` (Eq. 9): align the current projected
  representation with the frozen old model's representation of the same
  augmented input;
- :class:`NoisyDistillReplay` — ``L_rpl`` (Eq. 16): distillation with the
  old target perturbed by ``r(x) * sigma``, ``sigma ~ N(0, I)``.
"""

from __future__ import annotations

import numpy as np

from repro.augment.base import Augmentation
from repro.ssl.base import CSSLObjective
from repro.ssl.distill import DistillationHead
from repro.tensor.tensor import Tensor, no_grad


class ReplayLoss:
    """Interface: scalar training loss for a replay batch."""

    name = "base"
    needs_old_model = False
    needs_noise_scales = False

    def loss(self, batch: np.ndarray, *, objective: CSSLObjective,
             old_objective: CSSLObjective | None, head: DistillationHead | None,
             augment: Augmentation, noise: np.ndarray | None,
             rng: np.random.Generator) -> Tensor:
        """Compute the replay term.

        Parameters
        ----------
        batch:
            (m, ...) stored raw samples drawn from memory for this step.
        objective:
            Live CSSL objective (current model).
        old_objective:
            Frozen snapshot from before this increment (distillation losses).
        head:
            The per-increment distillation head ``p_dis``.
        augment:
            The increment's augmentation pipeline.
        noise:
            (m,) noise scales ``r(x)`` aligned with ``batch`` rows.
        rng:
            Generator for augmentation and noise draws.
        """
        raise NotImplementedError


class CSSReplay(ReplayLoss):
    """Directly optimize ``L_css`` on the memory (Table IV column 2)."""

    name = "css"

    def loss(self, batch, *, objective, old_objective, head, augment, noise, rng) -> Tensor:
        view1 = augment(batch, rng)
        view2 = augment(batch, rng)
        return objective.css_loss(view1, view2)


class DistillReplay(ReplayLoss):
    """``L_dis`` on the memory (Table IV column 3)."""

    name = "dis"
    needs_old_model = True

    def _old_target(self, old_objective: CSSLObjective, view: np.ndarray) -> np.ndarray:
        with no_grad():
            return old_objective.representation(view).numpy()

    def loss(self, batch, *, objective, old_objective, head, augment, noise, rng) -> Tensor:
        if old_objective is None or head is None:
            raise ValueError("distillation replay requires the old model and a head")
        view = augment(batch, rng)
        target = self._old_target(old_objective, view)
        return head.loss(view, target)


class NoisyDistillReplay(DistillReplay):
    """``L_rpl`` — noise-enhanced distillation (Table IV column 4, Eq. 16)."""

    name = "rpl"
    needs_noise_scales = True

    def loss(self, batch, *, objective, old_objective, head, augment, noise, rng) -> Tensor:
        if old_objective is None or head is None:
            raise ValueError("distillation replay requires the old model and a head")
        if noise is None:
            raise ValueError("noisy replay requires per-sample noise scales r(x)")
        view = augment(batch, rng)
        target = self._old_target(old_objective, view)
        sigma = rng.standard_normal(size=target.shape).astype(target.dtype)
        # r(x) may be per-sample (m,) or per-sample-per-dimension (m, d).
        scales = noise if noise.ndim == 2 else noise[:, None]
        target = target + scales.astype(target.dtype) * sigma
        return head.loss(view, target)


def make_replay(name: str) -> ReplayLoss:
    """Factory mapping Table IV column names to replay losses."""
    losses = {"css": CSSReplay, "dis": DistillReplay, "rpl": NoisyDistillReplay}
    try:
        return losses[name]()
    except KeyError as exc:
        raise KeyError(f"unknown replay loss {name!r}; available: {sorted(losses)}") from exc
