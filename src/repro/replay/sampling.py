"""Replay-batch sampling policies.

Sec. IV-F of the paper suggests, as a way to improve the efficiency-
effectiveness trade-off, to "sample the stored data from the memory based on
their similarities to the new data during replay".  This module implements
that extension alongside the paper's default uniform sampling:

- :class:`UniformSampling` — every stored sample equally likely (the paper's
  main experiments);
- :class:`SimilaritySampling` — stored samples whose *old-model*
  representations are closest to the current batch's representations are
  replayed preferentially, softmax-weighted by cosine similarity.
"""

from __future__ import annotations

import numpy as np


class ReplaySampling:
    """Chooses which memory indices to replay for the current step."""

    name = "base"
    needs_batch_context = False

    def sample(self, memory_size: int, batch_size: int, rng: np.random.Generator,
               similarities: np.ndarray | None = None) -> np.ndarray:
        """Return ``min(batch_size, memory_size)`` unique indices.

        Parameters
        ----------
        memory_size:
            Number of stored samples.
        batch_size:
            Requested replay batch size.
        rng:
            Generator for the draw.
        similarities:
            (memory_size,) relevance scores of each stored sample to the
            current new-data batch; only used by similarity sampling.
        """
        raise NotImplementedError


class UniformSampling(ReplaySampling):
    name = "uniform"

    def sample(self, memory_size, batch_size, rng, similarities=None) -> np.ndarray:
        size = min(batch_size, memory_size)
        return rng.choice(memory_size, size=size, replace=False)


class SimilaritySampling(ReplaySampling):
    """Prefer stored samples similar to the current new-data batch.

    Sampling is without replacement with probabilities
    ``softmax(similarity / temperature)``, so dissimilar samples still
    appear occasionally (pure argmax would starve parts of the memory).
    """

    name = "similarity"
    needs_batch_context = True

    def __init__(self, temperature: float = 0.2):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def sample(self, memory_size, batch_size, rng, similarities=None) -> np.ndarray:
        if similarities is None:
            raise ValueError("similarity sampling needs per-sample similarities")
        if len(similarities) != memory_size:
            raise ValueError("similarities length mismatch")
        size = min(batch_size, memory_size)
        logits = np.asarray(similarities, dtype=np.float64) / self.temperature
        logits -= logits.max()
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        return rng.choice(memory_size, size=size, replace=False, p=probabilities)


def batch_similarities(memory_reps: np.ndarray, batch_reps: np.ndarray) -> np.ndarray:
    """Mean cosine similarity of each stored representation to the batch."""
    def normalize(x):
        return x / (np.linalg.norm(x, axis=1, keepdims=True) + 1e-12)

    sims = normalize(np.asarray(memory_reps, dtype=np.float64)) @ \
        normalize(np.asarray(batch_reps, dtype=np.float64)).T
    return sims.mean(axis=1)


def make_sampling(name: str) -> ReplaySampling:
    """Factory: ``"uniform"`` (paper default) or ``"similarity"`` (Sec. IV-F)."""
    policies = {"uniform": UniformSampling, "similarity": SimilaritySampling}
    try:
        return policies[name]()
    except KeyError as exc:
        raise KeyError(f"unknown replay sampling {name!r}; available: {sorted(policies)}") from exc
