"""Data-dependent noise magnitude ``r(x)`` (Sec. III-B).

For each stored sample ``x_m`` selected from increment ``X^n``, ``r(x_m)``
is the standard deviation of the representations among the k nearest
neighbours of ``x_m`` in ``X^n`` (representations extracted by the model
just optimized on ``X^n``).  The replay loss adds ``r(x_m) * sigma`` with
``sigma ~ N(0, I_d)`` to the distillation target.
"""

from __future__ import annotations

import numpy as np


def knn_indices(queries: np.ndarray, pool: np.ndarray, k: int) -> np.ndarray:
    """Indices (len(queries), k) of each query's k nearest pool rows (L2).

    A query that is itself in the pool counts as its own neighbour, matching
    the paper's ``Nei(x^m | X^n)`` with ``x^m`` selected from ``X^n``.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    k = min(k, len(pool))
    # Squared L2 distance via the expansion trick; queries/pool are (., d).
    q2 = np.einsum("ij,ij->i", queries, queries)[:, None]
    p2 = np.einsum("ij,ij->i", pool, pool)[None, :]
    d2 = q2 + p2 - 2.0 * queries @ pool.T
    # The expansion trick loses precision: for (near-)identical rows the
    # cancellation can leave small negative values, whose ordering under
    # argpartition is then cancellation noise rather than actual distance.
    d2 = np.maximum(d2, 0.0)
    return np.argpartition(d2, k - 1, axis=1)[:, :k]


def noise_scales(selected: np.ndarray, pool: np.ndarray, k: int,
                 mode: str = "vector") -> np.ndarray:
    """``r(x)`` for each selected representation (Sec. III-B).

    ``Std({x' : x' in Nei(x | X^n)})`` — the standard deviation of the k
    nearest neighbours' representations.  The std of a set of d-dimensional
    vectors is naturally *per dimension*, so the default returns an
    (m, d) matrix: noise is then scaled along each representation axis by
    the local spread of that axis, which keeps the perturbed target inside
    the neighbourhood's span (the paper's "relate it to its similar
    neighbours").  ``mode="scalar"`` collapses to the per-sample mean over
    dimensions, an (m,) vector, for the isotropic reading.

    Parameters
    ----------
    selected:
        (m, d) representations of the stored samples.
    pool:
        (N, d) representations of the full increment they came from.
    k:
        Neighbourhood size (the paper's only hyper-parameter).  ``k == 0``
        returns all-zero scales, making the noisy replay loss collapse to
        plain distillation — exactly the Fig. 6 ``0 neighbours == L_dis``
        statement.
    """
    if mode not in ("vector", "scalar"):
        raise ValueError(f"unknown noise mode {mode!r}")
    selected = np.asarray(selected, dtype=np.float64)
    pool = np.asarray(pool, dtype=np.float64)
    m, d = selected.shape
    if k == 0:
        shape = (m, d) if mode == "vector" else (m,)
        return np.zeros(shape, dtype=np.float32)
    neighbours = knn_indices(selected, pool, k)
    scales = np.empty((m, d), dtype=np.float64)
    for i, row in enumerate(neighbours):
        scales[i] = pool[row].std(axis=0)
    if mode == "scalar":
        return scales.mean(axis=1).astype(np.float32)
    return scales.astype(np.float32)
