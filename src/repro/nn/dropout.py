"""Inverted dropout.

Training mode zeroes each activation with probability ``p`` and rescales
the survivors by ``1/(1-p)`` so eval mode is the identity.  The layer takes
its randomness from a per-layer generator seeded at construction, keeping
the whole-model determinism guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import engine
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or fallback_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        cap = engine.active_capture()
        if cap is not None:
            cap.mark_unsafe("Dropout draws a fresh mask every step; a tape "
                            "would replay a frozen mask")
        keep = 1.0 - self.p
        mask = (self.rng.uniform(size=x.shape) < keep).astype(x.data.dtype) / keep
        return x * Tensor(mask)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
