"""TinyConvNet: the default CPU-scale image backbone.

Stands in for the paper's ResNet-18 in CI-scale experiments (see DESIGN.md's
substitution table): a 3-stage conv stack with BatchNorm, ReLU and pooling
ending in global average pooling, producing a flat feature vector.
"""

from __future__ import annotations

import numpy as np

from repro.nn.activation import ReLU
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pool import GlobalAvgPool2d, MaxPool2d
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class TinyConvNet(Module):
    """Small CNN encoder: (N, C, H, W) -> (N, width*4).

    Parameters
    ----------
    in_channels:
        Input image channels.
    width:
        Base channel count; stages use ``width, 2*width, 4*width``.
    image_size:
        Input resolution; must be divisible by 4 (two 2x2 pools).
    """

    def __init__(self, in_channels: int = 3, width: int = 16, image_size: int = 8,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        if image_size % 4:
            raise ValueError("image_size must be divisible by 4")
        self.output_dim = width * 4
        self.net = Sequential(
            Conv2d(in_channels, width, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(width),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width, width * 2, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(width * 2),
            ReLU(),
            MaxPool2d(2),
            Conv2d(width * 2, width * 4, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(width * 4),
            ReLU(),
            GlobalAvgPool2d(),
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"TinyConvNet expects NCHW input, got {x.shape}")
        return self.net(x)
