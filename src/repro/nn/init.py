"""Weight initializers.

All initializers are pure functions of an explicit ``numpy.random.Generator``
so every model in the library is reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np


def kaiming_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                    fan_in: int) -> np.ndarray:
    """He/Kaiming uniform init, the default for ReLU networks."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int) -> np.ndarray:
    std = np.sqrt(2.0 / max(fan_in, 1))
    return (rng.normal(0.0, std, size=shape)).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...],
                   fan_in: int, fan_out: int) -> np.ndarray:
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
