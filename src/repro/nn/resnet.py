"""Residual networks (He et al. 2016), CIFAR-style stem.

``resnet18()`` reproduces the paper's backbone layout ([2, 2, 2, 2] basic
blocks); ``tiny_resnet()`` is a down-scaled variant that trains in seconds on
CPU and is used wherever a residual backbone is exercised in tests and
benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.activation import ReLU
from repro.nn.container import Sequential
from repro.nn.conv import Conv2d
from repro.nn.module import Module
from repro.nn.norm import BatchNorm2d
from repro.nn.pool import GlobalAvgPool2d
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class BasicBlock(Module):
    """Two 3x3 convs with identity (or 1x1-projected) skip connection."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        skip = self.shortcut(x) if self.shortcut is not None else x
        return ops.relu(out + skip)


class ResNet(Module):
    """CIFAR-style ResNet: 3x3 stem (no max-pool), 4 stages, global pool.

    Parameters
    ----------
    blocks_per_stage:
        Number of BasicBlocks in each of the four stages.
    base_width:
        Channels of the first stage; doubled at each subsequent stage.
    in_channels:
        Input image channels.
    """

    def __init__(self, blocks_per_stage: Sequence[int] = (2, 2, 2, 2),
                 base_width: int = 64, in_channels: int = 3,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        self.stem = Sequential(
            Conv2d(in_channels, base_width, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(base_width),
            ReLU(),
        )
        stages: list[Module] = []
        channels = base_width
        in_ch = base_width
        for stage_index, num_blocks in enumerate(blocks_per_stage):
            stride = 1 if stage_index == 0 else 2
            for block_index in range(num_blocks):
                block_stride = stride if block_index == 0 else 1
                stages.append(BasicBlock(in_ch, channels, stride=block_stride, rng=rng))
                in_ch = channels
            channels *= 2
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.output_dim = in_ch

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.stages(self.stem(x)))


def resnet18(in_channels: int = 3, rng: np.random.Generator | None = None) -> ResNet:
    """The paper's backbone: ResNet-18 layout with a CIFAR stem."""
    return ResNet((2, 2, 2, 2), base_width=64, in_channels=in_channels, rng=rng)


def tiny_resnet(in_channels: int = 3, rng: np.random.Generator | None = None) -> ResNet:
    """CPU-scale residual backbone: 2 stages of 1 block, 8 base channels."""
    return ResNet((1, 1), base_width=8, in_channels=in_channels, rng=rng)
