"""Batch normalization (1-D and 2-D).

Training mode normalizes with batch statistics and updates exponential
running averages; eval mode uses the running averages.  Running stats are
registered buffers so they travel with ``state_dict`` snapshots of the old
model, which matters for distillation: the frozen old model must normalize
exactly as it did when it finished its task.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.tensor import engine, ops


class _BatchNorm(Module):
    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def _update_running_stats(self, mean: np.ndarray, var: np.ndarray,
                              count: int) -> None:
        """EMA update of the running statistics from one batch's mean/var.

        Routed through ``batch_norm_train``'s ``stat_callback`` so a tape
        replay (which skips this layer's Python code entirely) re-fires the
        same update with the replayed batch statistics.
        """
        m = self.momentum
        self._set_buffer("running_mean",
                         ((1 - m) * self.running_mean + m * mean.reshape(-1)).astype(np.float32))
        # unbiased variance for the running estimate, as torch does
        unbias = count / max(count - 1, 1)
        self._set_buffer("running_var",
                         ((1 - m) * self.running_var + m * unbias * var.reshape(-1)).astype(np.float32))

    def _normalize(self, x: Tensor, axes: tuple[int, ...], shape: tuple[int, ...]) -> Tensor:
        if self.training:
            # Fused batch-norm kernel (one tape node); the batch statistics
            # reach _update_running_stats through the stat callback.
            count = int(np.prod([x.shape[a] for a in axes]))
            x_hat, _mean, _var = ops.batch_norm_train(
                x, axes, self.eps,
                stat_callback=lambda mean, var: self._update_running_stats(mean, var, count))
        else:
            cap = engine.active_capture()
            if cap is not None:
                cap.mark_unsafe("eval-mode BatchNorm reads running stats the "
                                "tape would bake in as constants")
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
            x_hat = (x - mean) / ops.sqrt(var + self.eps)
        return x_hat * self.weight.reshape(*shape) + self.bias.reshape(*shape)


class BatchNorm1d(_BatchNorm):
    """Normalizes (N, F) activations per feature."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, F), got {x.shape}")
        return self._normalize(x, axes=(0,), shape=(1, self.num_features))


class BatchNorm2d(_BatchNorm):
    """Normalizes (N, C, H, W) activations per channel."""

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W), got {x.shape}")
        return self._normalize(x, axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))
