"""Batch-independent normalization: LayerNorm and GroupNorm.

BatchNorm couples samples through batch statistics, which breaks at batch
size 1 and makes distillation targets depend on batch composition.  These
two layers normalize within each sample and are the standard alternatives
in the SSL literature; the MLP backbone accepts ``norm="layer"`` to use
them.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.tensor import ops
from repro.tensor.tensor import Tensor


class LayerNorm(Module):
    """Normalizes each sample over its feature axis: (N, F) -> (N, F)."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(f"LayerNorm({self.num_features}) got shape {x.shape}")
        mean = x.mean(axis=1, keepdims=True)
        var = x.var(axis=1, keepdims=True)
        normalized = (x - mean) / ops.sqrt(var + self.eps)
        return normalized * self.weight + self.bias


class GroupNorm(Module):
    """Normalizes (N, C, H, W) within channel groups per sample (Wu & He 2018)."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(f"{num_channels} channels not divisible into {num_groups} groups")
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(np.ones(num_channels, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_channels, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ValueError(f"GroupNorm({self.num_channels}) got shape {x.shape}")
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.num_groups, c // self.num_groups * h * w)
        mean = grouped.mean(axis=2, keepdims=True)
        var = grouped.var(axis=2, keepdims=True)
        normalized = ((grouped - mean) / ops.sqrt(var + self.eps)).reshape(n, c, h, w)
        return normalized * self.weight.reshape(1, c, 1, 1) + self.bias.reshape(1, c, 1, 1)
