"""Neural-network building blocks on top of :mod:`repro.tensor`.

The package mirrors the subset of ``torch.nn`` the paper's models need:
parameter containers with train/eval modes and state dicts, dense and
convolutional layers, batch normalization, pooling, and the three backbone
families used in the experiments (MLP, a small ConvNet, and ResNet).
"""

from repro.nn.module import Module, Parameter
from repro.nn.container import Sequential
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.groupnorm import LayerNorm, GroupNorm
from repro.nn.pool import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.activation import ReLU, Tanh, Sigmoid, LeakyReLU, Identity
from repro.nn.dropout import Dropout
from repro.nn.mlp import MLP
from repro.nn.convnet import TinyConvNet
from repro.nn.resnet import ResNet, BasicBlock, resnet18, tiny_resnet
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "GroupNorm",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Identity",
    "Dropout",
    "MLP",
    "TinyConvNet",
    "ResNet",
    "BasicBlock",
    "resnet18",
    "tiny_resnet",
    "init",
]
