"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator for weight init; the seeded
        :func:`repro.utils.rng.fallback_rng` is used when omitted (only
        convenient for throwaway models — experiments always pass one).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform(rng, (in_features, out_features), in_features))
        if bias:
            bound = 1.0 / np.sqrt(max(in_features, 1))
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_features,)).astype(np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return ops.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"
