"""Multi-layer perceptron used as projector, predictor, and tabular backbone.

The paper uses MLPs in three places: the 2-layer projector on top of the
backbone, SimSiam's 2-layer predictor ``h(.)``, the 2-layer distillation
projector ``p_dis(.)``, and a 7-layer MLP as the tabular-data encoder.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.activation import ReLU
from repro.nn.container import Sequential
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import BatchNorm1d
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class MLP(Module):
    """Fully-connected network with optional hidden BatchNorm.

    Parameters
    ----------
    dims:
        Layer widths including input and output, e.g. ``[64, 128, 128]``
        builds two Linear layers.
    batch_norm:
        Insert BatchNorm1d after each hidden Linear.
    final_activation:
        Apply ReLU after the last layer too (backbones want this off for the
        output representation, projector heads sometimes want it on).
    dropout:
        Dropout probability after each hidden activation (0 disables).
    rng:
        Generator for weight init.
    """

    def __init__(self, dims: Sequence[int], batch_norm: bool = True,
                 final_activation: bool = False, dropout: float = 0.0,
                 norm: str = "batch",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        if norm not in ("batch", "layer"):
            raise ValueError(f"unknown norm {norm!r}; use 'batch' or 'layer'")
        rng = rng or fallback_rng()
        self.dims = list(dims)
        layers: list[Module] = []
        for i in range(len(dims) - 1):
            layers.append(Linear(dims[i], dims[i + 1], rng=rng))
            is_last = i == len(dims) - 2
            if not is_last or final_activation:
                if batch_norm:
                    if norm == "batch":
                        layers.append(BatchNorm1d(dims[i + 1]))
                    else:
                        from repro.nn.groupnorm import LayerNorm
                        layers.append(LayerNorm(dims[i + 1]))
                layers.append(ReLU())
                if dropout > 0.0:
                    layers.append(Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31))))
        self.net = Sequential(*layers)
        self.output_dim = dims[-1]

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        return self.net(x)
