"""Module containers."""

from __future__ import annotations

from repro.nn.activation import ReLU
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.tensor import engine, ops
from repro.tensor.tensor import Tensor


class Sequential(Module):
    """Chains modules in order; submodules register as ``layer0`` etc.

    When fusion is enabled, adjacent ``(Linear, ReLU)`` pairs dispatch the
    fused ``linear_relu`` kernel at call time instead of two separate taped
    ops.  The fusion is purely a call-time rewrite: the layer list, the
    parameters, and ``state_dict`` layout are unchanged, and disabling
    fusion (:func:`repro.tensor.engine.no_fusion`) restores the unfused
    execution path exactly.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        layers = self.layers
        fuse = engine.fusion_enabled()
        i = 0
        count = len(layers)
        while i < count:
            layer = layers[i]
            if (fuse and i + 1 < count and type(layer) is Linear
                    and type(layers[i + 1]) is ReLU and x.ndim == 2):
                x = ops.linear_relu(x, layer.weight, layer.bias)
                i += 2
                continue
            x = layer(x)
            i += 1
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
