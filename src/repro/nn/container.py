"""Module containers."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class Sequential(Module):
    """Chains modules in order; submodules register as ``layer0`` etc."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
