"""2-D convolution via im2col.

The forward pass lowers convolution to a single matmul over unfolded
patches; the whole lowering is one registered autograd op (``conv2d``) so
the col2im scatter runs in vectorized numpy instead of through generic
indexing, and the bias add is fused into the same kernel.  Layout is NCHW
throughout, matching the torch convention the paper's models assume.

The unfolded patch matrix is the dominant allocation of a CNN step.  Its
storage comes from :mod:`repro.tensor.memplan`: under a planned tape
replay the planner hands the op an arena slab sized from
``Conv2dOp.plan_buffers`` (zero fresh allocations on a warm replay);
everywhere else the process-wide scratch cache provides the same
acquire/release reuse the old per-layer ``_ColBufferPool`` used to —
acquire in forward, release once the weight gradient has consumed the
buffer (immediately under ``no_grad``), acquire/release rather than a
single cached slot because SSL methods run two augmented forwards before
one backward.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import memplan
from repro.tensor.engine import Context, Op, apply, register
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


def _out_hw(h: int, w: int, kernel: int, stride: int, padding: int) -> tuple[int, int]:
    return ((h + 2 * padding - kernel) // stride + 1,
            (w + 2 * padding - kernel) // stride + 1)


def _im2col(x: np.ndarray, kernel: int, stride: int,
            padding: int) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into (N, out_h, out_w, C*k*k) patches.

    The destination buffer comes from :func:`repro.tensor.memplan.acquire`
    and must be released by the caller once backward no longer needs it.
    """
    n, c, h, w = x.shape
    out_h, out_w = _out_hw(h, w, kernel, stride, padding)
    padded = None
    if padding:
        # Zero-fill + interior copy: value-identical to np.pad's constant
        # mode, but into reusable (plannable) storage.
        padded = memplan.acquire(
            (n, c, h + 2 * padding, w + 2 * padding), x.dtype)
        padded.fill(0)
        padded[:, :, padding:-padding, padding:-padding] = x
        x = padded
    strides = x.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    col_shape = (n, out_h, out_w, c, kernel, kernel)
    cols = memplan.acquire(col_shape, x.dtype)
    # (N, C, out_h, out_w, k, k) -> (N, out_h, out_w, C, k, k), materialized
    # into the scratch buffer.
    np.copyto(cols, view.transpose(0, 2, 3, 1, 4, 5))
    if padded is not None:
        memplan.release(padded)
    return cols.reshape(n, out_h, out_w, c * kernel * kernel), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int], kernel: int,
            stride: int, padding: int) -> np.ndarray:
    """Scatter-add (N, out_h, out_w, C*k*k) patch gradients back to x."""
    n, c, h, w = x_shape
    out_h, out_w = _out_hw(h, w, kernel, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    # k*k iterations over kernel offsets, not over array elements: each
    # slice assignment below is a full vectorized scatter.
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            padded[:, :, ki:i_max:stride, kj:j_max:stride] += cols[:, :, :, :, ki, kj]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


@register
class Conv2dOp(Op):
    """im2col convolution with fused bias and planner-declared scratch.

    Inputs: ``x`` (N, C_in, H, W), ``weight`` (C_in*k*k, C_out) and an
    optional trailing ``bias`` (C_out,).  Params carry the geometry.
    """

    name = "conv2d"

    @staticmethod
    def forward(ctx: Context, x, w, *bias, kernel: int, stride: int,
                padding: int, out=None):
        n = x.shape[0]
        cols, out_h, out_w = _im2col(x, kernel, stride, padding)
        flat = cols.reshape(-1, cols.shape[-1])            # (N*oh*ow, Cin*k*k)
        if out is None:
            out_flat = flat @ w                            # (N*oh*ow, Cout)
            if bias:
                out_flat += bias[0]
            result = np.ascontiguousarray(
                out_flat.reshape(n, out_h, out_w, w.shape[1]).transpose(0, 3, 1, 2))
        else:
            out_flat = memplan.acquire((flat.shape[0], w.shape[1]), out.dtype)
            np.matmul(flat, w, out=out_flat)
            if bias:
                out_flat += bias[0]
            # Same element copy np.ascontiguousarray performs, into the slab.
            np.copyto(out, out_flat.reshape(n, out_h, out_w, w.shape[1])
                      .transpose(0, 3, 1, 2))
            memplan.release(out_flat)
            result = out
        if any(ctx.needs_input_grad):
            ctx.save(flat, w)
            ctx.geometry = (x.shape, kernel, stride, padding, out_h, out_w)
            ctx.cols = cols
        else:
            memplan.release(cols.reshape(n, out_h, out_w, -1, kernel, kernel))
        return result

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sx, dx), (sw, dw) = input_specs[:2]
        kernel, stride = params["kernel"], params["stride"]
        padding = params["padding"]
        n, c, h, w = sx
        out_h, out_w = _out_hw(h, w, kernel, stride, padding)
        c_out = sw[1]
        dtype = np.result_type(dx, dw).str
        scratch = []
        if padding:
            scratch.append(((n, c, h + 2 * padding, w + 2 * padding), dx, "fwd"))
        # The patch matrix feeds the weight gradient — lives to backward.
        scratch.append(((n, out_h, out_w, c, kernel, kernel), dx, "bwd"))
        scratch.append(((n * out_h * out_w, c_out), dtype, "fwd"))
        return ((n, c_out, out_h, out_w), dtype), tuple(scratch)

    @staticmethod
    def backward(ctx: Context, grad):
        flat, w = ctx.saved
        x_shape, kernel, stride, padding, out_h, out_w = ctx.geometry
        n = x_shape[0]
        c_out = w.shape[1]
        g_flat = grad.transpose(0, 2, 3, 1).reshape(-1, c_out)
        gx = gw = None
        if ctx.needs_input_grad[0]:
            cols_grad = g_flat @ w.T
            gx = _col2im(cols_grad.reshape(n, out_h, out_w, -1), x_shape,
                         kernel, stride, padding)
        if ctx.needs_input_grad[1]:
            gw = flat.T @ g_flat
        # The col buffer is only needed for the weight gradient; backward
        # runs exactly once per node, so this is the release point (a no-op
        # for arena slabs, whose lifetime the plan already bounds).
        memplan.release(ctx.cols.reshape(n, out_h, out_w, -1, kernel, kernel))
        ctx.cols = None
        if len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            return gx, gw, g_flat.sum(axis=0)
        return (gx, gw) + (None,) * (len(ctx.needs_input_grad) - 2)


class Conv2d(Module):
    """Convolution layer ``(N, C_in, H, W) -> (N, C_out, H', W')``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        # Stored as (C_in*k*k, C_out) so forward is one matmul over patches.
        self.weight = Parameter(init.kaiming_uniform(rng, (fan_in, out_channels), fan_in))
        if bias:
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_channels,)).astype(np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        params = dict(kernel=self.kernel_size, stride=self.stride,
                      padding=self.padding)
        if self.bias is not None:
            return apply("conv2d", x, self.weight, self.bias, **params)
        return apply("conv2d", x, self.weight, **params)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding})")
