"""2-D convolution via im2col.

The forward pass lowers convolution to a single matmul over unfolded
patches; the backward pass is written as a custom autograd primitive so the
col2im scatter runs in vectorized numpy instead of through generic indexing.
Layout is NCHW throughout, matching the torch convention the paper's models
assume.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


def _im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into (N, out_h, out_w, C*k*k) patches."""
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    strides = x.strides
    shape = (n, c, out_h, out_w, kernel, kernel)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride, strides[2], strides[3]),
        writeable=False,
    )
    # (N, out_h, out_w, C, k, k) -> (N, out_h, out_w, C*k*k)
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kernel * kernel)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int], kernel: int,
            stride: int, padding: int) -> np.ndarray:
    """Scatter-add (N, out_h, out_w, C*k*k) patch gradients back to x."""
    n, c, h, w = x_shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 1, 2, 4, 5)
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            padded[:, :, ki:i_max:stride, kj:j_max:stride] += cols[:, :, :, :, ki, kj]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2d(Module):
    """Convolution layer ``(N, C_in, H, W) -> (N, C_out, H', W')``."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        # Stored as (C_in*k*k, C_out) so forward is one matmul over patches.
        self.weight = Parameter(init.kaiming_uniform(rng, (fan_in, out_channels), fan_in))
        if bias:
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=(out_channels,)).astype(np.float32))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects NCHW input, got shape {x.shape}")
        n = x.shape[0]
        x_shape = x.shape
        k, s, p = self.kernel_size, self.stride, self.padding
        cols, out_h, out_w = _im2col(x.data, k, s, p)
        flat = cols.reshape(-1, cols.shape[-1])            # (N*oh*ow, Cin*k*k)
        out_flat = flat @ self.weight.data                 # (N*oh*ow, Cout)
        out = out_flat.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

        weight = self.weight

        def grad_x(g: np.ndarray) -> np.ndarray:
            g_flat = g.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
            cols_grad = g_flat @ weight.data.T
            return _col2im(cols_grad.reshape(n, out_h, out_w, -1), x_shape, k, s, p)

        def grad_w(g: np.ndarray) -> np.ndarray:
            g_flat = g.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
            return flat.T @ g_flat

        parents = [(x, grad_x), (weight, grad_w)]
        result = Tensor.from_op(out, parents, op="conv2d")
        if self.bias is not None:
            result = result + self.bias.reshape(1, self.out_channels, 1, 1)
        return result

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding})")
