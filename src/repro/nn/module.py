"""``Module``/``Parameter`` infrastructure (the ``torch.nn.Module`` analog).

Modules form a tree via attribute assignment.  They provide:

- ``parameters()`` / ``named_parameters()`` traversal for optimizers,
- ``train()`` / ``eval()`` mode switching (BatchNorm behaves differently),
- ``state_dict()`` / ``load_state_dict()`` for snapshotting the *old model*
  used by distillation-based continual methods, and
- ``copy()`` producing an independent frozen clone of the module.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import memplan
from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` registered as a learnable leaf of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must stay on the tape even when created inside no_grad.
        self.requires_grad = True


class Module:
    """Base class for all layers and models."""

    def __init__(self):
        self._parameters: dict[str, Parameter] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self._modules: dict[str, "Module"] = {}
        # Train/eval mode is a runtime toggle, not model state: checkpoints
        # restore parameters/buffers and the loader decides the mode.
        self.training = True  # repro-lint: disable=SER002

    # ------------------------------------------------------------------
    # Attribute-based registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of reference."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> list[Parameter]:
        return [p for _name, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name in self._buffers:
            yield prefix + name, self._buffers[name]
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear parameter gradients.

        ``set_to_none=False`` zero-fills each existing ``.grad`` buffer in
        place instead of dropping it, so backward accumulates into the same
        arrays every step (no per-step gradient allocation).

        Like ``Optimizer.zero_grad``, this is a step boundary for the tape
        memory planner (the sharded worker path zeroes grads through the
        module, not an optimizer): live replay arenas are bump-reset here.
        """
        for p in self.parameters():
            p.zero_grad(set_to_none=set_to_none)
        memplan.on_step_boundary()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy all parameters and buffers into a flat ``name -> array`` map."""
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state["buffer:" + name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        expected = set(params) | {"buffer:" + n for n, _b in self.named_buffers()}
        missing = expected - set(state)
        unexpected = set(state) - expected
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in params.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}")
            # Sanctioned rebind: loading a checkpoint happens outside any live
            # graph, and the version counter records it for safety anyway.
            param.data = state[name].copy().astype(param.data.dtype)  # repro-lint: disable=AD001
        self._load_buffers(state, prefix="")

    def _load_buffers(self, state: dict[str, np.ndarray], prefix: str) -> None:
        for name in list(self._buffers):
            key = "buffer:" + prefix + name
            self._set_buffer(name, state[key].copy())
        for name, module in self._modules.items():
            module._load_buffers(state, prefix + name + ".")

    def copy(self) -> "Module":
        """Deep, independent copy of this module (parameters and buffers)."""
        import copy as _copy

        clone = _copy.deepcopy(self)
        clone.zero_grad()
        return clone

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
