"""Activation layers (thin module wrappers around :mod:`repro.tensor.ops`)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import ops
from repro.tensor.tensor import Tensor


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x
