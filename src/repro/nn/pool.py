"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.tensor import Tensor


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride), the common CNN case."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"MaxPool2d({k}) needs H, W divisible by {k}, got {(h, w)}")
        oh, ow = h // k, w // k
        windows = x.data.reshape(n, c, oh, k, ow, k)
        out = windows.max(axis=(3, 5))
        # argmax mask for backward (ties split the gradient as in Tensor.max)
        expanded = out[:, :, :, None, :, None]
        mask = (windows == expanded).astype(x.data.dtype)
        mask /= mask.sum(axis=(3, 5), keepdims=True)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            g_exp = g[:, :, :, None, :, None] * mask
            return g_exp.reshape(n, c, h, w)

        return Tensor.from_op(out, [(x, grad_fn)], op="maxpool2d")


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"AvgPool2d({k}) needs H, W divisible by {k}, got {(h, w)}")
        oh, ow = h // k, w // k
        out = x.data.reshape(n, c, oh, k, ow, k).mean(axis=(3, 5))
        scale = 1.0 / (k * k)

        def grad_fn(g: np.ndarray) -> np.ndarray:
            g_exp = np.broadcast_to(g[:, :, :, None, :, None] * scale, (n, c, oh, k, ow, k))
            return g_exp.reshape(n, c, h, w)

        return Tensor.from_op(out, [(x, grad_fn)], op="avgpool2d")


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
