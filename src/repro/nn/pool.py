"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor import memplan
from repro.tensor.engine import Context, Op, apply, register
from repro.tensor.tensor import Tensor

_BOOL = np.dtype(np.bool_).str


@register
class MaxPool2dOp(Op):
    """Non-overlapping max pooling (kernel == stride)."""

    name = "maxpool2d"

    @staticmethod
    def forward(ctx: Context, x, *, kernel: int, out=None):
        n, c, h, w = x.shape
        oh, ow = h // kernel, w // kernel
        windows = x.reshape(n, c, oh, kernel, ow, kernel)
        if out is None:
            out = windows.max(axis=(3, 5))
            # argmax mask for backward (ties split the gradient as in Tensor.max)
            expanded = out[:, :, :, None, :, None]
            mask = (windows == expanded).astype(x.dtype)
            mask /= mask.sum(axis=(3, 5), keepdims=True)
        else:
            windows.max(axis=(3, 5), out=out)
            expanded = out[:, :, :, None, :, None]
            eq = memplan.acquire(windows.shape, np.bool_)
            mask = memplan.acquire(windows.shape, x.dtype)
            msum = memplan.acquire((n, c, oh, 1, ow, 1), x.dtype)
            np.equal(windows, expanded, out=eq)
            np.copyto(mask, eq)
            mask.sum(axis=(3, 5), keepdims=True, out=msum)
            np.true_divide(mask, msum, out=mask)
            memplan.release(eq)
            memplan.release(msum)
        ctx.mask = mask
        ctx.shape = (n, c, h, w)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        kernel = params["kernel"]
        n, c, h, w = shape
        oh, ow = h // kernel, w // kernel
        win = (n, c, oh, kernel, ow, kernel)
        return ((n, c, oh, ow), dtype), (
            (win, _BOOL, "fwd"),            # equality mask
            (win, dtype, "bwd"),            # tie-split gradient mask
            ((n, c, oh, 1, ow, 1), dtype, "fwd"))  # tie counts

    @staticmethod
    def backward(ctx: Context, grad):
        g_exp = grad[:, :, :, None, :, None] * ctx.mask
        return (g_exp.reshape(ctx.shape),)


@register
class AvgPool2dOp(Op):
    """Non-overlapping average pooling."""

    name = "avgpool2d"

    @staticmethod
    def forward(ctx: Context, x, *, kernel: int, out=None):
        n, c, h, w = x.shape
        oh, ow = h // kernel, w // kernel
        ctx.geometry = (n, c, oh, kernel, ow)
        ctx.shape = (n, c, h, w)
        windows = x.reshape(n, c, oh, kernel, ow, kernel)
        if out is None:
            return windows.mean(axis=(3, 5))
        windows.mean(axis=(3, 5), out=out)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        kernel = params["kernel"]
        n, c, h, w = shape
        return ((n, c, h // kernel, w // kernel), dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        n, c, oh, kernel, ow = ctx.geometry
        scale = 1.0 / (kernel * kernel)
        g_exp = np.broadcast_to(grad[:, :, :, None, :, None] * scale,
                                (n, c, oh, kernel, ow, kernel))
        return (g_exp.reshape(ctx.shape),)


class MaxPool2d(Module):
    """Non-overlapping max pooling (kernel == stride), the common CNN case."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"MaxPool2d({k}) needs H, W divisible by {k}, got {(h, w)}")
        return apply("maxpool2d", x, kernel=k)


class AvgPool2d(Module):
    """Non-overlapping average pooling."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k = self.kernel_size
        n, c, h, w = x.shape
        if h % k or w % k:
            raise ValueError(f"AvgPool2d({k}) needs H, W divisible by {k}, got {(h, w)}")
        return apply("avgpool2d", x, kernel=k)


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
