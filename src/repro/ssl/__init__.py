"""Contrastive self-supervised learning (Sec. II-A of the paper).

Provides the encoder ``f(.)`` (backbone + projector MLP), the two CSSL
objectives the paper evaluates — SimSiam (Eq. 3) and BarlowTwins (Eq. 4) —
and the distillation head ``p_dis`` implementing ``L_dis`` (Eq. 9) for both
objectives.
"""

from repro.ssl.encoder import Encoder, build_backbone
from repro.ssl.base import CSSLObjective
from repro.ssl.simsiam import SimSiam
from repro.ssl.barlow import BarlowTwins
from repro.ssl.byol import BYOL
from repro.ssl.distill import DistillationHead
from repro.ssl.step import SSLTrainStep
from repro.ssl.vae import VAE, VAEObjective

__all__ = [
    "Encoder",
    "build_backbone",
    "CSSLObjective",
    "SimSiam",
    "BarlowTwins",
    "BYOL",
    "SSLTrainStep",
    "VAE",
    "VAEObjective",
    "DistillationHead",
]
