"""Variational autoencoder objective — the pre-CSSL unsupervised family.

The paper's introduction positions CSSL-based UCL against the earlier
VAE-based UCL methods (VASE, CURL) and argues they "show a significant drop
in performance on complex data sets".  This module implements the VAE
substrate needed to *test* that claim: an MLP encoder/decoder VAE exposed
through the :class:`~repro.ssl.base.CSSLObjective` interface, so the
continual trainer, KNN evaluation, and method zoo all work unchanged.

- ``representation(x)`` returns the posterior mean ``mu`` (the standard
  VAE evaluation representation);
- ``css_loss(x1, x2)`` is the ELBO of the first augmented view (VAEs take a
  single view; the second is ignored);
- ``generate(n)`` decodes latent samples — the primitive generative-replay
  methods (CURL-style) build on.
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.ssl.base import CSSLObjective
from repro.ssl.encoder import Encoder
from repro.tensor import engine, ops
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import fallback_rng


class VAE(Module):
    """MLP VAE on flattened inputs in [0, 1].

    Parameters
    ----------
    input_dim:
        Flattened sample width.
    latent_dim:
        Size of the latent (and evaluation-representation) space.
    hidden_dim:
        Width of the single hidden layer of encoder and decoder.
    """

    def __init__(self, input_dim: int, latent_dim: int, hidden_dim: int = 128,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.encoder = MLP([input_dim, hidden_dim], batch_norm=False,
                           final_activation=True, rng=rng)
        self.mu_head = Linear(hidden_dim, latent_dim, rng=rng)
        self.logvar_head = Linear(hidden_dim, latent_dim, rng=rng)
        self.decoder = MLP([latent_dim, hidden_dim, input_dim], batch_norm=False, rng=rng)

    def encode(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder(x)
        return self.mu_head(hidden), self.logvar_head(hidden)

    def decode(self, z: Tensor) -> Tensor:
        return ops.sigmoid(self.decoder(z))

    def elbo_loss(self, x: Tensor, rng: np.random.Generator,
                  kl_weight: float = 1.0) -> Tensor:
        """Negative ELBO: MSE reconstruction + KL(q(z|x) || N(0, I))."""
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        cap = engine.active_capture()
        if cap is not None:
            cap.mark_unsafe("the VAE reparameterization draws fresh noise "
                            "every step; a tape would replay a frozen sample")
        mu, logvar = self.encode(x)
        epsilon = Tensor(rng.standard_normal(size=mu.shape).astype(np.float32))
        z = mu + ops.exp(logvar * 0.5) * epsilon
        reconstruction = self.decode(z)
        recon_loss = ((reconstruction - x) ** 2).sum(axis=1).mean()
        kl = (-0.5 * (1.0 + logvar - mu * mu - ops.exp(logvar)).sum(axis=1)).mean()
        return recon_loss + kl_weight * kl

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Decode ``n`` prior samples (no gradient)."""
        with no_grad():
            z = Tensor(rng.standard_normal(size=(n, self.latent_dim)).astype(np.float32))
            return self.decode(z).numpy()


class _LatentMeanEncoder(Module):
    """Adapter: exposes the VAE posterior mean as an Encoder-like module."""

    def __init__(self, vae: VAE):
        super().__init__()
        self.vae = vae
        self.output_dim = vae.latent_dim

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        mu, _logvar = self.vae.encode(x)
        return mu


class VAEObjective(CSSLObjective):
    """The VAE wrapped in the CSSL-objective interface.

    ``kl_weight`` trades reconstruction against posterior regularity
    (beta-VAE style); the evaluation representation is the posterior mean.
    """

    def __init__(self, input_dim: int, latent_dim: int, hidden_dim: int = 128,
                 kl_weight: float = 1.0, rng: np.random.Generator | None = None):
        rng = rng or fallback_rng()
        vae = VAE(input_dim, latent_dim, hidden_dim, rng=rng)
        super().__init__(_LatentMeanEncoder(vae))
        self.vae = vae
        self.kl_weight = kl_weight
        self._rng = rng

    def __setattr__(self, name, value):
        # `vae` is already registered through the encoder adapter; registering
        # it again would duplicate every parameter in the optimizer.
        if name == "vae":
            object.__setattr__(self, name, value)
            return
        super().__setattr__(name, value)

    def css_loss(self, x1: np.ndarray, x2: np.ndarray) -> Tensor:
        return self.vae.elbo_loss(Tensor(x1), self._rng, self.kl_weight)

    def align(self, current: Tensor, target: np.ndarray) -> Tensor:
        """Plain cosine alignment (lets distillation methods run on VAEs)."""
        return -(ops.cosine_similarity(current, Tensor(target))).mean()

    def generate(self, n: int) -> np.ndarray:
        return self.vae.sample(n, self._rng)
