"""The encoder ``f(.)``: backbone + 2-layer projector MLP (Sec. IV-A5).

The paper concatenates a ResNet-18 with a 2-layer MLP for images, or uses a
7-layer MLP for tabular rows.  ``build_backbone`` exposes all backbones by
name so experiment configs stay declarative.
"""

from __future__ import annotations

import numpy as np

from repro.nn.convnet import TinyConvNet
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.nn.resnet import resnet18, tiny_resnet
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


def build_backbone(kind: str, rng: np.random.Generator, *, in_channels: int = 3,
                   image_size: int = 8, input_dim: int = 16,
                   hidden_dim: int = 64) -> Module:
    """Construct a named backbone.

    Parameters
    ----------
    kind:
        ``"tiny-conv"`` (default CPU image backbone), ``"tiny-resnet"``,
        ``"resnet18"`` (the paper's image backbone), or ``"mlp"``
        (tabular; a 7-layer MLP as in Sec. IV-A5).
    """
    if kind == "tiny-conv":
        return TinyConvNet(in_channels=in_channels, image_size=image_size, rng=rng)
    if kind == "tiny-resnet":
        return tiny_resnet(in_channels=in_channels, rng=rng)
    if kind == "resnet18":
        return resnet18(in_channels=in_channels, rng=rng)
    if kind == "mlp":
        # 7 layers total as in the paper's tabular encoder.
        dims = [input_dim] + [hidden_dim] * 6
        return MLP(dims, batch_norm=True, final_activation=False, rng=rng)
    raise ValueError(f"unknown backbone kind {kind!r}")


class Encoder(Module):
    """``f(x)``: backbone features projected to the representation space.

    Parameters
    ----------
    backbone:
        Any module with an ``output_dim`` attribute mapping input batches to
        (N, output_dim) features.
    representation_dim:
        Width ``d`` of the representation space (paper: 2048 image /
        128 tabular; CI scale uses smaller ``d``).
    """

    def __init__(self, backbone: Module, representation_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        self.backbone = backbone
        self.projector = MLP([backbone.output_dim, representation_dim, representation_dim],
                             batch_norm=True, rng=rng)
        self.output_dim = representation_dim

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.projector(self.backbone(x))

    def features(self, x) -> Tensor:
        """Backbone features without projection (used by the DER baseline)."""
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.backbone(x)
