"""BarlowTwins (Zbontar et al. 2021) — the alternative objective of Table VI.

``L_css = sum_a (1 - C_aa)^2 + lambda * sum_a sum_{b != a} C_ab^2`` (Eq. 4),
where ``C`` is the cross-correlation matrix between the two views' batch
representations, computed with per-dimension cosine normalization exactly as
the paper writes it.
"""

from __future__ import annotations

import numpy as np

from repro.ssl.base import CSSLObjective
from repro.ssl.encoder import Encoder
from repro.tensor import ops
from repro.tensor.tensor import Tensor


class BarlowTwins(CSSLObjective):
    """BarlowTwins objective with off-diagonal weight ``lambda``."""

    def __init__(self, encoder: Encoder, lambda_offdiag: float = 5e-3,
                 rng: np.random.Generator | None = None):
        super().__init__(encoder)
        self.lambda_offdiag = lambda_offdiag

    def _cross_correlation(self, z1: Tensor, z2: Tensor) -> Tensor:
        """C_ab = <z1[:,a], z2[:,b]> / (||z1[:,a]|| ||z2[:,b]||), Eq. 4."""
        # Center each dimension over the batch, then column-normalize via
        # the fused l2-normalize kernel (column axis, Eq. 4's eps).
        z1c = z1 - z1.mean(axis=0, keepdims=True)
        z2c = z2 - z2.mean(axis=0, keepdims=True)
        return ops.l2_normalize(z1c, axis=0, eps=1e-8).T @ ops.l2_normalize(z2c, axis=0, eps=1e-8)

    def _barlow_loss(self, z1: Tensor, z2: Tensor) -> Tensor:
        c = self._cross_correlation(z1, z2)
        d = c.shape[0]
        eye = np.eye(d, dtype=np.float32)
        diag_term = (((c - 1.0) * eye) ** 2).sum()
        offdiag_term = ((c * (1.0 - eye)) ** 2).sum()
        return diag_term + self.lambda_offdiag * offdiag_term

    def css_loss(self, x1: np.ndarray, x2: np.ndarray) -> Tensor:
        return self._barlow_loss(self.encoder(x1), self.encoder(x2))

    def align(self, current: Tensor, target: np.ndarray) -> Tensor:
        """Barlow-style alignment of ``current`` against fixed old targets.

        As the paper notes (Sec. IV-C3), this compares batch statistics that
        mix data and models, which makes Barlow distillation noisier than
        SimSiam distillation — the Table VI effect.
        """
        return self._barlow_loss(current, Tensor(target))
