"""Common interface for CSSL objectives.

A :class:`CSSLObjective` owns an :class:`~repro.ssl.encoder.Encoder` plus any
loss-specific heads (SimSiam's predictor), and exposes:

- ``css_loss(x1, x2)`` — the self-supervised objective on two views
  (Eq. 3 for SimSiam, Eq. 4 for BarlowTwins);
- ``align(current, target)`` — the alignment term used by distillation,
  where ``target`` is a *fixed* numpy array from the old model.  The
  concrete form varies with the objective (Sec. II-B2: "the concrete
  definition of L_dis varies with different L_css").
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.ssl.encoder import Encoder
from repro.tensor.tensor import Tensor


class CSSLObjective(Module):
    """Base class for SimSiam / BarlowTwins objectives."""

    def __init__(self, encoder: Encoder):
        super().__init__()
        self.encoder = encoder

    @property
    def representation_dim(self) -> int:
        return self.encoder.output_dim

    def representation(self, x) -> Tensor:
        """Current-model representation of a batch (with gradient)."""
        return self.encoder(x)

    def css_loss(self, x1: np.ndarray, x2: np.ndarray) -> Tensor:
        """Self-supervised loss on two augmented views of the same batch."""
        raise NotImplementedError

    def align(self, current: Tensor, target: np.ndarray) -> Tensor:
        """Alignment loss pulling ``current`` toward the fixed ``target``."""
        raise NotImplementedError
