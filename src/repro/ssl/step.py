"""The SSL training step as a reusable, tape-accelerated unit.

The inner loop of every run is the same five lines: zero grads, compute
``L_css`` on two views, backward, optimizer step.  :class:`SSLTrainStep`
packages them so the loop body exists in exactly one place and — because
the loop is shape-stable — can be driven through
:class:`repro.tensor.tape.TapedFunction`: the first step per batch shape is
captured, later steps replay the recorded program (bit-for-bit identical
gradients, no Python dispatch or graph construction).  Objectives that
cannot be taped (per-step randomness, non-op side effects) poison their
first capture and the step silently stays eager.
"""

from __future__ import annotations

import numpy as np

from repro.ssl.base import CSSLObjective
from repro.tensor.tape import TapedFunction


class SSLTrainStep:
    """One optimizer step of a CSSL objective over two augmented views.

    Parameters
    ----------
    objective:
        The live :class:`CSSLObjective`; its parameters must be the ones
        ``optimizer`` updates.
    optimizer:
        Any ``repro.optim`` optimizer over ``objective.parameters()``.
    use_tape:
        Capture the forward+backward once per batch shape and replay it on
        subsequent steps (default).  ``False`` forces eager dispatch.
    """

    def __init__(self, objective: CSSLObjective, optimizer,
                 use_tape: bool = True):
        self.objective = objective
        self.optimizer = optimizer

        def _forward_backward(x1: np.ndarray, x2: np.ndarray):
            loss = objective.css_loss(x1, x2)
            loss.backward()
            return loss

        self._forward_backward = (TapedFunction(_forward_backward, name="ssl-step")
                                  if use_tape else _forward_backward)

    @property
    def taped(self) -> TapedFunction | None:
        """The tape wrapper, or ``None`` when running pure eager."""
        fb = self._forward_backward
        return fb if isinstance(fb, TapedFunction) else None

    def reset_tape(self) -> None:
        """Drop cached tapes (call when the parameter set changes)."""
        taped = self.taped
        if taped is not None:
            taped.reset()

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> float:
        """Run one step; returns the scalar loss value."""
        self.optimizer.zero_grad(set_to_none=False)
        loss = self._forward_backward(x1, x2)
        self.optimizer.step()
        return float(loss.data)
