"""SimSiam (Chen & He 2021) — the paper's default CSSL objective (Eq. 3).

``L_css(x1, x2) = -1/2 [ cos(h(z1), sg(z2)) + cos(h(z2), sg(z1)) ]``

where ``z = f(x)`` is the encoder output, ``h`` is the 2-layer bottleneck
predictor, and ``sg`` is stop-gradient (``Tensor.detach``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.mlp import MLP
from repro.ssl.base import CSSLObjective
from repro.ssl.encoder import Encoder
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class SimSiam(CSSLObjective):
    """SimSiam objective.

    Parameters
    ----------
    encoder:
        The shared encoder ``f``.
    predictor_hidden:
        Hidden width of the predictor ``h``; SimSiam uses a bottleneck
        (d/4 in the original paper).
    """

    def __init__(self, encoder: Encoder, predictor_hidden: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__(encoder)
        rng = rng or fallback_rng()
        d = encoder.output_dim
        hidden = predictor_hidden or max(d // 4, 4)
        self.predictor = MLP([d, hidden, d], batch_norm=True, rng=rng)

    @staticmethod
    def _negative_cosine(p: Tensor, z: Tensor) -> Tensor:
        """Mean of ``-cos(p, z)`` over the batch; ``z`` must be detached by the caller."""
        return -(ops.cosine_similarity(p, z)).mean()

    def css_loss(self, x1: np.ndarray, x2: np.ndarray) -> Tensor:
        z1 = self.encoder(x1)
        z2 = self.encoder(x2)
        p1 = self.predictor(z1)
        p2 = self.predictor(z2)
        loss = self._negative_cosine(p1, z2.detach()) + self._negative_cosine(p2, z1.detach())
        return loss * 0.5

    def align(self, current: Tensor, target: np.ndarray) -> Tensor:
        """SimSiam-style alignment: ``-cos(h(current), target)``.

        The prediction flows through the predictor so the distillation loss
        has the same geometry as ``L_css`` (this is CaSSLe's construction for
        SimSiam); the target is a fixed old-model representation.
        """
        p = self.predictor(current)
        return self._negative_cosine(p, Tensor(target))
