"""The distillation head ``p_dis`` and loss ``L_dis`` (Eq. 9).

``L_dis(x) = L_css(p_dis(f(x)), f_old(x))``: the current representation is
projected back into the *old* representation space by a 2-layer MLP, then
aligned with the frozen old model's representation of the same input.  Both
CaSSLe-style new-data distillation and EDSR's memory replay (Eq. 16, where
the target is additionally noise-perturbed) are expressed through this head.
"""

from __future__ import annotations

import numpy as np

from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.ssl.base import CSSLObjective
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class DistillationHead(Module):
    """Projector ``p_dis`` bound to a CSSL objective's alignment loss.

    Parameters
    ----------
    objective:
        The live CSSL objective (supplies the current encoder and the
        loss-specific ``align``).
    rng:
        Generator for projector init.  A fresh head is created at the start
        of every increment, as in CaSSLe.
    """

    def __init__(self, objective: CSSLObjective, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or fallback_rng()
        d = objective.representation_dim
        # 2-layer MLP "with the same dimension as the representation" (Sec. IV-A5)
        self.projector = MLP([d, d, d], batch_norm=True, rng=rng)
        self._objective = objective  # plain attribute: not a registered child

    def __setattr__(self, name, value):
        # Avoid registering the objective as a submodule (its parameters are
        # optimized through the main model, not through this head).
        if name == "_objective":
            object.__setattr__(self, name, value)
            return
        super().__setattr__(name, value)

    def loss(self, x: np.ndarray, target: np.ndarray) -> Tensor:
        """``L_dis`` for a batch ``x`` against old-model targets ``target``.

        ``target`` is a plain array: the old model's representation of the
        same (augmented) inputs, optionally perturbed by EDSR's noise.
        """
        current = self._objective.representation(x)
        projected = self.projector(current)
        return self._objective.align(projected, target)
