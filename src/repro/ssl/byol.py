"""BYOL (Grill et al. 2020) — extension objective beyond the paper's two.

The paper's Sec. II-A cites BYOL among the modern CSSL family; this module
adds it so the Table VI objective-swap experiment can be extended to a third
loss.  BYOL predicts the representation of one view from the other, but the
target comes from a *momentum (EMA) copy* of the encoder rather than a
stop-gradient of the live one:

``L = || normalize(h(f(x1))) - normalize(f_ema(x2)) ||^2`` (symmetrized).

The EMA target network is refreshed at the start of every ``css_loss`` call
(i.e. once per training step), which matches the usual per-step momentum
update without requiring optimizer hooks.
"""

from __future__ import annotations

import numpy as np

from repro.nn.mlp import MLP
from repro.ssl.base import CSSLObjective
from repro.ssl.encoder import Encoder
from repro.tensor import engine, ops
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import fallback_rng


class BYOL(CSSLObjective):
    """BYOL objective with momentum coefficient ``tau``."""

    def __init__(self, encoder: Encoder, tau: float = 0.99,
                 predictor_hidden: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__(encoder)
        if not 0.0 <= tau < 1.0:
            raise ValueError("tau must be in [0, 1)")
        rng = rng or fallback_rng()
        d = encoder.output_dim
        hidden = predictor_hidden or max(d // 4, 4)
        self.predictor = MLP([d, hidden, d], batch_norm=True, rng=rng)
        self.tau = tau
        self._target = encoder.copy()
        self._target.eval()

    def __setattr__(self, name, value):
        # The EMA target is deliberately NOT a registered submodule: its
        # parameters must never reach the optimizer.
        if name == "_target":
            object.__setattr__(self, name, value)
            return
        super().__setattr__(name, value)

    def momentum_update(self) -> None:
        """``theta_target <- tau * theta_target + (1 - tau) * theta_online``."""
        cap = engine.active_capture()
        if cap is not None:
            cap.mark_unsafe("BYOL's momentum update is a non-op side effect "
                            "a tape replay would skip")
        online = dict(self.encoder.named_parameters())
        for name, target_param in self._target.named_parameters():
            # Sanctioned rebind: the EMA target is only ever run under
            # no_grad, so no op has saved it for backward.
            target_param.data = (self.tau * target_param.data  # repro-lint: disable=AD001
                                 + (1.0 - self.tau) * online[name].data)
        online_buffers = dict(self.encoder.named_buffers())
        for name, buf in self._target.named_buffers():
            # Running stats track the online network directly.
            np.copyto(buf, online_buffers[name])

    def target_representation(self, x: np.ndarray) -> np.ndarray:
        with no_grad():
            return self._target(Tensor(x)).numpy()

    @staticmethod
    def _normalized_mse(prediction: Tensor, target: np.ndarray) -> Tensor:
        # Fused normalize-both + squared-distance kernel (one tape node).
        return ops.normalized_mse(prediction, Tensor(target), axis=1).mean()

    def css_loss(self, x1: np.ndarray, x2: np.ndarray) -> Tensor:
        self.momentum_update()
        p1 = self.predictor(self.encoder(x1))
        p2 = self.predictor(self.encoder(x2))
        t1 = self.target_representation(x1)
        t2 = self.target_representation(x2)
        return (self._normalized_mse(p1, t2) + self._normalized_mse(p2, t1)) * 0.5

    def align(self, current: Tensor, target: np.ndarray) -> Tensor:
        """BYOL-style alignment for distillation: normalized MSE through
        the predictor (equivalent to negative cosine up to an affine map)."""
        return self._normalized_mse(self.predictor(current), target)
