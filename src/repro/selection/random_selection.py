"""Uniform random selection (the LUMP/DER baseline of Table V)."""

from __future__ import annotations

import numpy as np

from repro.selection.base import SelectionContext, SelectionStrategy


class RandomSelection(SelectionStrategy):
    name = "random"

    def select(self, context: SelectionContext) -> np.ndarray:
        budget = self._clip_budget(context)
        chosen = context.rng.choice(len(context.representations), size=budget, replace=False)
        return np.sort(chosen)
