"""K-means clustering from scratch plus the cluster-center selection baseline.

``kmeans`` is Lloyd's algorithm with k-means++ seeding; the Table V
"K-means" row stores, for each of ``budget`` clusters, the sample closest to
the cluster centroid.
"""

from __future__ import annotations

import numpy as np

from repro.selection.base import SelectionContext, SelectionStrategy


def kmeans_plus_plus_seeds(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007): indices of k seeds."""
    n = len(points)
    if k > n:
        raise ValueError(f"cannot seed {k} centers from {n} points")
    seeds = [int(rng.integers(n))]
    dist_sq = np.full(n, np.inf)
    for _ in range(k - 1):
        delta = points - points[seeds[-1]]
        dist_sq = np.minimum(dist_sq, np.einsum("ij,ij->i", delta, delta))
        total = dist_sq.sum()
        if total <= 0:
            # All remaining points coincide with a seed: pick uniformly.
            remaining = np.setdiff1d(np.arange(n), seeds)
            seeds.append(int(rng.choice(remaining)))
            continue
        seeds.append(int(rng.choice(n, p=dist_sq / total)))
    return np.asarray(seeds)


def kmeans(points: np.ndarray, k: int, rng: np.random.Generator,
           max_iters: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm. Returns (centroids (k, d), assignments (N,))."""
    points = np.asarray(points, dtype=np.float64)
    centroids = points[kmeans_plus_plus_seeds(points, k, rng)].copy()
    assignments = np.zeros(len(points), dtype=np.int64)
    for iteration in range(max_iters):
        # squared distances to all centroids: (N, k)
        d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        new_assignments = d2.argmin(axis=1)
        if iteration > 0 and np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for c in range(k):
            members = points[assignments == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its centroid.
                farthest = d2.min(axis=1).argmax()
                centroids[c] = points[farthest]
    # Final reassignment so the returned labels match the returned centroids
    # even when the last iteration moved a centroid (e.g. empty-cluster reseed).
    d2 = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    return centroids, d2.argmin(axis=1)


class KMeansSelection(SelectionStrategy):
    """Store the sample nearest each of ``budget`` cluster centroids."""

    name = "kmeans"

    def select(self, context: SelectionContext) -> np.ndarray:
        budget = self._clip_budget(context)
        points = context.representations
        centroids, assignments = kmeans(points, budget, context.rng)
        chosen: list[int] = []
        taken = np.zeros(len(points), dtype=bool)
        for c in range(budget):
            candidates = np.nonzero((assignments == c) & ~taken)[0]
            if len(candidates) == 0:
                candidates = np.nonzero(~taken)[0]
            delta = points[candidates] - centroids[c]
            nearest = candidates[np.einsum("ij,ij->i", delta, delta).argmin()]
            chosen.append(int(nearest))
            taken[nearest] = True
        return np.sort(np.asarray(chosen))
