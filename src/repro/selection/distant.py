"""Distant selection — maximum-spread subset via k-means++ seeding (Table V)."""

from __future__ import annotations

import numpy as np

from repro.selection.base import SelectionContext, SelectionStrategy
from repro.selection.kmeans import kmeans_plus_plus_seeds


class DistantSelection(SelectionStrategy):
    """Select ``budget`` mutually distant samples (k-means++ seeding)."""

    name = "distant"

    def select(self, context: SelectionContext) -> np.ndarray:
        budget = self._clip_budget(context)
        seeds = kmeans_plus_plus_seeds(context.representations, budget, context.rng)
        return np.sort(seeds)
