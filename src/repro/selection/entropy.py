"""High-entropy selection — the paper's method (Sec. III-A).

The paper reduces memory selection to finding the subset whose
representations "maintain the highest singular values" of the full
representation matrix (Eq. 15), solved "via Principal Component Analysis".

The implementation is greedy spectrum-preserving row selection (pivoted
Gram–Schmidt, a.k.a. rank-revealing QR on rows): repeatedly pick the sample
with the largest representation component *orthogonal to the span of the
samples already selected*.  The first pick is the largest-norm sample (the
dominant direction), subsequent picks cover the remaining principal
directions, which is precisely a greedy maximizer of the retained singular
value mass.  Once the selected span is exhausted (budget > effective rank),
the projector resets and the sweep repeats on the remaining samples, adding
samples that re-enforce the strongest directions.
"""

from __future__ import annotations

import numpy as np

from repro.selection.base import SelectionContext, SelectionStrategy


class HighEntropySelection(SelectionStrategy):
    name = "high-entropy"

    def __init__(self, center: bool = True, tolerance: float = 1e-8):
        self.center = center
        self.tolerance = tolerance

    def select(self, context: SelectionContext) -> np.ndarray:
        budget = self._clip_budget(context)
        reps = context.representations
        if self.center:
            reps = reps - reps.mean(axis=0, keepdims=True)
        n = len(reps)

        selected: list[int] = []
        available = np.ones(n, dtype=bool)
        residual = reps.copy()
        basis: list[np.ndarray] = []

        while len(selected) < budget:
            norms = np.einsum("ij,ij->i", residual, residual)
            norms[~available] = -1.0
            best = int(np.argmax(norms))
            if norms[best] <= self.tolerance:
                # Selected span covers everything left: restart the sweep on
                # the remaining samples with a fresh projector.
                residual = reps.copy()
                for index in selected:
                    residual[index] = 0.0
                basis = []
                if selected:
                    # Every remaining row lies in the selected span, so norm
                    # no longer discriminates: a duplicate of a selected
                    # sample scores high yet adds zero within-subset
                    # variance.  Score by the variance a candidate would add
                    # to the subset instead (distance from the selected
                    # mean), which keeps the greedy trace at least as good
                    # as a random pick even on degenerate duplicate-heavy
                    # clouds.
                    offsets = reps - reps[selected].mean(axis=0)
                    gains = np.einsum("ij,ij->i", offsets, offsets)
                    gains[~available] = -1.0
                    best = int(np.argmax(gains))
                    if gains[best] <= 0.0:
                        # All remaining rows duplicate the selected mean;
                        # fall back to any available sample.
                        best = int(np.argmax(available))
                else:
                    norms = np.einsum("ij,ij->i", residual, residual)
                    norms[~available] = -1.0
                    best = int(np.argmax(norms))
                    if norms[best] <= 0.0:
                        # All rows are exactly zero; fall back to any.
                        best = int(np.argmax(available))
            direction = residual[best] / (np.linalg.norm(residual[best]) + 1e-12)
            basis.append(direction)
            selected.append(best)
            available[best] = False
            # Deflate: remove the chosen direction from every residual row.
            residual -= np.outer(residual @ direction, direction)
        return np.sort(np.asarray(selected))
