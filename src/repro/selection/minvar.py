"""Min-Var selection (Lin et al. 2022, the Table V baseline).

Forms ``n_groups`` clusters (the paper uses one per class; unsupervised runs
treat it as a hyper-parameter) and, within each cluster, stores the samples
whose *augmented views* have the smallest representation variance — i.e. the
most augmentation-stable samples.
"""

from __future__ import annotations

import numpy as np

from repro.selection.base import SelectionContext, SelectionStrategy
from repro.selection.kmeans import kmeans


class MinVarianceSelection(SelectionStrategy):
    name = "min-var"
    requires_view_variance = True

    def __init__(self, default_groups: int = 2):
        self.default_groups = default_groups

    def select(self, context: SelectionContext) -> np.ndarray:
        if context.view_variances is None:
            raise ValueError("Min-Var selection requires per-sample augmented-view variances")
        budget = self._clip_budget(context)
        points = context.representations
        variances = np.asarray(context.view_variances, dtype=np.float64)
        if len(variances) != len(points):
            raise ValueError("view_variances length mismatch")

        n_groups = min(context.n_groups or self.default_groups, budget, len(points))
        _centroids, assignments = kmeans(points, n_groups, context.rng)

        # Budget is split evenly across clusters; leftovers go to the
        # globally lowest-variance unselected samples.
        per_group = budget // n_groups
        chosen: list[int] = []
        for c in range(n_groups):
            members = np.nonzero(assignments == c)[0]
            ranked = members[np.argsort(variances[members])]
            chosen.extend(int(i) for i in ranked[:per_group])
        if len(chosen) < budget:
            remaining = np.setdiff1d(np.arange(len(points)), chosen)
            ranked = remaining[np.argsort(variances[remaining])]
            chosen.extend(int(i) for i in ranked[:budget - len(chosen)])
        return np.sort(np.asarray(chosen[:budget]))
