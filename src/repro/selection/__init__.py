"""Memory data selection (Sec. III-A and Table V of the paper).

Five strategies select a budget-limited subset of the just-learned
increment, operating purely on *representations* (no labels):

- :class:`RandomSelection` — LUMP/DER's choice;
- :class:`KMeansSelection` — cluster centers (MacQueen 1967);
- :class:`MinVarianceSelection` — Lin et al. 2022: per-cluster samples whose
  augmented views have minimal representation variance;
- :class:`DistantSelection` — k-means++ seeding (Arthur & Vassilvitskii 2007),
  maximizing pairwise spread;
- :class:`HighEntropySelection` — the paper's method: the subset whose
  representation matrix best preserves the top singular values, i.e.
  maximizes the coding-length entropy of Eq. 14.

:mod:`repro.selection.coding_length` provides the lossy coding-length
entropy estimator itself, used both by the selection objective and by the
tests validating the paper's Sec. III-A claims.
"""

from repro.selection.base import SelectionContext, SelectionStrategy, make_strategy
from repro.selection.random_selection import RandomSelection
from repro.selection.entropy import HighEntropySelection
from repro.selection.kmeans import KMeansSelection, kmeans, kmeans_plus_plus_seeds
from repro.selection.distant import DistantSelection
from repro.selection.minvar import MinVarianceSelection
from repro.selection.coding_length import coding_length_entropy, covariance_trace

__all__ = [
    "SelectionContext",
    "SelectionStrategy",
    "make_strategy",
    "RandomSelection",
    "HighEntropySelection",
    "KMeansSelection",
    "kmeans",
    "kmeans_plus_plus_seeds",
    "DistantSelection",
    "MinVarianceSelection",
    "coding_length_entropy",
    "covariance_trace",
]
