"""Selection strategy interface."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SelectionContext:
    """Everything a selection strategy may need.

    Attributes
    ----------
    representations:
        (N, d) representations of the increment's training samples,
        extracted by the model optimized on that increment (``f_hat``),
        without augmentation — exactly the paper's selecting stage.
    budget:
        Number of samples to keep (``s``).
    rng:
        Seeded generator for stochastic strategies.
    view_variances:
        Optional (N,) per-sample variance of *augmented-view*
        representations — required by Min-Var only.
    n_groups:
        Cluster count hint for Min-Var (the paper uses the class count; in
        the unsupervised setting this is a hyper-parameter).
    """

    representations: np.ndarray
    budget: int
    rng: np.random.Generator
    view_variances: np.ndarray | None = None
    n_groups: int | None = None

    def __post_init__(self):
        self.representations = np.asarray(self.representations, dtype=np.float64)
        if self.representations.ndim != 2:
            raise ValueError("representations must be (N, d)")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")


class SelectionStrategy:
    """Selects ``budget`` sample indices from an increment."""

    name = "base"
    requires_view_variance = False

    def select(self, context: SelectionContext) -> np.ndarray:
        """Return sorted unique indices, ``min(budget, N)`` of them."""
        raise NotImplementedError

    def _clip_budget(self, context: SelectionContext) -> int:
        return min(context.budget, len(context.representations))


def make_strategy(name: str) -> SelectionStrategy:
    """Factory mapping Table V row names to strategy instances."""
    from repro.selection.distant import DistantSelection
    from repro.selection.entropy import HighEntropySelection
    from repro.selection.kmeans import KMeansSelection
    from repro.selection.minvar import MinVarianceSelection
    from repro.selection.random_selection import RandomSelection

    strategies = {
        "random": RandomSelection,
        "kmeans": KMeansSelection,
        "min-var": MinVarianceSelection,
        "distant": DistantSelection,
        "high-entropy": HighEntropySelection,
    }
    try:
        return strategies[name]()
    except KeyError as exc:
        raise KeyError(f"unknown selection strategy {name!r}; available: {sorted(strategies)}") from exc
