"""Lossy coding-length entropy (Sec. III-A, Eq. before Eq. 14).

``H(M) = (|M| + d)/2 * log det(I + d/(|M| eps^2) Cov(M_hat))`` with
``Cov(A) = A^T A``.  The paper's chain of simplifications reduces
maximizing this to maximizing ``Tr(Cov(M_hat))``; both quantities are
exposed here so the reduction itself can be validated empirically (the
test suite checks monotonicity under supersets and the correlation between
the two objectives).
"""

from __future__ import annotations

import numpy as np


def coding_length_entropy(representations: np.ndarray, eps: float = 0.5) -> float:
    """Exact coding-length entropy of a representation matrix (N, d).

    Uses the determinant identity ``det(I_d + c A^T A) = det(I_N + c A A^T)``
    to always work in the smaller of the two dimensions.
    """
    a = np.asarray(representations, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError("representations must be (N, d)")
    n, d = a.shape
    if n == 0:
        return 0.0
    scale = d / (n * eps * eps)
    if d <= n:
        gram = a.T @ a
        size = d
    else:
        gram = a @ a.T
        size = n
    sign, logdet = np.linalg.slogdet(np.eye(size) + scale * gram)
    if sign <= 0:
        raise np.linalg.LinAlgError("non positive-definite coding matrix")
    return 0.5 * (n + d) * logdet


def covariance_trace(representations: np.ndarray) -> float:
    """``Tr(Cov(M_hat)) = sum of squared singular values`` (Eq. 14–15)."""
    a = np.asarray(representations, dtype=np.float64)
    return float((a * a).sum())
