"""Intra-function taint analysis over the statement-level CFG.

This is the engine the dataflow rules (DET002, TAPE002) are written
against.  A rule supplies a :class:`TaintSpec` — three predicates over
call sites — and gets back :class:`TaintFinding` records plus the
per-statement taint environments:

- ``source_label(call, resolve)`` names the taint a call introduces
  (``"unseeded-rng"``, ``"tensor"``, ...) or returns ``None``;
- ``sink(call, resolve)`` describes why a call must not receive tainted
  values, or returns ``None``;
- ``is_sanitizer(call, resolve)`` marks calls whose *result* is clean
  regardless of argument taint (``len(...)`` of a tainted list is a
  deterministic int).

``resolve`` is the caller-provided name resolver (usually
:meth:`repro.analysis.index.ModuleInfo.resolve`) mapping an expression to
a dotted, import-resolved name, so specs match on ``numpy.random.rand``
whether the module wrote ``np.random.rand`` or ``numpy.random.rand``.

The abstract state maps variable names (plain names and dotted
``self.attr`` paths) to frozensets of taint labels.  Joins are pointwise
unions and the transfer functions over-approximate — a *may*-taint
analysis: augmented assignment keeps the target tainted, comprehensions
propagate iterable taint through their targets, ``try`` bodies may hand
any partial state to their handlers, and nested functions inherit the
enclosing environment at their definition site (closure capture).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.analysis.cfg import CFG, build_cfg

__all__ = ["TaintSpec", "TaintFinding", "FunctionTaint", "analyze_function",
           "expr_labels"]

#: Abstract state: variable/attribute path -> taint labels.
Env = dict[str, frozenset]

_MAX_ITERATIONS = 64


class TaintSpec:
    """Rule-author API: what taints, what consumes, what cleans."""

    #: Attribute names whose *read* is clean even on a tainted receiver
    #: (``x.ndim`` of a tainted tensor is a structural fact, not data).
    stable_attrs: frozenset = frozenset()

    def source_label(self, call: ast.Call, resolve) -> str | None:
        return None

    def sink(self, call: ast.Call, resolve) -> str | None:
        return None

    def is_sanitizer(self, call: ast.Call, resolve) -> bool:
        return False


@dataclass(frozen=True)
class TaintFinding:
    """A tainted value reaching a sink call."""

    line: int
    label: str
    sink: str


@dataclass
class FunctionTaint:
    """Result of analyzing one function: findings + final environments."""

    cfg: CFG
    env_in: dict[int, Env]
    findings: list[TaintFinding] = field(default_factory=list)

    def env_before(self, node_id: int) -> Env:
        return self.env_in.get(node_id, {})


def _path(node: ast.expr) -> str | None:
    """Dotted path for Name/Attribute chains (``self.rng`` -> "self.rng")."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _join(a: Env, b: Env) -> Env:
    out = dict(a)
    for key, labels in b.items():
        prev = out.get(key)
        out[key] = labels if prev is None else prev | labels
    return out


class _Analyzer:
    def __init__(self, spec: TaintSpec, resolve: Callable[[ast.expr], str]):
        self.spec = spec
        self.resolve = resolve
        self.findings: list[TaintFinding] = []
        self.nested: list[tuple[ast.AST, Env]] = []
        self._report = False  # findings only collected on the final pass

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def expr(self, node: ast.expr, env: Env) -> frozenset:
        """Taint labels of ``node`` under ``env`` (may bind walrus targets)."""
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            if node.attr in self.spec.stable_attrs:
                return frozenset()
            labels = env.get(_path(node) or "", frozenset())
            return labels | self.expr(node.value, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.NamedExpr):
            labels = self.expr(node.value, env)
            env[node.target.id] = labels
            return labels
        if isinstance(node, ast.IfExp):
            self.expr(node.test, env)
            return self.expr(node.body, env) | self.expr(node.orelse, env)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            return self._comprehension(node, env)
        if isinstance(node, ast.Lambda):
            return frozenset()  # not descended; nested defs handled separately
        if isinstance(node, ast.Constant):
            return frozenset()
        # Generic containers/operators: union over child expressions.
        labels = frozenset()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                labels |= self.expr(child, env)
        return labels

    def _call(self, node: ast.Call, env: Env) -> frozenset:
        arg_labels = frozenset()
        for arg in node.args:
            arg_labels |= self.expr(arg, env)
        for kw in node.keywords:
            arg_labels |= self.expr(kw.value, env)
        # Sink check: any tainted argument reaching a sink call is a finding.
        sink = self.spec.sink(node, self.resolve)
        if sink is not None and arg_labels and self._report:
            for label in sorted(arg_labels):
                self.findings.append(TaintFinding(node.lineno, label, sink))
        if self.spec.is_sanitizer(node, self.resolve):
            return frozenset()
        labels = arg_labels
        source = self.spec.source_label(node, self.resolve)
        if source is not None:
            labels |= frozenset({source})
        if isinstance(node.func, ast.Attribute):
            # A method call on a tainted object yields a tainted result.
            labels |= self.expr(node.func.value, env)
        return labels

    def _comprehension(self, node: ast.expr, env: Env) -> frozenset:
        local = dict(env)
        for gen in node.generators:
            iter_labels = self.expr(gen.iter, local)
            self._bind(gen.target, iter_labels, local)
            for cond in gen.ifs:
                self.expr(cond, local)
        if isinstance(node, ast.DictComp):
            return self.expr(node.key, local) | self.expr(node.value, local)
        return self.expr(node.elt, local)

    # ------------------------------------------------------------------
    # Statement transfer
    # ------------------------------------------------------------------
    def _bind(self, target: ast.expr, labels: frozenset, env: Env,
              weak: bool = False) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = (env.get(target.id, frozenset()) | labels) \
                if weak else labels
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels, env, weak)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, labels, env, weak)
        elif isinstance(target, ast.Attribute):
            path = _path(target)
            if path is not None:
                env[path] = env.get(path, frozenset()) | labels
        elif isinstance(target, ast.Subscript):
            # ``x[i] = tainted`` taints the container.
            path = _path(target.value)
            if path is not None:
                env[path] = env.get(path, frozenset()) | labels

    def transfer(self, cfg_kind: str, stmt: ast.stmt | None, env: Env) -> Env:
        """Abstract execution of one CFG node; returns the out-state."""
        if stmt is None:
            return env
        env = dict(env)
        if cfg_kind == "test":  # if/while header: evaluate the test only
            self.expr(stmt.test, env)
            return env
        if cfg_kind == "iter":  # for header: bind target from the iterable
            labels = self.expr(stmt.iter, env)
            self._bind(stmt.target, labels, env, weak=True)
            return env
        if cfg_kind == "with":
            for item in stmt.items:
                labels = self.expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels, env)
            return env
        if cfg_kind == "except":
            return env

        if isinstance(stmt, ast.Assign):
            labels = self.expr(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, labels, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.expr(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            labels = self.expr(stmt.value, env)
            self._bind(stmt.target, labels, env, weak=True)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            self.expr(stmt.value, env)
        elif isinstance(stmt, ast.Assert):
            self.expr(stmt.test, env)
            self.expr(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            self.expr(stmt.exc, env)
            self.expr(stmt.cause, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                path = _path(target)
                if path is not None:
                    env.pop(path, None)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self._report:
                self.nested.append((stmt, dict(env)))
        return env


def expr_labels(node: ast.expr, env: Env, spec: TaintSpec,
                resolve: Callable[[ast.expr], str]) -> frozenset:
    """Taint labels of one expression under ``env`` (no findings recorded)."""
    return _Analyzer(spec, resolve).expr(node, dict(env))


def analyze_function(func: ast.FunctionDef | ast.AsyncFunctionDef,
                     spec: TaintSpec,
                     resolve: Callable[[ast.expr], str],
                     initial_env: Env | None = None,
                     _depth: int = 0) -> FunctionTaint:
    """Run the taint analysis to fixpoint over one function.

    ``initial_env`` seeds the entry state (closure taint for nested
    functions, parameter taint if the rule wants it).  Nested ``def``s are
    analyzed recursively with the environment live at their definition
    site; their findings are merged into the returned result.
    """
    cfg = build_cfg(func)
    analyzer = _Analyzer(spec, resolve)
    entry_env: Env = dict(initial_env or {})
    env_in: dict[int, Env] = {0: entry_env}
    env_out: dict[int, Env] = {}
    order = cfg.rpo()

    for _ in range(_MAX_ITERATIONS):
        changed = False
        for node_id in order:
            node = cfg.nodes[node_id]
            state: Env = dict(entry_env) if node_id == 0 else {}
            for pred in cfg.pred[node_id]:
                state = _join(state, env_out.get(pred, {}))
            env_in[node_id] = state
            out = analyzer.transfer(node.kind, node.stmt, state)
            if env_out.get(node_id) != out:
                env_out[node_id] = out
                changed = True
        if not changed:
            break

    # Final reporting pass with the fixpoint environments.
    analyzer._report = True
    result = FunctionTaint(cfg=cfg, env_in=env_in)
    for node_id in order:
        node = cfg.nodes[node_id]
        analyzer.transfer(node.kind, node.stmt, env_in[node_id])
    result.findings.extend(_dedupe(analyzer.findings))

    if _depth < 4:
        for nested_func, env in analyzer.nested:
            nested = analyze_function(nested_func, spec, resolve,
                                      initial_env=env, _depth=_depth + 1)
            result.findings.extend(nested.findings)
    return result


def _dedupe(findings: Iterable[TaintFinding]) -> list[TaintFinding]:
    seen: set[TaintFinding] = set()
    out: list[TaintFinding] = []
    for finding in findings:
        if finding not in seen:
            seen.add(finding)
            out.append(finding)
    return out
