"""Lint output formats (text/json/SARIF) and the baseline ratchet.

Baseline
--------
``lint-baseline.json`` pins the set of *accepted* pre-existing violations
so the suite can gate on "no new violations" without requiring a
historically clean tree.  Entries are line-independent fingerprints —
``(path, code, message)`` with an occurrence count — so moving code
around a file does not churn the baseline, while a genuinely new
violation (or one more occurrence of a known one) fails the ratchet.
Paths are stored relative to the baseline file's directory, so the gate
is invocation-directory independent.  ``--update-baseline`` re-pins;
entries whose violations have been fixed are dropped on update (the
ratchet only tightens).

SARIF
-----
:func:`to_sarif` emits a SARIF 2.1.0 ``sarif-2.1.0.json``-schema document
(one run, one ``repro-lint`` driver, one result per violation) for editor
and code-scanning integrations.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Sequence

from repro.analysis.linter import LintRule, Violation

__all__ = ["Baseline", "to_json", "to_sarif"]

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def _relpath(path: Path, anchor: Path) -> str:
    try:
        return path.resolve().relative_to(anchor.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def to_json(violations: Sequence[Violation], stats: dict | None = None) -> dict:
    """Machine-readable report: violations plus optional run statistics."""
    out = {
        "violations": [
            {"path": str(v.path), "line": v.line, "code": v.code,
             "message": v.message}
            for v in violations
        ],
        "count": len(violations),
    }
    if stats is not None:
        out["stats"] = stats
    return out


def to_sarif(violations: Sequence[Violation],
             rules: Sequence[LintRule]) -> dict:
    """Render violations as a SARIF 2.1.0 document."""
    driver_rules = [
        {
            "id": rule.code,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in sorted(rules, key=lambda r: r.code)
    ]
    rule_index = {r["id"]: i for i, r in enumerate(driver_rules)}
    results = []
    for v in violations:
        result = {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": Path(v.path).as_posix()},
                    "region": {"startLine": v.line},
                },
            }],
        }
        if v.code in rule_index:
            result["ruleIndex"] = rule_index[v.code]
        results.append(result)
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri": "https://example.invalid/repro",
                "rules": driver_rules,
            }},
            "results": results,
        }],
    }


class Baseline:
    """Line-independent accepted-violation set with occurrence counts."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self.entries: dict[str, int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        baseline = cls(path)
        try:
            data = json.loads(baseline.path.read_text(encoding="utf-8"))
            baseline.entries = {str(k): int(v)
                                for k, v in data.get("entries", {}).items()}
        except FileNotFoundError:
            pass  # empty baseline: every violation is new
        return baseline

    def fingerprint(self, violation: Violation) -> str:
        rel = _relpath(Path(violation.path), self.path.parent)
        digest = hashlib.sha256(violation.message.encode("utf-8")).hexdigest()
        return f"{rel}:{violation.code}:{digest[:12]}"

    # ------------------------------------------------------------------
    def partition(self, violations: Sequence[Violation]
                  ) -> tuple[list[Violation], list[str]]:
        """Split into (new violations, fixed baseline fingerprints).

        A violation is *new* when its fingerprint's occurrence count
        exceeds the baselined count; a baseline entry is *fixed* when
        fewer occurrences were found than pinned.
        """
        seen: dict[str, int] = {}
        new: list[Violation] = []
        for violation in violations:
            key = self.fingerprint(violation)
            seen[key] = seen.get(key, 0) + 1
            if seen[key] > self.entries.get(key, 0):
                new.append(violation)
        fixed = [key for key, count in self.entries.items()
                 if seen.get(key, 0) < count]
        return new, fixed

    def update(self, violations: Sequence[Violation]) -> None:
        """Re-pin the baseline to exactly the given violations."""
        entries: dict[str, int] = {}
        for violation in violations:
            key = self.fingerprint(violation)
            entries[key] = entries.get(key, 0) + 1
        self.entries = entries

    def write(self) -> None:
        payload = {
            "_comment": ("Accepted lint violations (repro lint --baseline). "
                         "Keys are path:CODE:message-digest with occurrence "
                         "counts; regenerate with --update-baseline. New "
                         "violations beyond these counts fail the ratchet."),
            "entries": dict(sorted(self.entries.items())),
        }
        self.path.write_text(json.dumps(payload, indent=2) + "\n",
                             encoding="utf-8")
