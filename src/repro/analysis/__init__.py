"""Static analysis and sanitizer tooling for the repro training stack.

Three components keep the from-scratch autograd/NN stack numerically and
deterministically sound (see DESIGN.md, "Analysis & sanitizers"):

- :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — an AST
  linter with repo-specific rules (DET001 seedless RNG, AD001 in-place
  ``Tensor.data`` mutation, AD002 late-binding grad_fn closures, API001
  ``__all__`` hygiene);
- :mod:`repro.analysis.coverage` — a gradcheck-coverage auditor that fails
  when a differentiable primitive has no gradient test;
- :mod:`repro.tensor.anomaly` — the runtime NaN/Inf sanitizer (lives with
  the tensor engine; re-exported by :mod:`repro.tensor`).

Run everything with ``repro lint [paths]`` or ``python -m repro.analysis``;
both exit non-zero on any violation.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from repro.analysis.coverage import (
    CoverageReport,
    audit_gradcheck_coverage,
    differentiable_surface,
    gradchecked_names,
)
from repro.analysis.linter import (
    LintRule,
    ModuleSource,
    Violation,
    format_report,
    iter_python_files,
    lint_file,
    run_lint,
)
from repro.analysis.rules import default_rules, rules_by_code

__all__ = [
    "CoverageReport",
    "LintRule",
    "ModuleSource",
    "Violation",
    "audit_gradcheck_coverage",
    "differentiable_surface",
    "gradchecked_names",
    "format_report",
    "iter_python_files",
    "lint_file",
    "run_lint",
    "default_rules",
    "rules_by_code",
    "build_parser",
    "main",
]


def _find_package_root(paths: Sequence[str]) -> Path | None:
    """Locate the ``repro`` package dir (the one holding tensor/ops.py)."""
    for raw in paths:
        path = Path(raw)
        candidates = [path] if path.is_dir() else [path.parent]
        for candidate in candidates:
            probe = candidate
            for _ in range(4):
                if (probe / "tensor" / "ops.py").is_file():
                    return probe
                if (probe / "repro" / "tensor" / "ops.py").is_file():
                    return probe / "repro"
                if probe.parent == probe:
                    break
                probe = probe.parent
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific linter + gradcheck-coverage auditor")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all of DET001,AD001,AD002,API001)")
    parser.add_argument("--tests", metavar="DIR", default=None,
                        help="gradcheck test directory for the coverage auditor "
                             "(default: tests/tensor when it exists)")
    parser.add_argument("--no-coverage", action="store_true",
                        help="skip the gradcheck-coverage audit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro lint`` / ``python -m repro.analysis``.

    Returns 0 on a clean tree, 1 on any lint violation or coverage gap.
    """
    args = build_parser().parse_args(argv)
    try:
        rules = rules_by_code(args.select.split(",")) if args.select else default_rules()
        violations = run_lint(args.paths, rules)
    except (FileNotFoundError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}")
        return 2

    status = 0
    if violations:
        print(format_report(violations))
        status = 1
    else:
        print(f"lint: clean ({', '.join(sorted(r.code for r in rules))})")

    if not args.no_coverage:
        tests_dir = Path(args.tests) if args.tests else Path("tests") / "tensor"
        src_root = _find_package_root(args.paths)
        if src_root is None or not tests_dir.is_dir():
            missing = "package root" if src_root is None else f"tests dir {tests_dir}"
            print(f"coverage: skipped (could not locate {missing})")
        else:
            report = audit_gradcheck_coverage(src_root, tests_dir)
            print(report.format())
            if not report.ok:
                status = 1
    return status
