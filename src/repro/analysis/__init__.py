"""Static analysis and sanitizer tooling for the repro training stack.

Components (see DESIGN.md, "Analysis architecture"):

- :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — the lint
  runner and rule registry: single-file AST rules (DET001, AD001/2,
  API001, SER001, PERF001, TAPE001, MP001) and whole-program dataflow
  rules (DET002, TAPE002, MP002, SER002);
- :mod:`repro.analysis.index` — the whole-program index (symbol tables,
  import resolution, call graph) the project rules run against;
- :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow` — the
  per-function CFG and the taint framework rules are written in;
- :mod:`repro.analysis.cache` — the content-hash incremental cache
  (``.repro-lint-cache.json``);
- :mod:`repro.analysis.output` — text/json/SARIF renderers and the
  ``lint-baseline.json`` no-new-violations ratchet;
- :mod:`repro.analysis.coverage` — a gradcheck-coverage auditor that fails
  when a differentiable primitive has no gradient test;
- :mod:`repro.tensor.anomaly` — the runtime NaN/Inf sanitizer (lives with
  the tensor engine; re-exported by :mod:`repro.tensor`).

Run everything with ``repro lint [paths]`` or ``python -m repro.analysis``;
both exit non-zero on any non-baselined violation.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

from repro.analysis.cache import DEFAULT_CACHE_NAME, LintCache
from repro.analysis.coverage import (
    CoverageReport,
    audit_gradcheck_coverage,
    differentiable_surface,
    gradchecked_names,
)
from repro.analysis.linter import (
    LintRule,
    LintStats,
    ModuleSource,
    ProjectRule,
    Violation,
    format_report,
    iter_python_files,
    lint_file,
    run_lint,
)
from repro.analysis.output import Baseline, to_json, to_sarif
from repro.analysis.rules import default_rules, rules_by_code

__all__ = [
    "Baseline",
    "CoverageReport",
    "DEFAULT_CACHE_NAME",
    "LintCache",
    "LintRule",
    "LintStats",
    "ModuleSource",
    "ProjectRule",
    "Violation",
    "audit_gradcheck_coverage",
    "differentiable_surface",
    "gradchecked_names",
    "format_report",
    "iter_python_files",
    "lint_file",
    "run_lint",
    "to_json",
    "to_sarif",
    "default_rules",
    "rules_by_code",
    "build_parser",
    "main",
]


def _find_package_root(paths: Sequence[str]) -> Path | None:
    """Locate the ``repro`` package dir (the one holding tensor/ops.py)."""
    for raw in paths:
        path = Path(raw)
        candidates = [path] if path.is_dir() else [path.parent]
        for candidate in candidates:
            probe = candidate
            for _ in range(4):
                if (probe / "tensor" / "ops.py").is_file():
                    return probe
                if (probe / "repro" / "tensor" / "ops.py").is_file():
                    return probe / "repro"
                if probe.parent == probe:
                    break
                probe = probe.parent
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific linter + gradcheck-coverage auditor")
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint (default: src/repro)")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run (default: all)")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=("text", "json", "sarif"),
                        help="report format (default: text)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="accepted-violation baseline; only violations "
                             "beyond it fail the run")
    parser.add_argument("--update-baseline", action="store_true",
                        help="re-pin the baseline to the current violations "
                             "and exit 0 (default file: lint-baseline.json)")
    parser.add_argument("--stats", action="store_true",
                        help="print per-rule counts and cache hit rate")
    parser.add_argument("--cache", metavar="FILE", default=None,
                        help=f"incremental cache file "
                             f"(default: {DEFAULT_CACHE_NAME})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parse cache misses with N processes")
    parser.add_argument("--tests", metavar="DIR", default=None,
                        help="gradcheck test directory for the coverage auditor "
                             "(default: tests/tensor when it exists)")
    parser.add_argument("--no-coverage", action="store_true",
                        help="skip the gradcheck-coverage audit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro lint`` / ``python -m repro.analysis``.

    Returns 0 when clean (or when every violation is baselined), 1 on any
    new violation or coverage gap, 2 on usage errors.
    """
    args = build_parser().parse_args(argv)
    cache = None
    if not args.no_cache:
        cache = LintCache(Path(args.cache) if args.cache else Path(DEFAULT_CACHE_NAME))
    stats = LintStats()
    try:
        rules = rules_by_code(args.select.split(",")) if args.select else default_rules()
        violations = run_lint(args.paths, rules, cache=cache,
                              jobs=args.jobs, stats=stats)
    except (FileNotFoundError, SyntaxError, ValueError) as exc:
        print(f"error: {exc}")
        return 2

    baseline_path = args.baseline or ("lint-baseline.json"
                                      if args.update_baseline else None)
    if args.update_baseline:
        baseline = Baseline.load(baseline_path)
        baseline.update(violations)
        baseline.write()
        print(f"baseline: pinned {len(violations)} violation(s) "
              f"to {baseline.path}")
        return 0

    reported = violations
    fixed: list[str] = []
    if baseline_path is not None:
        baseline = Baseline.load(baseline_path)
        reported, fixed = baseline.partition(violations)

    if args.fmt == "json":
        print(json.dumps(to_json(reported, stats.as_dict() if args.stats
                                 else None), indent=2))
        return 1 if reported else 0
    if args.fmt == "sarif":
        print(json.dumps(to_sarif(reported, rules), indent=2))
        return 1 if reported else 0

    status = 0
    if reported:
        print(format_report(reported))
        status = 1
    else:
        suffix = f" ({len(violations)} baselined)" if baseline_path and violations else ""
        print(f"lint: clean ({', '.join(sorted(r.code for r in rules))}){suffix}")
    for key in fixed:
        print(f"baseline: {key} no longer occurs — run --update-baseline "
              f"to tighten the ratchet")
    if args.stats:
        print(f"stats: {stats.files} files, jobs={stats.jobs}, "
              f"cache {stats.cache_hits} hit / {stats.cache_misses} miss "
              f"({stats.cache_hit_rate:.0%}), "
              f"{stats.elapsed_seconds:.3f}s")
        for code, count in sorted(stats.per_rule.items()):
            print(f"  {code}: {count}")

    if not args.no_coverage:
        tests_dir = Path(args.tests) if args.tests else Path("tests") / "tensor"
        src_root = _find_package_root(args.paths)
        if src_root is None or not tests_dir.is_dir():
            missing = "package root" if src_root is None else f"tests dir {tests_dir}"
            print(f"coverage: skipped (could not locate {missing})")
        else:
            report = audit_gradcheck_coverage(src_root, tests_dir)
            print(report.format())
            if not report.ok:
                status = 1
    return status
