"""Statement-level control-flow graphs for the dataflow framework.

A :class:`CFG` has one node per *simple* statement plus one per compound
header (the ``if``/``while`` test, the ``for`` iterable, the ``with``
items) and synthetic ``ENTRY``/``EXIT`` nodes.  Edges over-approximate
control flow — for a *may*-taint analysis with union merges that is the
safe direction:

- ``if``/``while``/``for`` branch both ways from their header;
- loops carry a back-edge from the body's exits to the header, so the
  fixpoint iteration sees values that become tainted on a later trip;
- ``break``/``continue``/``return``/``raise`` terminate their path
  (``break`` edges to the loop's join, ``continue`` to its header);
- ``try`` is the usual over-approximation: every statement of the body
  may transfer to every handler (an exception can strike anywhere), the
  ``else`` runs after a clean body, and ``finally`` collects all of them;
- nested ``def``/``class``/``lambda`` bodies are *not* linked into the
  graph — the dataflow layer analyzes nested functions separately with
  the enclosing environment at the definition site.

The builder never executes code and never imports the linted module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "build_cfg"]

ENTRY = 0
EXIT = 1


@dataclass
class CFGNode:
    """One control-flow node: a statement (or header) plus its role.

    ``kind`` is ``"stmt"`` for simple statements, ``"test"`` for an
    ``if``/``while`` header, ``"iter"`` for a ``for`` header, ``"with"``
    for a ``with`` header, and ``"entry"``/``"exit"`` for the synthetic
    boundary nodes (whose ``stmt`` is ``None``).
    """

    node_id: int
    stmt: ast.stmt | None
    kind: str


@dataclass
class CFG:
    """A statement-level control-flow graph for one function body."""

    nodes: list[CFGNode] = field(default_factory=list)
    succ: dict[int, set[int]] = field(default_factory=dict)
    pred: dict[int, set[int]] = field(default_factory=dict)

    def add_node(self, stmt: ast.stmt | None, kind: str) -> int:
        node_id = len(self.nodes)
        self.nodes.append(CFGNode(node_id, stmt, kind))
        self.succ[node_id] = set()
        self.pred[node_id] = set()
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    def rpo(self) -> list[int]:
        """Reverse post-order from ENTRY — the efficient worklist order."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(ENTRY, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            for succ in sorted(self.succ[node], reverse=True):
                if succ not in seen:
                    stack.append((succ, False))
        order.reverse()
        return order


class _Builder:
    def __init__(self):
        self.cfg = CFG()
        self.cfg.add_node(None, "entry")  # node 0 == ENTRY
        self.cfg.add_node(None, "exit")   # node 1 == EXIT

    # ------------------------------------------------------------------
    def build(self, body: list[ast.stmt]) -> CFG:
        exits = self._block(body, {ENTRY}, loops=[])
        for node in exits:
            self.cfg.add_edge(node, EXIT)
        return self.cfg

    def _link(self, preds: set[int], node: int) -> None:
        for pred in preds:
            self.cfg.add_edge(pred, node)

    def _block(self, stmts: list[ast.stmt], preds: set[int],
               loops: list[dict]) -> set[int]:
        """Wire ``stmts`` after ``preds``; returns the fall-through exits."""
        for stmt in stmts:
            if not preds:
                break  # unreachable code after return/raise/break
            preds = self._statement(stmt, preds, loops)
        return preds

    def _statement(self, stmt: ast.stmt, preds: set[int],
                   loops: list[dict]) -> set[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            test = cfg.add_node(stmt, "test")
            self._link(preds, test)
            body_exits = self._block(stmt.body, {test}, loops)
            else_exits = self._block(stmt.orelse, {test}, loops) \
                if stmt.orelse else {test}
            return body_exits | else_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            kind = "test" if isinstance(stmt, ast.While) else "iter"
            head = cfg.add_node(stmt, kind)
            self._link(preds, head)
            frame = {"head": head, "breaks": set()}
            loops.append(frame)
            body_exits = self._block(stmt.body, {head}, loops)
            loops.pop()
            for node in body_exits:
                cfg.add_edge(node, head)  # loop back-edge
            after: set[int] = {head} | frame["breaks"]
            if stmt.orelse:
                after = self._block(stmt.orelse, after, loops)
            return after

        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            body_nodes_before = len(cfg.nodes)
            body_exits = self._block(stmt.body, preds, loops)
            body_nodes = set(range(body_nodes_before, len(cfg.nodes)))
            handler_exits: set[int] = set()
            for handler in stmt.handlers:
                head = cfg.add_node(stmt, "except")
                # An exception may strike anywhere in the body — including
                # before its first statement executes.
                self._link(preds | body_nodes, head)
                handler_exits |= self._block(handler.body, {head}, loops)
            else_exits = self._block(stmt.orelse, body_exits, loops) \
                if stmt.orelse else body_exits
            exits = else_exits | handler_exits
            if stmt.finalbody:
                # finally also runs on the exceptional path out of the body
                exits = self._block(stmt.finalbody,
                                    exits | body_nodes | set(preds), loops)
            return exits

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = cfg.add_node(stmt, "with")
            self._link(preds, head)
            return self._block(stmt.body, {head}, loops)

        # Simple statements (including nested def/class, not descended into).
        node = cfg.add_node(stmt, "stmt")
        self._link(preds, node)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.add_edge(node, EXIT)
            return set()
        if isinstance(stmt, ast.Break):
            if loops:
                loops[-1]["breaks"].add(node)
            return set()
        if isinstance(stmt, ast.Continue):
            if loops:
                cfg.add_edge(node, loops[-1]["head"])
            return set()
        return {node}


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function body."""
    return _Builder().build(func.body)
