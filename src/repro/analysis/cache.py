"""Content-hash incremental cache for the linter (``.repro-lint-cache.json``).

Two granularities, matching the two rule families:

- **per-file** entries key the violations of the single-file rules on the
  file's content digest — edit one file and only that file re-lints;
- **one project entry** keys the whole-program rules' violations on the
  *project fingerprint* (the digest of every file's digest).  Any edit
  anywhere invalidates it — a change in one module can add or remove
  violations in another through the call graph, so nothing finer is
  sound.

Both are additionally keyed on a fingerprint of the active rule set
(source text of every rule class), so editing a rule never serves stale
results.  A fully warm run therefore does no parsing at all: it hashes
file bytes, matches both keys, and replays the stored violations — that
is where the cold/warm speedup comes from.

Suppression comments live in the file content, so violations are stored
*after* suppression filtering and the digest covers them.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.linter import Violation

__all__ = ["DEFAULT_CACHE_NAME", "LintCache", "file_digest",
           "project_fingerprint", "rules_fingerprint"]

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"
_CACHE_FORMAT = 1


def file_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def rules_fingerprint(rules: Iterable) -> str:
    """Digest of the active rule set: codes plus each class's source."""
    parts = []
    for rule in sorted(rules, key=lambda r: r.code):
        try:
            body = inspect.getsource(type(rule))
        except (OSError, TypeError):  # dynamically defined rule (tests)
            body = repr(type(rule))
        parts.append(f"{rule.code}\n{body}")
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()


def project_fingerprint(digests: dict[str, str]) -> str:
    """Digest of every file digest — the whole-program cache key."""
    joined = "\n".join(f"{path}:{digest}"
                       for path, digest in sorted(digests.items()))
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def _pack(violations: Sequence[Violation]) -> list[dict]:
    return [{"path": str(v.path), "line": v.line, "code": v.code,
             "message": v.message} for v in violations]


def _unpack(entries: Sequence[dict]) -> list[Violation]:
    return [Violation(path=Path(e["path"]), line=int(e["line"]),
                      code=e["code"], message=e["message"]) for e in entries]


class LintCache:
    """Load/store lint results keyed by content and rule-set digests."""

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self._data = {"format": _CACHE_FORMAT, "files": {}, "project": {}}
        try:
            loaded = json.loads(self.path.read_text(encoding="utf-8"))
            if loaded.get("format") == _CACHE_FORMAT:
                self._data = loaded
        except (OSError, ValueError):
            pass  # missing or corrupt cache: start cold

    # ------------------------------------------------------------------
    def file_violations(self, key: str, digest: str,
                        rules_fp: str) -> list[Violation] | None:
        entry = self._data["files"].get(key)
        if entry and entry["digest"] == digest and entry["rules"] == rules_fp:
            self.hits += 1
            return _unpack(entry["violations"])
        self.misses += 1
        return None

    def store_file(self, key: str, digest: str, rules_fp: str,
                   violations: Sequence[Violation]) -> None:
        self._data["files"][key] = {
            "digest": digest, "rules": rules_fp,
            "violations": _pack(violations)}

    # ------------------------------------------------------------------
    def project_violations(self, fingerprint: str,
                           rules_fp: str) -> list[Violation] | None:
        entry = self._data["project"]
        if entry and entry.get("fingerprint") == fingerprint \
                and entry.get("rules") == rules_fp:
            self.hits += 1
            return _unpack(entry["violations"])
        self.misses += 1
        return None

    def store_project(self, fingerprint: str, rules_fp: str,
                      violations: Sequence[Violation]) -> None:
        self._data["project"] = {
            "fingerprint": fingerprint, "rules": rules_fp,
            "violations": _pack(violations)}

    # ------------------------------------------------------------------
    def save(self) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(self._data), encoding="utf-8")
        tmp.replace(self.path)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
