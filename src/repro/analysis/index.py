"""Whole-program index: symbol tables, import resolution, call graph.

:class:`ProjectIndex` parses every file once (in parallel when asked —
``pool.map`` over a sorted file list keeps the output order deterministic
regardless of worker count) and derives what the whole-program rules
consume:

- a dotted module name per file (``src/repro/nn/conv.py`` ->
  ``repro.nn.conv``; files under a ``tests`` tree -> ``tests.…``);
- per-module import tables, so :meth:`ModuleInfo.resolve` maps any
  ``Name``/``Attribute`` chain to its fully-qualified dotted target
  (``np.random.rand`` -> ``numpy.random.rand``, a bare ``default_rng``
  imported from ``numpy.random`` -> ``numpy.random.default_rng``);
- a function table keyed by fully-qualified name
  (``repro.nn.dropout.Dropout.forward``) holding the AST and the owning
  :class:`~repro.analysis.linter.ModuleSource`;
- a class table with resolved project bases and ``self.attr`` types
  inferred from ``self.attr = ClassName(...)`` assignments in
  ``__init__``;
- a call graph over those functions.  Resolution is best-effort and
  *over*-approximate where it must guess: ``self.m()`` binds through the
  enclosing class and its project bases; ``obj.m()`` binds through
  ``obj``'s inferred type when one is known, otherwise through every
  project class that defines ``m`` (class-hierarchy-analysis style),
  excluding ubiquitous builtin-collection names (``append``, ``get``,
  ``items``, ...) that would connect everything to everything.

Reachability queries (:meth:`ProjectIndex.reachable_from`) power the
TAPE002 capture-path and MP002 worker-path rules.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.linter import ModuleSource

__all__ = ["ClassInfo", "FunctionInfo", "ModuleInfo", "ProjectIndex",
           "parse_sources"]

#: Method names shared with builtin collections/ndarray; an unresolved
#: ``x.append(...)`` must not link to every project class defining one.
_COMMON_METHODS = {
    "append", "extend", "add", "update", "get", "items", "keys", "values",
    "pop", "copy", "clear", "sum", "mean", "max", "min", "join", "split",
    "format", "astype", "reshape", "close", "send", "recv", "put", "read",
    "write", "setdefault", "sort", "index", "count", "item", "any", "all",
}

_PARALLEL_MIN_FILES = 12


def _parse_one(path_str: str) -> ModuleSource:
    return ModuleSource.parse(Path(path_str))


def parse_sources(files: Sequence[Path], jobs: int | None = None
                  ) -> list[ModuleSource]:
    """Parse ``files`` (sorted order preserved), in parallel when asked.

    ``jobs=None`` picks ``min(cpu_count, 4)``; parallelism only engages
    above a small file-count threshold because process startup dwarfs the
    parse time of a handful of files.  ``pool.map`` over the sorted input
    returns results in input order, so the output is deterministic for
    every job count.
    """
    files = [Path(f) for f in files]
    if jobs is None:
        jobs = min(os.cpu_count() or 1, 4)
    if jobs <= 1 or len(files) < _PARALLEL_MIN_FILES:
        return [ModuleSource.parse(f) for f in files]
    import multiprocessing

    ctx = multiprocessing.get_context("fork") \
        if "fork" in multiprocessing.get_all_start_methods() \
        else multiprocessing.get_context("spawn")
    with ctx.Pool(processes=jobs) as pool:
        return pool.map(_parse_one, [str(f) for f in files])


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at ``repro``/``tests``."""
    parts = list(path.parts)
    stem_parts: list[str] = []
    for anchor in ("repro", "tests"):
        if anchor in parts:
            stem_parts = parts[len(parts) - 1 - parts[::-1].index(anchor):]
            break
    if not stem_parts:
        stem_parts = parts[-2:] if len(parts) >= 2 else parts[-1:]
    stem_parts = [p[:-3] if p.endswith(".py") else p for p in stem_parts]
    if stem_parts and stem_parts[-1] == "__init__":
        stem_parts = stem_parts[:-1]
    return ".".join(stem_parts)


@dataclass
class FunctionInfo:
    """One function or method, addressable by fully-qualified name."""

    fq: str                       # "repro.nn.dropout.Dropout.forward"
    name: str                     # "forward"
    qualname: str                 # "Dropout.forward"
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None        # owning class fq, methods only


@dataclass
class ClassInfo:
    """One class: methods, resolved project bases, inferred attr types."""

    fq: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)  # resolved dotted
    methods: dict[str, str] = field(default_factory=dict)  # name -> func fq
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> class fq


@dataclass
class ModuleInfo:
    """One parsed module plus its import table."""

    name: str
    source: ModuleSource
    imports: dict[str, str] = field(default_factory=dict)
    top_level: dict[str, str] = field(default_factory=dict)  # name -> fq

    @property
    def path(self) -> Path:
        return self.source.path

    def resolve(self, node: ast.expr) -> str:
        """Fully-qualified dotted name for a Name/Attribute chain.

        Unresolvable heads (builtins, locals) pass through unchanged, so
        callers can still match on the syntactic dotted form.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ".".join(reversed(parts))
        head = node.id
        resolved = self.imports.get(head) or self.top_level.get(head) or head
        return ".".join([resolved] + list(reversed(parts)))

    def _build_imports(self) -> None:
        package = self.name.rsplit(".", 1)[0] if "." in self.name else self.name
        for node in ast.walk(self.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = \
                        alias.name if alias.asname else alias.name.split(".")[0]
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor_parts = self.name.split(".")
                    anchor = anchor_parts[:len(anchor_parts) - node.level]
                    base = ".".join(anchor + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.imports[alias.asname or alias.name] = \
                        f"{base}.{alias.name}" if base else alias.name


class ProjectIndex:
    """The whole-program view the project rules run against."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[Path, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, set[str]] = {}
        self.method_index: dict[str, set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, sources: Iterable[ModuleSource] | Sequence[Path],
              jobs: int | None = None) -> "ProjectIndex":
        """Index pre-parsed sources, or parse paths (optionally parallel)."""
        materialized = list(sources)
        if materialized and not isinstance(materialized[0], ModuleSource):
            materialized = parse_sources(sorted(Path(p) for p in materialized),
                                         jobs=jobs)
        index = cls()
        for source in materialized:
            module = ModuleInfo(name=module_name_for(source.path), source=source)
            module._build_imports()
            index.modules[module.name] = module
            index.by_path[source.path] = module
        for module in index.modules.values():
            index._collect_symbols(module)
        for module in index.modules.values():
            index._infer_attr_types(module)
        for info in list(index.functions.values()):
            index.calls[info.fq] = index._callees(info)
        return index

    def _collect_symbols(self, module: ModuleInfo) -> None:
        for node in module.source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = f"{module.name}.{node.name}"
                self.functions[fq] = FunctionInfo(
                    fq=fq, name=node.name, qualname=node.name,
                    module=module, node=node)
                module.top_level[node.name] = fq
            elif isinstance(node, ast.ClassDef):
                cls_fq = f"{module.name}.{node.name}"
                info = ClassInfo(fq=cls_fq, name=node.name, module=module,
                                 node=node)
                for base in node.bases:
                    info.base_names.append(module.resolve(base))
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn_fq = f"{cls_fq}.{item.name}"
                        self.functions[fn_fq] = FunctionInfo(
                            fq=fn_fq, name=item.name,
                            qualname=f"{node.name}.{item.name}",
                            module=module, node=item, cls=cls_fq)
                        info.methods[item.name] = fn_fq
                        self.method_index.setdefault(item.name, set()).add(fn_fq)
                self.classes[cls_fq] = info
                module.top_level[node.name] = cls_fq

    def _infer_attr_types(self, module: ModuleInfo) -> None:
        for info in self.classes.values():
            if info.module is not module:
                continue
            init_fq = info.methods.get("__init__")
            if init_fq is None:
                continue
            for node in ast.walk(self.functions[init_fq].node):
                if not isinstance(node, ast.Assign):
                    continue
                # Look through conditional values: the Call arm wins
                # (``self.f = Wrapped(fn) if flag else fn``).
                candidates = [node.value]
                if isinstance(node.value, ast.IfExp):
                    candidates = [node.value.body, node.value.orelse]
                target_cls = None
                for value in candidates:
                    if isinstance(value, ast.Call):
                        resolved = module.resolve(value.func)
                        if resolved in self.classes:
                            target_cls = resolved
                            break
                if target_cls is None:
                    continue
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        info.attr_types[target.attr] = target_cls

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_method(self, cls_fq: str, name: str,
                       _seen: frozenset = frozenset()) -> str | None:
        """Find ``name`` on ``cls_fq`` or its project bases (MRO-ish)."""
        if cls_fq in _seen:
            return None
        info = self.classes.get(cls_fq)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.base_names:
            found = self.resolve_method(base, name, _seen | {cls_fq})
            if found is not None:
                return found
        return None

    def _callable_target(self, fq: str) -> str | None:
        """Map a resolved dotted name to a function fq, if it is one."""
        if fq in self.functions:
            return fq
        if fq in self.classes:
            for entry in ("__init__", "__call__"):
                target = self.resolve_method(fq, entry)
                if target is not None:
                    return target
        return None

    def _callees(self, info: FunctionInfo) -> set[str]:
        module = info.module
        out: set[str] = set()

        # Local variable types from ``v = ClassName(...)`` assignments.
        local_types: dict[str, str] = {}
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                cls_fq = module.resolve(node.value.func)
                if cls_fq in self.classes:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_types[target.id] = cls_fq

        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # super().m(...) -> first project base defining m
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Call)
                    and isinstance(func.value.func, ast.Name)
                    and func.value.func.id == "super" and info.cls):
                for base in self.classes[info.cls].base_names:
                    target = self.resolve_method(base, func.attr)
                    if target is not None:
                        out.add(target)
                        break
                continue
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                recv = func.value.id
                if recv == "self" and info.cls:
                    target = self.resolve_method(info.cls, func.attr)
                    if target is not None:
                        out.add(target)
                        continue
                    # self.attr unknown: fall through to attr-type lookup
                recv_cls = local_types.get(recv)
                if recv_cls is not None:
                    target = self.resolve_method(recv_cls, func.attr)
                    if target is not None:
                        out.add(target)
                        continue
            # self.attr(...) through the inferred attribute type
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id == "self" and info.cls):
                attr_cls = self.classes[info.cls].attr_types.get(func.value.attr)
                if attr_cls is not None:
                    target = self.resolve_method(attr_cls, func.attr)
                    if target is not None:
                        out.add(target)
                        continue
            # Direct call on an inferred-type instance: obj(...) -> __call__
            if isinstance(func, ast.Name) and func.id in local_types:
                target = self.resolve_method(local_types[func.id], "__call__")
                if target is not None:
                    out.add(target)
                    continue
            # self.attr(...) where the attr's type is a project class
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self" and info.cls):
                attr_cls = self.classes[info.cls].attr_types.get(func.attr)
                if attr_cls is not None:
                    target = self.resolve_method(attr_cls, "__call__") \
                        or self.resolve_method(attr_cls, "forward")
                    if target is not None:
                        out.add(target)
                        continue
            resolved = module.resolve(func)
            target = self._callable_target(resolved)
            if target is not None:
                out.add(target)
                continue
            # CHA fallback: an unresolved method call links to every project
            # class defining the method — over-approximate by design.
            if isinstance(func, ast.Attribute) \
                    and not func.attr.startswith("__") \
                    and func.attr not in _COMMON_METHODS:
                out |= self.method_index.get(func.attr, set())
        out.discard(info.fq)
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure over the call graph from ``roots`` (inclusive)."""
        seen: set[str] = set()
        stack = [fq for fq in roots if fq in self.functions]
        while stack:
            fq = stack.pop()
            if fq in seen:
                continue
            seen.add(fq)
            stack.extend(self.calls.get(fq, ()) - seen)
        return seen

    def functions_in_module(self, module: ModuleInfo) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.module is module]
