"""TAPE001 — op dispatch must go through ``apply_ctx``.

``repro.tensor.engine.apply_ctx`` is the single dispatch choke point: it
resolves the op through :func:`get_op` (clear unknown-op errors), applies
the dtype policy, runs the anomaly checks, and — since the tape subsystem —
notifies the active :class:`repro.tensor.tape.Tape` so the call is
recorded for replay.  Code that reaches around it breaks all four at once:

1. **Bare registry subscripts** (``_REGISTRY[name]``) raise an opaque
   ``KeyError`` on typos and invite call sites that never dispatch through
   the engine.
2. **Direct ``.forward(...)`` calls** on a looked-up op class
   (``get_op(name).forward(...)`` / ``_REGISTRY[name].forward(...)``)
   execute the kernel invisibly: no capture hook fires, so a recording
   tape silently omits the op and every later replay of that tape is
   wrong.

Only the engine itself and the tape replayer may touch these internals;
both are exempted by path.  Anything else should call ``engine.apply`` /
``engine.apply_ctx`` (or the ``repro.tensor.ops`` wrappers).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation

# The dispatch internals live here; these files ARE the choke point.
_EXEMPT_FILES = {"engine.py", "tape.py"}


def _is_registry_expr(node: ast.expr) -> bool:
    """``_REGISTRY`` as a bare name or an attribute (``engine._REGISTRY``)."""
    if isinstance(node, ast.Name):
        return node.id == "_REGISTRY"
    if isinstance(node, ast.Attribute):
        return node.attr == "_REGISTRY"
    return False


def _is_lookup_expr(node: ast.expr) -> bool:
    """An op-class lookup: ``get_op(...)`` call or ``_REGISTRY[...]``."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "get_op":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "get_op":
            return True
    if isinstance(node, ast.Subscript) and _is_registry_expr(node.value):
        return True
    return False


class TapeBypassRule(LintRule):
    code = "TAPE001"
    description = ("op dispatch bypassing apply_ctx (bare _REGISTRY access or "
                   "direct Op.forward call) — invisible to tape capture")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        parts = module.package_parts
        if module.path.name in _EXEMPT_FILES and "tensor" in parts[:-1]:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript) and _is_registry_expr(node.value):
                yield self.violation(
                    module, node.lineno,
                    "bare _REGISTRY[...] lookup; use engine.get_op(name) for "
                    "a clear unknown-op error and dispatch through "
                    "engine.apply/apply_ctx so tape capture sees the call")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in {"forward", "backward"} \
                    and _is_lookup_expr(node.func.value):
                yield self.violation(
                    module, node.lineno,
                    f"direct Op.{node.func.attr}(...) on a registry lookup "
                    f"bypasses apply_ctx: no dtype policy, no anomaly checks, "
                    f"and an active tape never records the op (its replays "
                    f"would silently skip it); dispatch through "
                    f"engine.apply/apply_ctx instead")
