"""TAPE002 — tensor-valued control flow on the tape-capture path.

A captured tape replays a *fixed* instruction list.  Any branch whose
condition depends on tensor values — ``if (loss.item()) > t:``,
``while err.any():``, truthiness of an op result — makes the recorded
program a function of the data it was captured on: replaying it on a
different batch silently executes the captured branch, not the branch
the data asks for.  PR 4's runtime defence is :meth:`Tape.mark_unsafe`;
this rule is the static complement, catching branches the runtime only
notices when (if) they fire during a capture.

Mechanics: the call graph seeds at the capture surface — every
``forward`` method, every SSL loss entry point (``css_loss``), and every
function handed to :class:`~repro.tensor.tape.TapedFunction` or run
under :func:`~repro.tensor.tape.capture` — and closes transitively.
Within reachable functions, a "tensor" taint flows from engine dispatch
(``apply``/``apply_ctx``/``repro.tensor.ops.*``), ``Tensor(...)``
construction, and calls into project ``forward``/``__call__`` layers;
``if``/``while`` tests (and ``assert``\\ s) carrying that taint — or
calling ``.item()``/``.any()``/``.all()`` on it — are flagged.

Declaring capture-poisoning
    A function that calls ``mark_unsafe`` *is* the declaration: it tells
    the active capture its program must never be replayed, which is
    exactly the contract (Dropout, the VAE sampler, BYOL's momentum
    update).  Such functions are exempt.  The tape/engine/autograd
    infrastructure itself (``repro.tensor``'s engine, tape, tensor,
    anomaly, gradcheck modules) is exempt by module: it manipulates the
    recording machinery, it does not run under it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import TaintSpec, analyze_function, expr_labels
from repro.analysis.index import FunctionInfo, ProjectIndex
from repro.analysis.linter import ProjectRule, Violation

_EXEMPT_MODULES = {
    "repro.tensor.engine", "repro.tensor.tape", "repro.tensor.tensor",
    "repro.tensor.anomaly", "repro.tensor.gradcheck",
}

_CAPTURE_ROOT_NAMES = {"forward", "css_loss", "batch_loss"}

_TENSOR_PRODUCERS = {
    "repro.tensor.engine.apply", "repro.tensor.engine.apply_ctx",
    "repro.tensor.tensor.Tensor",
}
_TENSOR_PRODUCER_PREFIXES = ("repro.tensor.ops.",)
_TENSOR_PRODUCER_SUFFIXES = ("engine.apply", "engine.apply_ctx", "Tensor")

#: Scalar-extraction / data-dependent-predicate methods on tensor values.
_VALUE_READS = {"item", "any", "all", "nonzero", "argmax", "argmin"}


class _TensorTaintSpec(TaintSpec):
    #: Structural facts about a tensor (rank, shape, dtype) are identical
    #: across batches of a shape-stable step — branching on them is safe.
    stable_attrs = frozenset({"ndim", "shape", "dtype", "size"})

    def __init__(self, index: ProjectIndex):
        self.index = index

    def source_label(self, call: ast.Call, resolve) -> str | None:
        name = resolve(call.func)
        if name in _TENSOR_PRODUCERS:
            return "tensor"
        if name.startswith(_TENSOR_PRODUCER_PREFIXES):
            return "tensor"
        if name == "Tensor" or name.endswith((".apply", ".apply_ctx")):
            return "tensor"
        for suffix in _TENSOR_PRODUCER_SUFFIXES:
            if name.endswith("." + suffix):
                return "tensor"
        # A call into a project layer (forward/__call__ of an indexed
        # class) produces activations: ``self.encoder(x)``.
        target = self.index._callable_target(name)
        if target is not None:
            target_info = self.index.functions.get(target)
            if target_info is not None and target_info.name in ("forward",
                                                                "__call__",
                                                                "css_loss"):
                return "tensor"
        return None

    def is_sanitizer(self, call: ast.Call, resolve) -> bool:
        # Type- and shape-level predicates are stable across batches of a
        # shape-stable step; branching on them cannot poison a tape.
        return resolve(call.func) in {"isinstance", "issubclass", "type",
                                      "len", "hasattr", "callable"}


class ShapeStabilityRule(ProjectRule):
    code = "TAPE002"
    description = ("tensor-valued control flow in a function reachable from "
                   "the tape-capture path (not declared via mark_unsafe)")

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        spec = _TensorTaintSpec(index)
        for fq in sorted(self._reachable(index)):
            info = index.functions[fq]
            if info.module.name in _EXEMPT_MODULES:
                continue
            if self._declares_unsafe(info.node):
                continue
            if self._is_op_kernel(index, info):
                continue
            yield from self._check_function(spec, info)

    # ------------------------------------------------------------------
    def _reachable(self, index: ProjectIndex) -> set[str]:
        roots = {fq for fq, info in index.functions.items()
                 if info.cls is not None and info.name in _CAPTURE_ROOT_NAMES}
        for info in index.functions.values():
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = info.module.resolve(node.func)
                if not (resolved.endswith("TapedFunction")
                        or resolved.endswith(".capture")
                        or resolved == "capture"):
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        target = info.module.resolve(arg)
                        if target in index.functions:
                            roots.add(target)
        return index.reachable_from(roots)

    @staticmethod
    def _declares_unsafe(func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                callee = node.func
                name = callee.attr if isinstance(callee, ast.Attribute) \
                    else getattr(callee, "id", "")
                if name == "mark_unsafe":
                    return True
        return False

    @staticmethod
    def _is_op_kernel(index: ProjectIndex, info: FunctionInfo) -> bool:
        """Op forward/backward kernels run on raw arrays and are re-executed
        at replay, so data-dependent branches inside them are replay-safe."""
        if info.cls is None or info.name not in ("forward", "backward"):
            return False
        cls = index.classes.get(info.cls)
        return cls is not None and any(
            base.endswith(".Op") or base == "Op" for base in cls.base_names)

    # ------------------------------------------------------------------
    def _check_function(self, spec: _TensorTaintSpec,
                        info: FunctionInfo) -> Iterator[Violation]:
        result = analyze_function(info.node, spec, info.module.resolve)
        seen: set[int] = set()
        for cfg_node in result.cfg.nodes:
            if cfg_node.kind not in ("test", "stmt") or cfg_node.stmt is None:
                continue
            stmt = cfg_node.stmt
            if cfg_node.kind == "test":
                test = stmt.test
            elif isinstance(stmt, ast.Assert):
                test = stmt.test
            else:
                continue
            env = result.env_before(cfg_node.node_id)
            reason = self._unstable_reason(spec, info, test, env)
            if reason is not None and test.lineno not in seen:
                seen.add(test.lineno)
                construct = {ast.While: "while", ast.Assert: "assert"}.get(
                    type(stmt), "if")
                yield Violation(
                    path=info.module.path, line=test.lineno, code=self.code,
                    message=(f"{construct} condition in {info.qualname}() "
                             f"depends on {reason}; the branch taken is baked "
                             f"into any captured tape and replays wrong on "
                             f"other data — restructure, or declare the step "
                             f"capture-poisoning via "
                             f"engine.active_capture().mark_unsafe(...)"))

    def _unstable_reason(self, spec, info, test: ast.expr, env) -> str | None:
        labels = expr_labels(test, env, spec, info.module.resolve)
        if "tensor" in labels:
            return "a tensor value (op output)"
        for node in ast.walk(test):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _VALUE_READS):
                receiver = expr_labels(node.func.value, env, spec,
                                       info.module.resolve)
                if "tensor" in receiver:
                    return f"tensor.{node.func.attr}()"
        return None
