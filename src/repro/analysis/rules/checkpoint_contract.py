"""SER002 — checkpoint completeness for state-carrying classes.

A class that offers both ``state_dict`` and ``load_state_dict`` is
promising round-trip serialization: save → restore → identical behaviour.
Every attribute it initialises in ``__init__`` is part of that promise
unless it is (a) covered by the pair, (b) reconstructed from constructor
arguments (the caller re-passes those), or (c) explicitly declared
transient.  An attribute that is none of these — a counter, an
accumulator dict, a schedule position — silently resets on restore and
the resumed run diverges from the uninterrupted one.

Coverage is computed syntactically but transitively: an attribute counts
as covered when its name appears as a ``self.X`` access or an ``"X"``
string constant anywhere in the ``state_dict``/``load_state_dict``
bodies, in any same-class helper method those bodies call (``self.m()``),
or when either body defers to ``super().state_dict()`` /
``super().load_state_dict()`` and a base class covers it.

Attributes assigned *directly from a constructor parameter*
(``self.lr = lr``) are exempt: the caller rebuilds the object with the
same arguments before loading, so the value survives without living in
the state dict.  Attributes whose value is an expression — even one
mentioning a parameter (``self.steps = int(total * warmup)``) — are
*not* exempt; only the unambiguous bare-name pass-through is.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.index import ClassInfo, ProjectIndex
from repro.analysis.linter import ProjectRule, Violation

_PAIR = ("state_dict", "load_state_dict")


def _init_attrs(init: ast.FunctionDef | ast.AsyncFunctionDef,
                self_name: str) -> dict[str, ast.stmt]:
    """``self.X = ...`` assignments in ``__init__``, name → first stmt."""
    out: dict[str, ast.stmt] = {}
    for node in ast.walk(init):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                    and target.attr not in out):
                out[target.attr] = node
    return out


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = {a.arg for a in args.args + args.posonlyargs + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _is_param_passthrough(stmt: ast.stmt, params: set[str]) -> bool:
    value = getattr(stmt, "value", None)
    return isinstance(value, ast.Name) and value.id in params


class _Coverage:
    """Names mentioned by the checkpoint pair, transitively through
    same-class helper calls and ``super()`` deferral."""

    def __init__(self, index: ProjectIndex):
        self.index = index

    def of_class(self, cls: ClassInfo,
                 _seen: frozenset = frozenset()) -> set[str]:
        if cls.fq in _seen:
            return set()
        covered: set[str] = set()
        defers = False
        for method_name in _PAIR:
            func = self._method_node(cls, method_name)
            if func is None:
                continue
            names, sup = self._of_method(cls, func, visited=set())
            covered |= names
            defers = defers or sup
        # Key lists held in class attributes the pair iterates
        # (``_hyper_keys = ("lr",)`` + ``for key in self._hyper_keys``):
        # string constants in a referenced class-level assignment count.
        for node in cls.node.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                names = {t.id for t in targets if isinstance(t, ast.Name)}
                if names & covered and node.value is not None:
                    for const in ast.walk(node.value):
                        if isinstance(const, ast.Constant) \
                                and isinstance(const.value, str):
                            covered.add(const.value)
        if defers:
            for base_name in cls.base_names:
                base = self.index.classes.get(base_name) \
                    or self._by_bare_name(base_name)
                if base is not None:
                    covered |= self.of_class(base, _seen | {cls.fq})
        return covered

    # ------------------------------------------------------------------
    def _of_method(self, cls: ClassInfo, func, visited: set[str]
                   ) -> tuple[set[str], bool]:
        if func.name in visited:
            return set(), False
        visited.add(func.name)
        covered: set[str] = set()
        defers = False
        self_name = func.args.args[0].arg if func.args.args else "self"
        for node in ast.walk(func):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == self_name):
                covered.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                covered.add(node.value)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Name) and recv.id == self_name:
                    helper = self._method_node(cls, node.func.attr)
                    if helper is not None:
                        names, sup = self._of_method(cls, helper, visited)
                        covered |= names
                        defers = defers or sup
                elif (isinstance(recv, ast.Call)
                        and isinstance(recv.func, ast.Name)
                        and recv.func.id == "super"
                        and node.func.attr in _PAIR):
                    defers = True
        return covered, defers

    def _method_node(self, cls: ClassInfo, name: str):
        fq = cls.methods.get(name)
        if fq is None:
            return None
        info = self.index.functions.get(fq)
        return info.node if info is not None else None

    def _by_bare_name(self, base_name: str) -> ClassInfo | None:
        tail = base_name.rsplit(".", 1)[-1]
        for fq in sorted(self.index.classes):
            if fq.rsplit(".", 1)[-1] == tail:
                return self.index.classes[fq]
        return None


class CheckpointContractRule(ProjectRule):
    code = "SER002"
    description = ("attribute initialised in __init__ of a state_dict/"
                   "load_state_dict class but absent from the checkpoint pair")

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        coverage = _Coverage(index)
        for fq in sorted(index.classes):
            cls = index.classes[fq]
            if not all(name in cls.methods for name in _PAIR):
                continue
            init_fq = cls.methods.get("__init__")
            if init_fq is None:
                continue
            init_func = index.functions[init_fq].node
            self_name = init_func.args.args[0].arg \
                if init_func.args.args else "self"
            params = _param_names(init_func)
            covered = coverage.of_class(cls)
            for attr, stmt in sorted(_init_attrs(init_func, self_name).items()):
                if attr.startswith("__"):
                    continue
                if attr in covered:
                    continue
                if _is_param_passthrough(stmt, params):
                    continue
                yield Violation(
                    path=cls.module.path, line=stmt.lineno, code=self.code,
                    message=(f"{cls.name}.{attr} is initialised in __init__ "
                             f"but never saved or restored by the class's "
                             f"state_dict/load_state_dict pair; a resumed run "
                             f"silently resets it — include it in the "
                             f"checkpoint, or suppress with a comment "
                             f"explaining why it is transient"))
