"""SER001 — non-serializable values in ``state_dict`` implementations.

Checkpoints flatten every ``state_dict()`` into ndarrays plus a JSON
manifest (see ``repro.runtime.checkpoint``), so state trees may only hold
ndarrays, plain scalars, strings, ``None``, and lists/dicts thereof.  This
rule statically screens every function *named* ``state_dict`` for value
expressions that can never satisfy that contract:

- ``lambda``, set/frozenset literals and comprehensions, generator
  expressions, and ``bytes`` literals — none of these flatten;
- ``id(...)`` — process-local identity must never leak into a checkpoint
  (it is meaningless after restore);
- references to an RNG generator (``self.rng``, ``rng``, ``self._rng``) —
  generators are captured via ``repro.utils.rng.get_rng_state``, never
  stored raw.

The screen is applied to the places state values are built: dict-literal
values, ``*.update(...)`` arguments, subscript assignments, and return
expressions.  It is a static complement to the exhaustive runtime check
(``repro.runtime.checkpoint.check_serializable``), which the test suite
runs against every live method/optimizer/buffer state dict.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation

#: Names whose bare reference in a state value is a generator leak.
_RNG_NAMES = {"rng", "_rng"}


def _is_rng_reference(node: ast.expr) -> str | None:
    """Return a display name if ``node`` is ``rng`` / ``self.rng`` / ``self._rng``."""
    if isinstance(node, ast.Name) and node.id in _RNG_NAMES:
        return node.id
    if (isinstance(node, ast.Attribute) and node.attr in _RNG_NAMES
            and isinstance(node.value, ast.Name) and node.value.id == "self"):
        return f"self.{node.attr}"
    return None


class StateDictSerializableRule(LintRule):
    code = "SER001"
    description = ("state_dict implementations must return only "
                   "JSON/ndarray-serializable values")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == "state_dict"):
                yield from self._check_function(module, node)

    # ------------------------------------------------------------------
    def _check_function(self, module: ModuleSource,
                        func: ast.FunctionDef) -> Iterator[Violation]:
        # A returned dict is visited both as a Dict literal and as a return
        # expression (and nested dicts re-walk subtrees), so dedupe by site.
        seen = set()
        for violation in self._scan_function(module, func):
            key = (violation.line, violation.message)
            if key not in seen:
                seen.add(key)
                yield violation

    def _scan_function(self, module: ModuleSource,
                       func: ast.FunctionDef) -> Iterator[Violation]:
        for node in ast.walk(func):
            if isinstance(node, ast.Dict):
                for value in node.values:
                    if value is not None:  # None marks a **splat
                        yield from self._check_value(module, value)
            elif isinstance(node, ast.Call) and self._is_update_call(node):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    yield from self._check_value(module, arg)
            elif isinstance(node, ast.Assign):
                if any(isinstance(t, ast.Subscript) for t in node.targets):
                    yield from self._check_value(module, node.value)
            elif isinstance(node, ast.Return) and node.value is not None:
                yield from self._check_value(module, node.value,
                                             containers_only=True)

    @staticmethod
    def _is_update_call(node: ast.Call) -> bool:
        return isinstance(node.func, ast.Attribute) and node.func.attr == "update"

    def _check_value(self, module: ModuleSource, value: ast.expr,
                     containers_only: bool = False) -> Iterator[Violation]:
        """Flag unserializable expressions in one state value.

        ``containers_only`` restricts the scan to container literals (for
        return expressions, where e.g. ``return super().state_dict()`` must
        not recurse into arbitrary calls).
        """
        if containers_only and not isinstance(value, (ast.Dict, ast.List, ast.Tuple)):
            return
        for node in ast.walk(value):
            if isinstance(node, ast.Lambda):
                yield self.violation(module, node.lineno,
                                     "lambda in a state_dict value cannot be serialized")
            elif isinstance(node, (ast.Set, ast.SetComp)):
                yield self.violation(module, node.lineno,
                                     "set in a state_dict value cannot be serialized; "
                                     "use a sorted list")
            elif isinstance(node, ast.GeneratorExp):
                yield self.violation(module, node.lineno,
                                     "generator expression in a state_dict value; "
                                     "materialize a list instead")
            elif isinstance(node, ast.Constant) and isinstance(node.value, bytes):
                yield self.violation(module, node.lineno,
                                     "bytes in a state_dict value cannot be "
                                     "serialized; store an ndarray or str")
            elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "id"):
                yield self.violation(module, node.lineno,
                                     "id(...) in a state_dict value is process-local "
                                     "and meaningless after restore")
            else:
                name = _is_rng_reference(node)
                if name is not None and not self._is_call_argument(value, node):
                    yield self.violation(
                        module, node.lineno,
                        f"{name} in a state_dict value stores a live Generator; "
                        f"capture it with repro.utils.rng.get_rng_state instead")

    @staticmethod
    def _is_call_argument(root: ast.expr, target: ast.expr) -> bool:
        """True if ``target`` appears as an argument of a call inside ``root``.

        ``get_rng_state(self.rng)`` is fine — the call result is stored, not
        the generator; a bare ``self.rng`` value is not.
        """
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    if target in set(ast.walk(arg)):
                        return True
        return False
