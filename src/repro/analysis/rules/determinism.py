"""DET001 — seedless or global-state randomness.

Every stochastic component in the library must take an explicit, seeded
``numpy.random.Generator`` (see ``utils/rng.py``).  Two patterns defeat
that guarantee and are flagged:

- ``np.random.default_rng()`` with no seed argument: the generator is
  seeded from the OS entropy pool, so two runs of the same script
  initialize differently;
- any call to a legacy global-state routine, e.g. ``np.random.rand()``,
  ``np.random.seed()``, ``np.random.shuffle()``: these share one hidden
  global stream, so adding a call anywhere perturbs every later draw.

Calls inside ``utils/rng.py`` itself are exempt — that module is the one
place allowed to mint generators.  Uppercase attributes
(``np.random.Generator``, ``np.random.SeedSequence``) are types, not
draws, and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation


def _dotted_name(node: ast.expr) -> list[str] | None:
    """``np.random.default_rng`` -> ["np", "random", "default_rng"]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class SeedlessRNGRule(LintRule):
    code = "DET001"
    description = ("seedless np.random.default_rng() or legacy global-state "
                   "np.random.* call outside utils/rng.py")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        parts = module.package_parts
        if parts[-1] == "rng.py" and "utils" in parts:
            return
        imported_default_rng = self._imports_default_rng(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            if len(dotted) == 3 and dotted[0] in ("np", "numpy") and dotted[1] == "random":
                name = dotted[2]
                if name == "default_rng":
                    if not node.args and not node.keywords:
                        yield self.violation(
                            module, node.lineno,
                            "np.random.default_rng() without an explicit seed; "
                            "use repro.utils.rng.fallback_rng() or pass a seeded "
                            "Generator")
                elif name[:1].islower():
                    yield self.violation(
                        module, node.lineno,
                        f"np.random.{name}() uses the hidden global RNG stream; "
                        f"draw from an explicit numpy.random.Generator instead")
            elif dotted == ["default_rng"] and imported_default_rng:
                if not node.args and not node.keywords:
                    yield self.violation(
                        module, node.lineno,
                        "default_rng() without an explicit seed; use "
                        "repro.utils.rng.fallback_rng() or pass a seeded Generator")

    @staticmethod
    def _imports_default_rng(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                if any(alias.name == "default_rng" for alias in node.names):
                    return True
        return False
