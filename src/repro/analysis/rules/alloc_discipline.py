"""PERF002 — allocation discipline on the tape-replay path.

The memory planner (PR 8, :mod:`repro.tensor.memplan`) promises that a
warm planned replay performs no fresh numpy allocations: op outputs are
arena slabs bound once by the :class:`MemoryPlan`, op scratch comes from
staged slabs or the process-wide cache, and gradients accumulate into
stable leaf ``.grad`` storage.  A raw ``np.empty``/``np.zeros``/
``np.concatenate``/... call reachable from ``Tape.replay`` silently
re-introduces per-step allocator traffic that the plan can neither see
nor account for — the bench's allocator-call counters drift and the
arena's peak-RSS win erodes one hidden allocation at a time.

The rule walks the call graph from the replay entry points and flags
allocation-constructor calls, with three sanctioned escapes:

1. :mod:`repro.tensor.memplan` itself — the arena API is *where*
   allocation is supposed to happen (``alloc``, the scratch cache, the
   arena backing buffer).
2. The ``out is None`` fallback branch of a function that accepts an
   ``out`` parameter — that branch is by construction only taken on the
   eager / unplanned path, never on a warm planned replay.
3. The backward slice (``backward`` methods, ``_replay_backward``):
   gradient arrays belong to the leaves and the autograd engine, not to
   the forward plan, so the walk does not descend into it.

Anything else needs an explicit justified suppression — the point of the
rule is that new allocations on the replay path are a *decision*, not an
accident.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.index import FunctionInfo, ProjectIndex
from repro.analysis.linter import ProjectRule, Violation

#: Call-graph entry points of a tape replay (forward slice), matched by
#: qualified method name like MP002's ``worker_main`` root.
_REPLAY_ROOTS = {
    "Tape.replay",
    "Tape._replay_fallback",
    "Tape._replay_planned",
}

#: Functions the walk must not descend into: the backward slice owns its
#: own (leaf-stable) storage story.
_BACKWARD_NAMES = {"backward", "_replay_backward"}

#: numpy constructors that always materialize a fresh array.
_ALLOCATORS = {
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "concatenate", "stack", "vstack", "hstack", "dstack",
    "pad", "ascontiguousarray", "copy", "repeat", "tile",
}

#: The arena API module — allocation lives here by design.
_ARENA_MODULE = "repro.tensor.memplan"


def _has_out_param(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = node.args
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    return any(a.arg == "out" for a in every)


def _fallback_spans(node: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> list[tuple[int, int]]:
    """Line spans of ``if out is None: ...`` bodies (and the ``else`` of
    ``if out is not None: ...``) — the sanctioned eager-path branches."""
    spans: list[tuple[int, int]] = []

    def _is_out_none_test(test: ast.expr) -> str | None:
        if (isinstance(test, ast.Compare)
                and isinstance(test.left, ast.Name) and test.left.id == "out"
                and len(test.ops) == 1 and len(test.comparators) == 1
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            if isinstance(test.ops[0], ast.Is):
                return "is"
            if isinstance(test.ops[0], ast.IsNot):
                return "is not"
        return None

    def _span(stmts: list[ast.stmt]) -> tuple[int, int] | None:
        if not stmts:
            return None
        return (stmts[0].lineno,
                max(getattr(s, "end_lineno", s.lineno) for s in stmts))

    for sub in ast.walk(node):
        if not isinstance(sub, ast.If):
            continue
        kind = _is_out_none_test(sub.test)
        if kind == "is":
            span = _span(sub.body)
        elif kind == "is not":
            span = _span(sub.orelse)
        else:
            continue
        if span is not None:
            spans.append(span)
    return spans


class AllocDisciplineRule(ProjectRule):
    code = "PERF002"
    description = ("raw numpy allocation reachable from the tape-replay "
                   "path outside the arena API")

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        reachable = self._forward_slice(index)
        for fq in sorted(reachable):
            info = index.functions[fq]
            if info.module.name == _ARENA_MODULE:
                continue
            yield from self._allocations(info)

    # ------------------------------------------------------------------
    def _forward_slice(self, index: ProjectIndex) -> set[str]:
        """Replay-reachable functions, never descending into backward."""
        seen: set[str] = set()
        stack = [fq for fq, info in index.functions.items()
                 if info.qualname in _REPLAY_ROOTS]
        while stack:
            fq = stack.pop()
            if fq in seen:
                continue
            seen.add(fq)
            for callee in index.calls.get(fq, ()):
                if callee in seen:
                    continue
                info = index.functions.get(callee)
                if info is None or info.name in _BACKWARD_NAMES:
                    continue
                stack.append(callee)
        return seen

    # ------------------------------------------------------------------
    def _allocations(self, info: FunctionInfo) -> Iterator[Violation]:
        module = info.module
        exempt = _fallback_spans(info.node) if _has_out_param(info.node) else []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = self._allocator_name(module, node)
            if name is None:
                continue
            if any(lo <= node.lineno <= hi for lo, hi in exempt):
                continue
            yield Violation(
                path=module.path, line=node.lineno, code=self.code,
                message=(f"np.{name}(...) in replay-reachable "
                         f"{info.qualname}() allocates a fresh array every "
                         f"step, invisible to the memory plan; route the "
                         f"buffer through repro.tensor.memplan (alloc/"
                         f"acquire or a planned out= slab) or move the call "
                         f"into the `out is None` eager branch"))

    @staticmethod
    def _allocator_name(module, call: ast.Call) -> str | None:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _ALLOCATORS:
            return None
        # np.concatenate(..., out=slab) writes into caller storage — the
        # whole point of the discipline — so it is not an allocation.
        if any(kw.arg == "out" for kw in call.keywords):
            return None
        resolved = module.resolve(func)
        if resolved == f"numpy.{func.attr}" \
                or resolved.startswith("numpy.") and resolved.endswith(f".{func.attr}"):
            return func.attr
        return None
