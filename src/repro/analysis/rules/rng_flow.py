"""DET002 — dataflow-precise RNG/entropy taint reaching engine or selection.

DET001 flags the *call sites* of seedless randomness syntactically; this
rule follows the *values*.  A wall-clock read, OS entropy, a legacy
global-stream draw, or an unseeded ``default_rng()`` produces a value
that two runs of the same script disagree on; if that value flows —
through assignments, augmented assignments, walrus bindings,
comprehensions, container stores, ``try``/``finally`` paths, or closure
capture by a nested function — into an engine dispatch, a ``Tensor``
construction, or the memory-selection machinery, the run's training
trajectory (or its selected replay memory) is nondeterministic in a way
no seeded-generator audit of the call site can see.

Sources (taint labels)
    ``time.time``/``time.time_ns``/``perf_counter``/``monotonic``,
    ``os.urandom``, ``uuid.uuid4``, ``secrets.*``; stdlib ``random.*``
    draws; ``numpy.random.*`` legacy global-stream draws;
    ``default_rng()`` with no seed argument.

Sinks
    ``repro.tensor.engine.apply``/``apply_ctx`` (and the ``repro.tensor.
    ops`` wrappers), ``Tensor(...)`` construction, and the selection
    surface (``SelectionContext``, ``make_strategy``-produced
    ``select``).

Sanitizers
    ``len``/``type``/``isinstance`` — structural facts about a tainted
    value are deterministic even when the value is not.

``utils/rng.py`` is exempt (it is the sanctioned generator mint), as is
timing code whose tainted values flow only into logs/results — those
never pass through a sink, so the dataflow rule stays silent where a
grep-shaped rule would cry wolf.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.dataflow import TaintSpec, analyze_function
from repro.analysis.index import ProjectIndex
from repro.analysis.linter import ProjectRule, Violation

_TIME_SOURCES = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "time.perf_counter": "wall-clock time",
    "time.perf_counter_ns": "wall-clock time",
    "time.monotonic": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid4": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_hex": "OS entropy",
    "secrets.randbelow": "OS entropy",
}

_SANITIZERS = {"len", "type", "isinstance", "issubclass"}

_SINKS = {
    "repro.tensor.engine.apply": "engine op dispatch",
    "repro.tensor.engine.apply_ctx": "engine op dispatch",
    "repro.tensor.tensor.Tensor": "Tensor construction",
    "repro.selection.base.SelectionContext": "memory selection",
    "repro.selection.base.make_strategy": "memory selection",
}

_SINK_PREFIXES = {
    "repro.tensor.ops.": "engine op dispatch",
}

#: Unresolved dotted suffixes accepted as sinks so bare scripts/fixtures
#: (no import table into repro) still match.
_SINK_SUFFIXES = {
    "engine.apply": "engine op dispatch",
    "engine.apply_ctx": "engine op dispatch",
    "SelectionContext": "memory selection",
}


class _RNGTaintSpec(TaintSpec):
    def source_label(self, call: ast.Call, resolve) -> str | None:
        name = resolve(call.func)
        if name in _TIME_SOURCES:
            return _TIME_SOURCES[name]
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2 and parts[1][:1].islower():
            return "global random-module stream"
        if len(parts) >= 2 and parts[-2] == "random" \
                and parts[0] in ("numpy", "np") and parts[-1][:1].islower():
            if parts[-1] == "default_rng":
                if not call.args and not call.keywords:
                    return "unseeded default_rng()"
                return None
            return "global numpy RNG stream"
        if parts[-1] == "default_rng" and not call.args and not call.keywords:
            return "unseeded default_rng()"
        return None

    def sink(self, call: ast.Call, resolve) -> str | None:
        name = resolve(call.func)
        if name in _SINKS:
            return _SINKS[name]
        for prefix, description in _SINK_PREFIXES.items():
            if name.startswith(prefix):
                return description
        for suffix, description in _SINK_SUFFIXES.items():
            if name == suffix or name.endswith("." + suffix):
                return description
        return None

    def is_sanitizer(self, call: ast.Call, resolve) -> bool:
        return resolve(call.func) in _SANITIZERS


class RNGTaintRule(ProjectRule):
    code = "DET002"
    description = ("unseeded/global RNG or wall-clock value flows into an "
                   "engine op, Tensor, or memory-selection sink")

    spec_cls = _RNGTaintSpec

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        spec = self.spec_cls()
        for info in index.functions.values():
            parts = info.module.path.parts
            if parts[-1] == "rng.py" and "utils" in parts:
                continue
            result = analyze_function(info.node, spec, info.module.resolve)
            for finding in result.findings:
                yield Violation(
                    path=info.module.path, line=finding.line, code=self.code,
                    message=(f"value derived from {finding.label} reaches "
                             f"{finding.sink} in {info.qualname}(); "
                             f"deterministic runs require every stochastic "
                             f"input to come from an explicitly seeded "
                             f"numpy.random.Generator "
                             f"(repro.utils.rng)"))
