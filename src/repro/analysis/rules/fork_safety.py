"""MP002 — fork-safety: worker-visible module state and pre-fork threads.

The sharded regime (PR 5) forks worker processes that each import the
library and then receive *all* run state explicitly through the broadcast
protocol (``("step", step_id, params, buffers, jobs)``).  Two patterns
silently violate that contract:

1. **Module-level mutable state mutated on the worker path.**  A
   module-global dict/list/set (or a module attribute rebound via
   ``global`` / ``module.NAME = ...``) that a worker-reachable function
   mutates diverges per process: each fork mutates its own copy, the
   parent never sees it, and worker assignment starts to matter — the
   exact nondeterminism the fixed shard plan exists to prevent.  State a
   worker needs must travel through the broadcast step message (or be
   derived from it), not through module globals.

2. **Locks/threads created at import time.**  A ``threading.Lock`` (or
   ``Thread``, ``Condition``, ``queue.Queue``...) created at module level
   exists *before* the fork; the child inherits the parent's lock state —
   a lock held by another thread at fork time stays locked forever in the
   child (CPython's long-standing fork/threading hazard).  Synchronization
   objects must be created after the fork, inside the owning process.

Worker reachability seeds at ``worker_main`` and closes over the call
graph (through ``ShardExecutor`` and the tape machinery it drives).
Per-process state that is *sanctioned* — the engine's capture slot, say —
carries an explicit justified suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.index import ModuleInfo, ProjectIndex
from repro.analysis.linter import ProjectRule, Violation

_WORKER_ROOTS = {"worker_main"}

_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "sort", "reverse",
}

_PREFORK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "threading.Barrier", "threading.Thread", "threading.local",
    "multiprocessing.Lock", "multiprocessing.RLock", "queue.Queue",
    "queue.LifoQueue", "queue.PriorityQueue",
}

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_FACTORIES = {"dict", "list", "set", "defaultdict", "OrderedDict",
                      "Counter", "deque"}


def _module_globals(module: ModuleInfo) -> set[str]:
    """Names bound to mutable containers (or ``None`` slots) at module level."""
    out: set[str] = set()
    for node in module.source.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_LITERALS) or (
            isinstance(value, ast.Call)
            and module.resolve(value.func).split(".")[-1] in _MUTABLE_FACTORIES
        ) or (isinstance(value, ast.Constant) and value.value is None)
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


class ForkSafetyRule(ProjectRule):
    code = "MP002"
    description = ("module-level mutable state mutated on the worker path "
                   "without broadcast, or locks/threads created pre-fork")

    def check_project(self, index: ProjectIndex) -> Iterator[Violation]:
        globals_of: dict[str, set[str]] = {
            name: _module_globals(module)
            for name, module in index.modules.items()
        }
        yield from self._prefork_objects(index)
        reachable = index.reachable_from(
            fq for fq, info in index.functions.items()
            if info.name in _WORKER_ROOTS)
        for fq in sorted(reachable):
            info = index.functions[fq]
            yield from self._mutations(index, info, globals_of)

    # ------------------------------------------------------------------
    def _prefork_objects(self, index: ProjectIndex) -> Iterator[Violation]:
        for module in index.modules.values():
            for node in module.source.tree.body:
                value = getattr(node, "value", None)
                if isinstance(node, (ast.Assign, ast.AnnAssign)) \
                        and isinstance(value, ast.Call):
                    resolved = module.resolve(value.func)
                    if resolved in _PREFORK_FACTORIES:
                        yield Violation(
                            path=module.path, line=node.lineno, code=self.code,
                            message=(f"{resolved}() created at module level "
                                     f"exists before any worker fork; a lock "
                                     f"held (or thread running) at fork time "
                                     f"is inherited broken by the child — "
                                     f"create synchronization objects inside "
                                     f"the owning process, after the fork"))

    # ------------------------------------------------------------------
    def _mutations(self, index: ProjectIndex, info,
                   globals_of: dict[str, set[str]]) -> Iterator[Violation]:
        module = info.module
        own_globals = globals_of.get(module.name, set())
        declared_global: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def is_module_global(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Name) and expr.id in own_globals:
                return f"{module.name}.{expr.id}"
            if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
                base = module.resolve(expr.value)
                if base in index.modules and expr.attr in globals_of.get(base, set()):
                    return f"{base}.{expr.attr}"
            return None

        def report(line: int, target: str, how: str) -> Violation:
            return Violation(
                path=module.path, line=line, code=self.code,
                message=(f"{how} of module-level state {target} in "
                         f"worker-reachable {info.qualname}(): each forked "
                         f"worker mutates its own copy and the parent never "
                         f"sees it, so results depend on worker assignment; "
                         f"route the state through the broadcast step "
                         f"message instead"))

        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATING_METHODS:
                target = is_module_global(node.func.value)
                if target is not None:
                    yield report(node.lineno, target,
                                 f".{node.func.attr}() mutation")
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Subscript):
                        target = is_module_global(tgt.value)
                        if target is not None:
                            yield report(node.lineno, target, "item assignment")
                    elif isinstance(tgt, ast.Name) and tgt.id in declared_global \
                            and tgt.id in own_globals:
                        yield report(node.lineno,
                                     f"{module.name}.{tgt.id}",
                                     "global rebind")
                    elif isinstance(tgt, ast.Attribute):
                        target = is_module_global(tgt)
                        if target is not None:
                            yield report(node.lineno, target,
                                         "module-attribute rebind")
            elif isinstance(node, ast.AugAssign):
                target = is_module_global(node.target)
                if isinstance(node.target, ast.Name) \
                        and node.target.id in declared_global:
                    target = target or f"{module.name}.{node.target.id}"
                if target is not None and (
                        not isinstance(node.target, ast.Name)
                        or node.target.id in declared_global
                        or isinstance(node.target, ast.Attribute)):
                    yield report(node.lineno, target, "augmented update")
