"""MP001 — shard results must be combined by the tree-reduce helpers.

Float addition is not associative, so in the sharded regime the *order* of
gradient summation is part of the numerical contract: the bit-for-bit
worker-count-independence of ``repro.parallel`` holds only because every
shard contribution flows through :func:`repro.parallel.reduce.tree_reduce`
(or its wrappers), whose pairwise schedule is a fixed function of the shard
count.  An ad-hoc ``sum``/``np.sum``/``+=`` over shard gradients — say, a
worker accumulating results in delivery order — would be numerically
*plausible* (same values, last-ulp differences) and therefore survive every
``allclose`` test while silently breaking the parity guarantee.

The rule polices :mod:`repro.parallel` itself: outside ``reduce.py`` (the
one module allowed to sum shard results), it flags

1. reduction calls — builtin ``sum``/``fsum``, any ``.sum(...)`` method or
   ``np.sum``/``np.add`` call;
2. additive updates of gradient-named values — ``+=`` targets or binary
   ``+`` operands whose dotted name mentions ``grad``.

Code in the package with a legitimate non-gradient summation can annotate
the line with ``# repro-lint: disable=MP001``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation

#: The one module allowed to sum shard results — it *is* the helper.
_EXEMPT_FILE = "reduce.py"

_SUM_NAMES = {"sum", "fsum"}


def _dotted(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _is_reduction_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SUM_NAMES:
        return True
    if isinstance(func, ast.Attribute):
        if func.attr in _SUM_NAMES:
            return True
        if func.attr == "add" and _dotted(func.value) in {"np", "numpy"}:
            return True
    return False


def _mentions_grad(node: ast.expr) -> bool:
    return "grad" in _dotted(node).lower()


class ShardReductionRule(LintRule):
    code = "MP001"
    description = ("shard-result summation outside repro.parallel.reduce — "
                   "bypasses the fixed-order tree reduction")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        parts = module.package_parts
        if "parallel" not in parts[:-1] or module.path.name == _EXEMPT_FILE:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and _is_reduction_call(node):
                yield self.violation(
                    module, node.lineno,
                    "reduction call in the parallel package; combine shard "
                    "results with repro.parallel.reduce.tree_reduce / "
                    "reduce_gradients — an ad-hoc sum has no fixed order "
                    "and silently breaks bit-for-bit worker-count parity")
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, ast.Add) \
                    and _mentions_grad(node.target):
                yield self.violation(
                    module, node.lineno,
                    f"additive gradient update "
                    f"`{_dotted(node.target)} += ...`; accumulation order "
                    f"must be fixed — route it through "
                    f"repro.parallel.reduce (tree_reduce/accumulate_into)")
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add) \
                    and (_mentions_grad(node.left) or _mentions_grad(node.right)):
                yield self.violation(
                    module, node.lineno,
                    "gradient addition outside repro.parallel.reduce; the "
                    "fixed-order tree reduction is the only sanctioned way "
                    "to combine shard gradients")
