"""AD001 / AD002 — autograd-correctness rules.

AD001 flags assignments that mutate ``Tensor.data`` in differentiable code
paths (``tensor/``, ``nn/``, ``ssl/``, ``continual/``).  Backward closures
capture parent tensors and read ``.data`` lazily at backward time, so both
rebinds (``x.data = arr``, caught at runtime by the version counter too)
and in-place writes (``x.data[...] = arr``, ``x.data += arr``, invisible
to the counter) silently corrupt gradients.  Deliberate rebinds outside a
live graph — optimizers live outside the scanned packages; EMA updates and
``load_state_dict`` carry suppressions — are the only sanctioned uses.

AD002 flags the late-binding-closure bug: a function or lambda defined
inside a ``for`` loop that reads the loop variable without binding it as a
default argument.  All iterations then share the *final* value of the
variable — for a per-segment ``grad_fn`` (see ``ops.concatenate``) every
parent would receive the last segment's gradient slice.  The fix is the
default-argument idiom the repo already uses: ``def grad_fn(g, i=i): ...``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation

_DIFFERENTIABLE_DIRS = {"tensor", "nn", "ssl", "continual"}


class InplaceMutationRule(LintRule):
    code = "AD001"
    description = "assignment targets Tensor.data inside a differentiable code path"

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        if not _DIFFERENTIABLE_DIRS.intersection(module.package_parts[:-1]):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                hit = self._data_target(target)
                if hit is not None:
                    yield self.violation(
                        module, node.lineno,
                        f"in-place mutation of '{hit}' can corrupt gradients of "
                        f"ops that saved this tensor for backward; build a new "
                        f"Tensor instead (or suppress if the graph is provably "
                        f"dead here)")

    @staticmethod
    def _data_target(target: ast.expr) -> str | None:
        """Return a display string when ``target`` writes through ``.data``."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                hit = InplaceMutationRule._data_target(element)
                if hit is not None:
                    return hit
            return None
        node = target
        suffix = ""
        if isinstance(node, ast.Subscript):
            suffix = "[...]"
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr == "data":
            base = node.value
            owner = base.id if isinstance(base, ast.Name) else "<expr>"
            return f"{owner}.data{suffix}"
        return None


class LateBindingClosureRule(LintRule):
    code = "AD002"
    description = "closure in a for loop captures the loop variable by reference"

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for loop in ast.walk(module.tree):
            if not isinstance(loop, ast.For):
                continue
            loop_vars = set(self._target_names(loop.target))
            if not loop_vars:
                continue
            for child in ast.walk(loop):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    leaked = self._free_loop_vars(child, loop_vars)
                    if leaked:
                        names = ", ".join(f"'{n}'" for n in sorted(leaked))
                        label = getattr(child, "name", "<lambda>")
                        yield self.violation(
                            module, child.lineno,
                            f"closure '{label}' captures loop variable {names} by "
                            f"reference; by backward/call time the loop has "
                            f"finished and every closure sees the final value — "
                            f"bind it as a default argument "
                            f"(e.g. `{next(iter(sorted(leaked)))}="
                            f"{next(iter(sorted(leaked)))}`)")

    @staticmethod
    def _target_names(target: ast.expr) -> Iterator[str]:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                yield node.id

    @staticmethod
    def _free_loop_vars(func: ast.AST, loop_vars: set[str]) -> set[str]:
        """Loop variables the closure reads without shadowing or rebinding."""
        args = func.args
        bound = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        body = func.body if isinstance(func.body, list) else [func.body]
        assigned: set[str] = set()
        read: set[str] = set()
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name):
                    if isinstance(node.ctx, ast.Load):
                        read.add(node.id)
                    else:
                        assigned.add(node.id)
        return (read & loop_vars) - bound - assigned
