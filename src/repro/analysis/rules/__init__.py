"""Rule registry for the repro linter.

Codes
-----
- ``DET001`` — seedless/global RNG (:class:`SeedlessRNGRule`)
- ``AD001``  — in-place ``Tensor.data`` mutation (:class:`InplaceMutationRule`)
- ``AD002``  — late-binding grad_fn closure (:class:`LateBindingClosureRule`)
- ``API001`` — ``__all__`` export hygiene (:class:`ExportHygieneRule`)
- ``SER001`` — non-serializable ``state_dict`` values
  (:class:`StateDictSerializableRule`)
- ``PERF001`` — per-element loops / dtype promotion in hot modules
  (:class:`HotLoopDtypeRule`)
- ``TAPE001`` — op dispatch bypassing ``apply_ctx``'s capture hook
  (:class:`TapeBypassRule`)
- ``MP001`` — shard-result summation bypassing the fixed-order tree
  reduction (:class:`ShardReductionRule`)
- ``RB001`` — checkpoint-path writes bypassing the atomic writer, or IPC
  ``recv`` without a poll deadline (:class:`RobustIORule`)

Whole-program (dataflow/call-graph) rules:

- ``DET002`` — unseeded RNG / wall-clock *value* reaching an engine op,
  Tensor, or memory-selection sink (:class:`RNGTaintRule`)
- ``TAPE002`` — tensor-valued control flow in capture-reachable functions
  not declared via ``mark_unsafe`` (:class:`ShapeStabilityRule`)
- ``MP002`` — module-level mutable state mutated on the worker path, or
  locks/threads created pre-fork (:class:`ForkSafetyRule`)
- ``SER002`` — ``__init__`` attributes of state-carrying classes missing
  from their ``state_dict``/``load_state_dict`` pair
  (:class:`CheckpointContractRule`)
- ``PERF002`` — raw numpy allocation reachable from the tape-replay path
  outside the arena API (:class:`AllocDisciplineRule`)
"""

from __future__ import annotations

from repro.analysis.rules.alloc_discipline import AllocDisciplineRule
from repro.analysis.rules.api import ExportHygieneRule
from repro.analysis.rules.autograd import InplaceMutationRule, LateBindingClosureRule
from repro.analysis.rules.checkpoint_contract import CheckpointContractRule
from repro.analysis.rules.determinism import SeedlessRNGRule
from repro.analysis.rules.fork_safety import ForkSafetyRule
from repro.analysis.rules.multiprocess import ShardReductionRule
from repro.analysis.rules.perf import HotLoopDtypeRule
from repro.analysis.rules.rng_flow import RNGTaintRule
from repro.analysis.rules.robustness import RobustIORule
from repro.analysis.rules.serialization import StateDictSerializableRule
from repro.analysis.rules.tape import TapeBypassRule
from repro.analysis.rules.tape_flow import ShapeStabilityRule

__all__ = [
    "AllocDisciplineRule",
    "CheckpointContractRule",
    "ExportHygieneRule",
    "ForkSafetyRule",
    "HotLoopDtypeRule",
    "InplaceMutationRule",
    "LateBindingClosureRule",
    "RNGTaintRule",
    "RobustIORule",
    "SeedlessRNGRule",
    "ShapeStabilityRule",
    "ShardReductionRule",
    "StateDictSerializableRule",
    "TapeBypassRule",
    "default_rules",
    "rules_by_code",
]

_RULE_CLASSES = (SeedlessRNGRule, InplaceMutationRule, LateBindingClosureRule,
                 ExportHygieneRule, StateDictSerializableRule, HotLoopDtypeRule,
                 TapeBypassRule, ShardReductionRule, RobustIORule,
                 RNGTaintRule, ShapeStabilityRule, ForkSafetyRule,
                 CheckpointContractRule, AllocDisciplineRule)


def default_rules():
    """Fresh instances of every registered rule."""
    return [cls() for cls in _RULE_CLASSES]


def rules_by_code(codes):
    """Instantiate only the rules whose code is in ``codes`` (case-insensitive)."""
    wanted = {c.strip().upper() for c in codes}
    chosen = [cls() for cls in _RULE_CLASSES if cls.code in wanted]
    known = {cls.code for cls in _RULE_CLASSES}
    unknown = wanted - known
    if unknown:
        raise ValueError(f"unknown lint rule code(s): {', '.join(sorted(unknown))}; "
                         f"known: {', '.join(sorted(known))}")
    return chosen
