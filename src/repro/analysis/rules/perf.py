"""PERF001 — hot-path performance rule.

The execution stack (``tensor/``, ``nn/``, ``ssl/``) sits inside the
training loop of every experiment, so two easy-to-miss patterns cost real
wall-clock there:

1. **Per-element Python loops.**  A ``for`` loop over ``range(x.size)``,
   ``range(x.shape[i])`` or ``range(len(x.data))`` executes one Python
   iteration per array element; the vectorized numpy equivalent is
   typically two to three orders of magnitude faster.  Loops over
   structural constants (kernel offsets, layer lists, axes) do not match.

2. **Dtype-promoting constructors.**  ``np.zeros``/``np.ones``/``np.empty``/
   ``np.full``/``np.eye``/``np.arange``/``np.linspace`` default to float64;
   an array built without ``dtype=`` silently upcasts every downstream
   float32 computation (double the memory traffic, and numpy falls off its
   fast paths).  The engine pins op *outputs* to the float32 policy, but a
   float64 constant still forces a converting copy at dispatch.

Deliberate exceptions (the numerical-gradient reference loop in
``gradcheck.py``) carry ``# repro-lint: disable=PERF001`` suppressions.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation

_HOT_DIRS = {"tensor", "nn", "ssl"}

_F64_CONSTRUCTORS = {"zeros", "ones", "empty", "full", "eye", "arange", "linspace"}


class HotLoopDtypeRule(LintRule):
    code = "PERF001"
    description = ("per-element Python loop or dtype-promoting numpy constructor "
                   "in a hot module")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        if not _HOT_DIRS.intersection(module.package_parts[:-1]):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                trigger = self._element_sized_range(node.iter)
                if trigger is not None:
                    yield self.violation(
                        module, node.lineno,
                        f"per-element Python loop over range({trigger}); one "
                        f"interpreter iteration per array element — vectorize "
                        f"with numpy, or suppress if this is a deliberate "
                        f"scalar reference implementation")
            elif isinstance(node, ast.Call):
                name = self._numpy_constructor(node)
                if name is not None and not self._has_dtype(node):
                    yield self.violation(
                        module, node.lineno,
                        f"np.{name}(...) without dtype= defaults to float64 and "
                        f"silently upcasts float32 arithmetic; pass an explicit "
                        f"dtype (the engine's policy dtype is float32)")

    # ------------------------------------------------------------------
    # Per-element loop detection
    # ------------------------------------------------------------------
    @staticmethod
    def _element_sized_range(iter_expr: ast.expr) -> str | None:
        """Return a display string when ``iter_expr`` ranges over data size."""
        if not (isinstance(iter_expr, ast.Call)
                and isinstance(iter_expr.func, ast.Name)
                and iter_expr.func.id == "range"):
            return None
        for arg in iter_expr.args:
            for sub in ast.walk(arg):
                # len(x.data) is almost always element count; len(layers) /
                # len(dims) over a plain name is structural and stays legal.
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                        and sub.func.id == "len" and sub.args \
                        and isinstance(sub.args[0], ast.Attribute):
                    return "len(...)"
                if isinstance(sub, ast.Attribute) and sub.attr == "size":
                    return "<array>.size"
                if isinstance(sub, ast.Subscript) and \
                        isinstance(sub.value, ast.Attribute) and sub.value.attr == "shape":
                    return "<array>.shape[...]"
        return None

    # ------------------------------------------------------------------
    # Dtype-promotion detection
    # ------------------------------------------------------------------
    @staticmethod
    def _numpy_constructor(call: ast.Call) -> str | None:
        """Name of the float64-defaulting numpy constructor, if this is one."""
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _F64_CONSTRUCTORS \
                and isinstance(func.value, ast.Name) and func.value.id in {"np", "numpy"}:
            return func.attr
        return None

    @staticmethod
    def _has_dtype(call: ast.Call) -> bool:
        return any(kw.arg == "dtype" for kw in call.keywords)
