"""API001 — export hygiene.

Modules that declare ``__all__`` promise a public surface; this rule keeps
the promise honest:

- every name listed in ``__all__`` must actually exist at module top level
  (defined, assigned, or imported) — a stale entry breaks
  ``from module import *`` and misleads readers;
- ``__all__`` must not list a name twice;
- in a package ``__init__`` that declares ``__all__``, every public name
  it imports is part of the re-export surface and must appear in
  ``__all__`` (submodule imports like ``from pkg import ops`` re-exporting
  the module object included).

Modules without ``__all__`` are not checked — only declared surfaces are
held to their declaration.  A module that defines a top-level
``__getattr__`` (PEP 562 lazy exports) is exempt from the existence check,
since its exports resolve at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation


class ExportHygieneRule(LintRule):
    code = "API001"
    description = "__all__ out of sync with the module's actual public surface"

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        all_node = self._find_all(module.tree)
        if all_node is None:
            return
        assign, names = all_node
        defined = self._top_level_names(module.tree)
        imported_public = self._imported_public_names(module.tree)
        # PEP 562 lazy modules resolve exports at runtime; existence of the
        # remaining names cannot be decided statically.
        has_module_getattr = any(
            isinstance(node, ast.FunctionDef) and node.name == "__getattr__"
            for node in module.tree.body)

        seen: set[str] = set()
        for name in names:
            if name in seen:
                yield self.violation(
                    module, assign.lineno,
                    f"'{name}' is listed twice in __all__")
            seen.add(name)
            if name not in defined and name != "__version__" and not has_module_getattr:
                yield self.violation(
                    module, assign.lineno,
                    f"'{name}' is in __all__ but is not defined or imported "
                    f"in the module")

        if module.path.name == "__init__.py":
            for lineno, name in imported_public:
                if name not in seen:
                    yield self.violation(
                        module, lineno,
                        f"'{name}' is imported into the package namespace but "
                        f"missing from __all__; add it or alias it with a "
                        f"leading underscore")

    @staticmethod
    def _find_all(tree: ast.Module) -> tuple[ast.Assign, list[str]] | None:
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "__all__":
                        if isinstance(node.value, (ast.List, ast.Tuple)):
                            names = [el.value for el in node.value.elts
                                     if isinstance(el, ast.Constant)
                                     and isinstance(el.value, str)]
                            return node, names
        return None

    @staticmethod
    def _top_level_names(tree: ast.Module) -> set[str]:
        names: set[str] = {"__version__", "__doc__", "__all__"}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                names.add(node.target.id)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name != "*":
                        names.add(alias.asname or alias.name)
            elif isinstance(node, (ast.If, ast.Try)):
                # Names defined under conditional imports / try-except guards.
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        names.add(sub.name)
                    elif isinstance(sub, ast.ImportFrom):
                        for alias in sub.names:
                            if alias.name != "*":
                                names.add(alias.asname or alias.name)
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            if isinstance(target, ast.Name):
                                names.add(target.id)
        return names

    @staticmethod
    def _imported_public_names(tree: ast.Module) -> list[tuple[int, str]]:
        found: list[tuple[int, str]] = []
        for node in tree.body:
            if isinstance(node, ast.ImportFrom):
                if node.level == 0 and not (node.module or "").startswith("repro"):
                    continue  # stdlib/third-party imports are implementation detail
                for alias in node.names:
                    name = alias.asname or alias.name
                    if name != "*" and not name.startswith("_"):
                        found.append((node.lineno, name))
        return found
