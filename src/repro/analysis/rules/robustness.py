"""RB001 — crash-safety hygiene on the checkpoint and IPC paths.

Two robustness invariants this repo's failure model depends on are easy
to erode one convenience call at a time:

1. **Every file write on the checkpoint path is atomic.**  The
   ``repro.runtime`` package owns run-critical persistent state
   (checkpoints, manifests, failure reports); a plain ``open(path, "w")``
   or ``Path.write_bytes`` there can be torn by a crash mid-write —
   exactly the corrupt-hybrid state the crash-consistency sweep exists to
   rule out.  All writes must route through
   :func:`repro.runtime.checkpoint.atomic_write_bytes` (the one function
   allowed to touch the filesystem directly).

2. **Every IPC receive has a deadline.**  In ``repro.parallel``, a bare
   ``Connection.recv()`` blocks forever on a dead or wedged peer; the
   hardened receive path polls with a bounded deadline first
   (``conn.poll(timeout)``), so a vanished worker surfaces as a
   :class:`WorkerFailure` instead of a hung trainer.  The rule flags any
   ``.recv(...)`` whose enclosing function never calls ``.poll(...)``.

Deliberately blocking receives (the worker's request loop, which *wants*
to sleep until its parent speaks) carry a justified
``# repro-lint: disable=RB001``; the append-only JSONL event log, whose
line-at-a-time appends are crash-safe by construction, does the same.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import LintRule, ModuleSource, Violation

#: The one function allowed direct write access on the checkpoint path.
_ATOMIC_WRITER = "atomic_write_bytes"

_WRITE_METHODS = {"write_text", "write_bytes"}

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_write_mode_open(call: ast.Call) -> bool:
    """``open(...)`` with a literal mode that can create/truncate/append."""
    if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
        return False
    mode: ast.expr | None = call.args[1] if len(call.args) >= 2 else None
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return False
    return any(flag in mode.value for flag in "wax+")


class RobustIORule(LintRule):
    code = "RB001"
    description = ("checkpoint-path file write bypassing the atomic writer, "
                   "or IPC recv without a poll deadline")

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        scope = module.package_parts[:-1]
        if "runtime" in scope:
            yield from self._check_writes(module)
        if "parallel" in scope:
            yield from self._check_receives(module)

    # -- 1: non-atomic writes in repro.runtime --------------------------
    def _check_writes(self, module: ModuleSource) -> Iterator[Violation]:
        exempt_spans = [
            (node.lineno, node.end_lineno)
            for node in ast.walk(module.tree)
            if isinstance(node, _FUNC_NODES) and node.name == _ATOMIC_WRITER]

        def exempt(lineno: int) -> bool:
            return any(start <= lineno <= end for start, end in exempt_spans)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or exempt(node.lineno):
                continue
            if _is_write_mode_open(node):
                yield self.violation(
                    module, node.lineno,
                    "write-mode open() on the checkpoint path; a crash "
                    "mid-write leaves a torn file — route the write through "
                    "repro.runtime.checkpoint.atomic_write_bytes "
                    "(tmp + fsync + rename)")
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _WRITE_METHODS:
                yield self.violation(
                    module, node.lineno,
                    f".{node.func.attr}() on the checkpoint path is not "
                    f"atomic; a crash mid-write leaves a torn file — use "
                    f"repro.runtime.checkpoint.atomic_write_bytes")

    # -- 2: deadline-less receives in repro.parallel --------------------
    def _check_receives(self, module: ModuleSource) -> Iterator[Violation]:
        functions = [node for node in ast.walk(module.tree)
                     if isinstance(node, _FUNC_NODES)]
        nested: set[int] = set()
        for func in functions:
            for child in ast.walk(func):
                if child is not func and isinstance(child, _FUNC_NODES):
                    nested.add(id(child))
        reported: set[int] = set()
        for func in functions:
            if id(func) in nested:
                continue
            recvs = []
            has_poll = False
            for node in ast.walk(func):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute):
                    if node.func.attr == "recv":
                        recvs.append(node)
                    elif node.func.attr == "poll":
                        has_poll = True
            if has_poll:
                continue
            for node in recvs:
                if node.lineno in reported:
                    continue
                reported.add(node.lineno)
                yield self.violation(
                    module, node.lineno,
                    "Connection.recv() with no deadline: the enclosing "
                    "function never calls .poll(timeout), so a dead or "
                    "wedged peer hangs this process forever — poll with a "
                    "bounded deadline first (see WorkerPool._receive)")
