"""AST-based lint engine with repo-specific rules.

The linter is deliberately small: a :class:`ModuleSource` wraps one parsed
file, a :class:`LintRule` inspects it and yields :class:`Violation` records,
and :func:`run_lint` walks a set of paths applying every registered rule.

Suppressions
------------
A violation is silenced by a trailing comment on the reported line::

    param.data = new_value  # repro-lint: disable=AD001

Several codes may be listed (``disable=AD001,DET001``) and ``disable=all``
silences every rule for that line.  Suppressions are per-line, so a
multi-line statement must carry the comment on its *first* physical line
(where the violation is reported).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One lint finding, formatted as ``path:line: CODE message``."""

    path: Path
    line: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class ModuleSource:
    """A parsed Python file plus the bookkeeping rules need."""

    path: Path
    text: str
    tree: ast.Module
    _suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        source = cls(path=path, text=text, tree=tree)
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
                source._suppressions[lineno] = codes
        return source

    def is_suppressed(self, line: int, code: str) -> bool:
        codes = self._suppressions.get(line)
        if not codes:
            return False
        return code.upper() in codes or "ALL" in codes

    @property
    def package_parts(self) -> tuple[str, ...]:
        """Path components, used by rules that only apply to some subpackages."""
        return self.path.parts


class LintRule:
    """Base class for lint rules.

    Subclasses set ``code`` / ``description`` and implement :meth:`check`,
    yielding raw violations; suppression filtering happens in the runner.
    """

    code: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def violation(self, module: ModuleSource, line: int, message: str) -> Violation:
        return Violation(path=module.path, line=line, code=self.code, message=message)


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def lint_file(path: Path | str, rules: Iterable[LintRule]) -> list[Violation]:
    """Apply ``rules`` to one file, honoring suppression comments."""
    module = ModuleSource.parse(Path(path))
    found: list[Violation] = []
    for rule in rules:
        for violation in rule.check(module):
            if not module.is_suppressed(violation.line, violation.code):
                found.append(violation)
    return found


def run_lint(paths: Sequence[Path | str],
             rules: Iterable[LintRule] | None = None) -> list[Violation]:
    """Lint every Python file under ``paths`` and return sorted violations."""
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    rules = list(rules)
    found: list[Violation] = []
    for path in iter_python_files(paths):
        found.extend(lint_file(path, rules))
    return sorted(found, key=lambda v: (str(v.path), v.line, v.code))


def format_report(violations: Sequence[Violation]) -> str:
    """Render violations one per line plus a summary count."""
    lines = [v.format() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun}")
    return "\n".join(lines)
