"""AST-based lint engine with repo-specific rules.

Two rule shapes share one runner:

- a :class:`LintRule` inspects a single parsed file (:class:`ModuleSource`)
  and yields :class:`Violation` records;
- a :class:`ProjectRule` inspects the whole-program
  :class:`~repro.analysis.index.ProjectIndex` (symbol tables, call graph,
  dataflow) and yields violations across files.

:func:`run_lint` walks a set of paths (deduplicated — a file named twice,
or both a file and its parent directory, is linted once), applies every
registered rule, and can reuse a content-hash incremental cache
(:class:`repro.analysis.cache.LintCache`): per-file results are keyed on
the file digest, whole-program results on the project fingerprint, so an
unchanged tree re-lints without parsing anything.

Suppressions
------------
A violation is silenced by a trailing comment anywhere on the *statement*
it is reported in::

    param.data = new_value  # repro-lint: disable=AD001

Several codes may be listed (``disable=AD001,DET001``) and ``disable=all``
silences every rule for that statement.  The suppression scope is the full
``lineno``..``end_lineno`` span of the innermost statement containing the
reported line, so a multi-line call can carry the comment on whichever
physical line reads best.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.analysis.cache import LintCache
    from repro.analysis.index import ProjectIndex

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Violation:
    """One lint finding, formatted as ``path:line: CODE message``."""

    path: Path
    line: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class ModuleSource:
    """A parsed Python file plus the bookkeeping rules need."""

    path: Path
    text: str
    tree: ast.Module
    _suppressions: dict[int, set[str]] = field(default_factory=dict)
    _stmt_spans: list[tuple[int, int]] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        source = cls(path=path, text=text, tree=tree)
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                codes = {c.strip().upper() for c in match.group(1).split(",") if c.strip()}
                source._suppressions[lineno] = codes
        if source._suppressions:  # spans only matter when suppressions exist
            for node in ast.walk(tree):
                if isinstance(node, ast.stmt):
                    end = getattr(node, "end_lineno", None) or node.lineno
                    source._stmt_spans.append((node.lineno, end))
        return source

    def is_suppressed(self, line: int, code: str) -> bool:
        """Whether a violation at ``line`` is silenced for ``code``.

        The suppression comment may sit on any physical line of the
        innermost statement spanning ``line`` (multi-line statements carry
        one suppression for their whole span).
        """
        if not self._suppressions:
            return False
        if self._codes_match(line, code):
            return True
        span = None
        for start, end in self._stmt_spans:
            if start <= line <= end:
                if span is None or (end - start) < (span[1] - span[0]):
                    span = (start, end)
        if span is None:
            return False
        return any(self._codes_match(at, code)
                   for at in range(span[0], span[1] + 1))

    def _codes_match(self, line: int, code: str) -> bool:
        codes = self._suppressions.get(line)
        return bool(codes) and (code.upper() in codes or "ALL" in codes)

    @property
    def package_parts(self) -> tuple[str, ...]:
        """Path components, used by rules that only apply to some subpackages."""
        return self.path.parts


class LintRule:
    """Base class for single-file lint rules.

    Subclasses set ``code`` / ``description`` and implement :meth:`check`,
    yielding raw violations; suppression filtering happens in the runner.
    """

    code: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError

    def violation(self, module: ModuleSource, line: int, message: str) -> Violation:
        return Violation(path=module.path, line=line, code=self.code, message=message)


class ProjectRule(LintRule):
    """Base class for whole-program rules (run once over the index).

    Subclasses implement :meth:`check_project`; the per-file :meth:`check`
    is a no-op so a :class:`ProjectRule` can sit in the same registry.
    ``self.violation`` works with any module of the index.
    """

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        return iter(())

    def check_project(self, index: "ProjectIndex") -> Iterator[Violation]:  # pragma: no cover
        raise NotImplementedError


@dataclass
class LintStats:
    """Run statistics: per-rule counts, cache behaviour, parse parallelism."""

    files: int = 0
    per_rule: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    elapsed_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "files": self.files,
            "per_rule": dict(sorted(self.per_rule.items())),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "jobs": self.jobs,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


def iter_python_files(paths: Sequence[Path | str]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories, sorted.

    Overlapping inputs (the same file twice, or a file plus a directory
    containing it) are deduplicated so no file is ever linted — and no
    violation reported — twice.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for found in sorted(p for p in path.rglob("*.py") if p.is_file()):
                resolved = found.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    yield found
        elif path.suffix == ".py" and path.is_file():
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")


def split_rules(rules: Iterable[LintRule]) -> tuple[list[LintRule], list[ProjectRule]]:
    """Partition a rule set into (single-file rules, whole-program rules)."""
    file_rules: list[LintRule] = []
    project_rules: list[ProjectRule] = []
    for rule in rules:
        (project_rules if isinstance(rule, ProjectRule) else file_rules).append(rule)
    return file_rules, project_rules


def lint_file(path: Path | str, rules: Iterable[LintRule]) -> list[Violation]:
    """Apply single-file ``rules`` to one file, honoring suppressions."""
    module = ModuleSource.parse(Path(path))
    return check_module(module, rules)


def check_module(module: ModuleSource, rules: Iterable[LintRule]) -> list[Violation]:
    """Apply already-instantiated rules to an already-parsed module."""
    found: list[Violation] = []
    for rule in rules:
        for violation in rule.check(module):
            if not module.is_suppressed(violation.line, violation.code):
                found.append(violation)
    return found


def _filter_project_violations(violations: Iterable[Violation],
                               index: "ProjectIndex") -> list[Violation]:
    kept = []
    for violation in violations:
        module = index.by_path.get(Path(violation.path))
        if module is not None and module.source.is_suppressed(
                violation.line, violation.code):
            continue
        kept.append(violation)
    return kept


def run_lint(paths: Sequence[Path | str],
             rules: Iterable[LintRule] | None = None,
             *,
             cache: "LintCache | None" = None,
             jobs: int | None = None,
             stats: LintStats | None = None) -> list[Violation]:
    """Lint every Python file under ``paths`` and return sorted violations.

    With ``cache`` set, per-file and whole-program results are reused when
    content digests match (see :mod:`repro.analysis.cache`); ``jobs``
    controls multiprocessing-parallel parsing of cache misses (determinism
    is unaffected — output order is sorted either way).  ``stats`` is
    filled in place when provided.
    """
    from repro.analysis.cache import (file_digest, project_fingerprint,
                                      rules_fingerprint)
    from repro.analysis.index import ProjectIndex, parse_sources

    started = time.perf_counter()
    if rules is None:
        from repro.analysis.rules import default_rules
        rules = default_rules()
    rules = list(rules)
    file_rules, project_rules = split_rules(rules)
    files = list(iter_python_files(paths))

    found: list[Violation] = []
    digests: dict[str, str] = {}
    to_parse: list[Path] = []
    rules_fp = rules_fingerprint(rules) if cache is not None else ""

    if cache is None:
        to_parse = files
    else:
        for path in files:
            digest = file_digest(path.read_bytes())
            digests[str(path)] = digest
            cached = cache.file_violations(str(path), digest, rules_fp)
            if cached is None:
                to_parse.append(path)
            else:
                found.extend(cached)

    need_project = bool(project_rules)
    project_cached: list[Violation] | None = None
    fingerprint = ""
    if cache is not None and need_project:
        fingerprint = project_fingerprint(digests)
        project_cached = cache.project_violations(fingerprint, rules_fp)
        if project_cached is not None:
            found.extend(project_cached)
            need_project = False

    # Parse: everything when project rules must run (they need the whole
    # program), otherwise only the per-file cache misses.
    sources: list[ModuleSource] = []
    if need_project:
        sources = parse_sources(files, jobs=jobs)
    elif to_parse:
        sources = parse_sources(to_parse, jobs=jobs)

    misses = set(map(str, to_parse))
    for source in sources:
        if str(source.path) not in misses:
            continue
        violations = check_module(source, file_rules)
        found.extend(violations)
        if cache is not None:
            cache.store_file(str(source.path), digests[str(source.path)],
                             rules_fp, violations)

    if need_project:
        index = ProjectIndex.build(sources)
        project_found: list[Violation] = []
        for rule in project_rules:
            project_found.extend(
                _filter_project_violations(rule.check_project(index), index))
        found.extend(project_found)
        if cache is not None:
            cache.store_project(fingerprint, rules_fp, project_found)

    if cache is not None:
        cache.save()
    found = sorted(found, key=lambda v: (str(v.path), v.line, v.code))
    if stats is not None:
        import os
        stats.files = len(files)
        stats.jobs = jobs if jobs is not None else min(os.cpu_count() or 1, 4)
        stats.elapsed_seconds = time.perf_counter() - started
        if cache is not None:
            stats.cache_hits = cache.hits
            stats.cache_misses = cache.misses
        per_rule: dict[str, int] = {rule.code: 0 for rule in rules}
        for violation in found:
            per_rule[violation.code] = per_rule.get(violation.code, 0) + 1
        stats.per_rule = per_rule
    return found


def format_report(violations: Sequence[Violation]) -> str:
    """Render violations one per line plus a summary count."""
    lines = [v.format() for v in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun}")
    return "\n".join(lines)
