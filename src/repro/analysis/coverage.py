"""Gradcheck-coverage auditor.

A differentiable primitive with no gradcheck test is a silent-corruption
risk: its backward can be wrong without any test noticing, and replay-based
continual learning results are exactly the kind of delicate measurement a
wrong gradient invalidates.  This auditor makes the coverage contract
mechanical:

1. enumerate the differentiable surface from the source AST —
   every public top-level function in ``repro/tensor/ops.py`` plus every
   ``Tensor`` method whose body tapes an op, either through the registry
   dispatch (``engine.apply`` / ``apply_ctx``) or the legacy
   ``Tensor.from_op`` closure path;
2. scan the test files under ``tests/tensor/`` for test functions that call
   ``check_gradients`` and record which primitives each exercises (by name
   for ops/methods, by operator token for dunders — ``a * b`` covers
   ``__mul__``, ``t[idx]`` covers ``__getitem__``);
3. report every primitive that no gradcheck-calling test touches.

The scan is deliberately scoped to gradcheck-calling test functions
(including their ``@pytest.mark.parametrize`` decorators): a value-only
test that *mentions* an op does not count as gradient coverage.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["CoverageReport", "audit_gradcheck_coverage", "differentiable_surface",
           "gradchecked_names"]

_BINOP_DUNDERS = {
    ast.Add: "__add__",
    ast.Sub: "__sub__",
    ast.Mult: "__mul__",
    ast.Div: "__truediv__",
    ast.Pow: "__pow__",
    ast.MatMult: "__matmul__",
}


@dataclass
class CoverageReport:
    """Outcome of one audit: the surface, what is covered, what is not."""

    surface: dict[str, str] = field(default_factory=dict)  # name -> display label
    covered: set[str] = field(default_factory=set)

    @property
    def uncovered(self) -> list[str]:
        return sorted(name for name in self.surface if name not in self.covered)

    @property
    def ok(self) -> bool:
        return not self.uncovered

    def format(self) -> str:
        total = len(self.surface)
        hit = total - len(self.uncovered)
        lines = [f"gradcheck coverage: {hit}/{total} differentiable primitives"]
        for name in self.uncovered:
            lines.append(f"  UNCOVERED {self.surface[name]}")
        return "\n".join(lines)


def differentiable_surface(src_root: Path | str) -> dict[str, str]:
    """Map primitive name -> display label for the package under ``src_root``.

    ``src_root`` is the ``repro`` package directory (the one containing
    ``tensor/``).
    """
    root = Path(src_root)
    surface: dict[str, str] = {}

    ops_tree = ast.parse((root / "tensor" / "ops.py").read_text(encoding="utf-8"))
    for node in ops_tree.body:
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            surface[node.name] = f"ops.{node.name}"

    tensor_tree = ast.parse((root / "tensor" / "tensor.py").read_text(encoding="utf-8"))
    for node in tensor_tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "Tensor":
            for item in node.body:
                if not isinstance(item, ast.FunctionDef) or item.name == "from_op":
                    continue
                if _tapes_an_op(item):
                    surface[item.name] = f"Tensor.{item.name}"
    return surface


_TAPING_CALLS = {"from_op", "apply", "apply_ctx", "_apply"}


def _tapes_an_op(func: ast.FunctionDef) -> bool:
    """Whether the function body dispatches a taped op.

    Matches both the registry choke point (``engine.apply(...)`` — also seen
    as a bare ``apply``/``_apply`` alias) and the legacy closure path
    (``Tensor.from_op``).
    """
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else None
        if name in _TAPING_CALLS:
            return True
    return False


def _calls_check_gradients(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            name = target.id if isinstance(target, ast.Name) else \
                target.attr if isinstance(target, ast.Attribute) else None
            if name == "check_gradients":
                return True
    return False


def _names_exercised(func: ast.AST) -> set[str]:
    """Every primitive-name token a gradcheck test function touches."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.BinOp):
            dunder = _BINOP_DUNDERS.get(type(node.op))
            if dunder:
                names.add(dunder)
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            names.add("__neg__")
        elif isinstance(node, ast.Subscript):
            names.add("__getitem__")
    return names


def gradchecked_names(tests_dir: Path | str) -> set[str]:
    """Union of primitives exercised by gradcheck-calling test functions."""
    covered: set[str] = set()
    for path in sorted(Path(tests_dir).rglob("test_*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef) and _calls_check_gradients(node):
                covered |= _names_exercised(node)
    return covered


def audit_gradcheck_coverage(src_root: Path | str,
                             tests_dir: Path | str) -> CoverageReport:
    """Cross-reference the differentiable surface against gradcheck tests."""
    surface = differentiable_surface(src_root)
    covered = gradchecked_names(tests_dir)
    return CoverageReport(surface=surface, covered={n for n in surface if n in covered})
