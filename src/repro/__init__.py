"""repro — reproduction of EDSR: Effective Data Selection and Replay for
Unsupervised Continual Learning (Liu et al., ICDE 2024).

Quickstart
----------
>>> from repro import load_image_benchmark, ContinualConfig, run_method
>>> sequence = load_image_benchmark("cifar10-like", scale="ci")
>>> result = run_method("edsr", sequence, ContinualConfig(epochs=3), seed=0)
>>> result.acc(), result.fgt()  # doctest: +SKIP

Package layout (see DESIGN.md for the full inventory):

- :mod:`repro.tensor` / :mod:`repro.nn` / :mod:`repro.optim` — the
  from-scratch deep-learning substrate (autograd, layers, optimizers);
- :mod:`repro.data` / :mod:`repro.augment` — synthetic benchmarks mirroring
  Table II plus the paper's augmentation pipelines;
- :mod:`repro.ssl` — SimSiam / BarlowTwins objectives and distillation;
- :mod:`repro.selection` / :mod:`repro.memory` / :mod:`repro.replay` —
  EDSR's two contributions and all ablation variants;
- :mod:`repro.continual` — EDSR, every Table III baseline, and the trainer;
- :mod:`repro.eval` — KNN probing and the Acc/Fgt metrics.
"""

from repro.continual import (
    CaSSLe,
    ContinualConfig,
    ContinualTrainer,
    DER,
    EDSR,
    Finetune,
    LUMP,
    MultitaskResult,
    SynapticIntelligence,
    build_objective,
    make_method,
    run_method,
    run_multitask,
)
from repro.data import (
    ArrayDataset,
    DataLoader,
    TaskSequence,
    class_incremental_split,
    load_image_benchmark,
    load_tabular_benchmark,
)
from repro.eval import (ContinualResult, KNNClassifier, LinearProbe,
                        RidgeProbe, RidgeStatistics, evaluate_tasks)
from repro.ssl import BarlowTwins, DistillationHead, Encoder, SimSiam

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # continual
    "ContinualConfig",
    "ContinualTrainer",
    "run_method",
    "run_multitask",
    "make_method",
    "build_objective",
    "EDSR",
    "CaSSLe",
    "LUMP",
    "DER",
    "SynapticIntelligence",
    "Finetune",
    "MultitaskResult",
    # data
    "ArrayDataset",
    "DataLoader",
    "TaskSequence",
    "class_incremental_split",
    "load_image_benchmark",
    "load_tabular_benchmark",
    # eval
    "ContinualResult",
    "KNNClassifier",
    "LinearProbe",
    "RidgeProbe",
    "RidgeStatistics",
    "evaluate_tasks",
    # ssl
    "Encoder",
    "SimSiam",
    "BarlowTwins",
    "DistillationHead",
]
