"""Atomic, integrity-checked run-state checkpoints.

A checkpoint is a pair of files in the checkpoint directory::

    ckpt-00007.npz    every ndarray leaf of the state tree, flattened
    ckpt-00007.json   the manifest: schema version, the non-array tree with
                      array references, and a SHA-256 checksum per array

Both files are written via write-to-temp + ``fsync`` + ``os.replace``; the
manifest is written *last*, so its presence is the commit point — a crash
mid-write leaves at worst a stale temp file, never a manifest pointing at
missing or truncated data.  On load, :meth:`CheckpointManager.load_latest`
verifies the manifest parses, the schema version matches, every referenced
array exists, and every checksum agrees; a checkpoint failing any check is
skipped (recorded in ``LoadedCheckpoint.skipped``) and the next most recent
one is tried, so a corrupt or partial newest checkpoint falls back to the
last good one instead of crashing the run.

The state trees being checkpointed are the nested dicts produced by the
``state_dict()`` family (methods, optimizers, buffers, results): leaves must
be ndarrays (non-object dtype), plain Python scalars, strings, ``None``, or
lists/tuples/dicts thereof.  :func:`check_serializable` is the runtime
enforcement of that contract (lint rule SER001 is the static sibling).

Execution topology is deliberately **not** part of the state: a manifest may
carry an informational ``meta`` mapping (worker count, shard count — see
``ContinualConfig.workers``), but restoring a checkpoint never reads it.
The sharded regime's results are worker-count independent by construction,
so a run checkpointed under ``--workers 3`` resumes bit-for-bit under
``--workers 1`` and vice versa.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import zipfile
from dataclasses import dataclass, field

import numpy as np

SCHEMA_VERSION = 1

#: Marker key used in the manifest tree to reference an array in the npz.
_ARRAY_REF = "__ndarray__"

_MANIFEST_RE = re.compile(r"^ckpt-(\d+)\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, or no usable checkpoint was found."""


# ----------------------------------------------------------------------
# State-tree flattening
# ----------------------------------------------------------------------
def flatten_state(state: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a nested state tree into a JSON-safe tree plus an array table.

    Returns ``(tree, arrays)`` where every ndarray leaf in ``state`` is
    replaced in ``tree`` by ``{"__ndarray__": key}`` and stored in
    ``arrays[key]``.  Raises ``TypeError`` naming the offending path for any
    leaf that is not serializable.
    """
    arrays: dict[str, np.ndarray] = {}
    tree = _flatten(state, "state", arrays)
    return tree, arrays


def _flatten(node, path: str, arrays: dict[str, np.ndarray]):
    if isinstance(node, np.ndarray):
        if node.dtype == object:
            raise TypeError(f"{path}: object-dtype arrays are not serializable")
        arrays[path] = node
        return {_ARRAY_REF: path}
    if isinstance(node, dict):
        flat = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise TypeError(f"{path}: dict key {key!r} is not a string")
            if key == _ARRAY_REF:
                raise TypeError(f"{path}: key {_ARRAY_REF!r} is reserved")
            flat[key] = _flatten(value, f"{path}/{key}", arrays)
        return flat
    if isinstance(node, (list, tuple)):
        return [_flatten(value, f"{path}/{i}", arrays)
                for i, value in enumerate(node)]
    if isinstance(node, (np.integer, np.floating, np.bool_)):
        return node.item()
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise TypeError(f"{path}: value of type {type(node).__name__} is not "
                    f"JSON/ndarray-serializable")


def unflatten_state(tree, arrays: dict[str, np.ndarray]):
    """Inverse of :func:`flatten_state` (tuples come back as lists)."""
    if isinstance(tree, dict):
        if set(tree) == {_ARRAY_REF}:
            return arrays[tree[_ARRAY_REF]]
        return {key: unflatten_state(value, arrays) for key, value in tree.items()}
    if isinstance(tree, list):
        return [unflatten_state(value, arrays) for value in tree]
    return tree


def check_serializable(state: dict) -> None:
    """Raise ``TypeError`` (naming the path) if ``state`` cannot checkpoint."""
    flatten_state(state)


# ----------------------------------------------------------------------
# Atomic file primitives
# ----------------------------------------------------------------------
def _fsync_directory(directory: pathlib.Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: pathlib.Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see either nothing or all of it."""
    path = pathlib.Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


def _array_checksum(array: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Checkpoint manager
# ----------------------------------------------------------------------
@dataclass
class LoadedCheckpoint:
    """A successfully validated checkpoint plus any corrupt ones skipped."""

    task_index: int
    state: dict
    path: pathlib.Path
    skipped: list[str] = field(default_factory=list)
    #: Informational run metadata (e.g. worker count); never used to
    #: restore state — resume is execution-topology independent.
    meta: dict = field(default_factory=dict)


class CheckpointManager:
    """Writes and validates per-task checkpoints in one run directory.

    Parameters
    ----------
    directory:
        Run directory; created if missing.
    keep:
        Retain only the newest ``keep`` checkpoints after each save
        (``None`` keeps everything).
    """

    def __init__(self, directory: str | pathlib.Path, keep: int | None = None):
        if keep is not None and keep < 1:
            raise ValueError("keep must be >= 1 (or None to keep all)")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    # -- paths ----------------------------------------------------------
    def manifest_paths(self) -> list[pathlib.Path]:
        """All manifest files, oldest first (by task index)."""
        found = []
        for path in self.directory.iterdir():
            match = _MANIFEST_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _index, path in sorted(found)]

    def _names(self, task_index: int) -> tuple[str, str]:
        stem = f"ckpt-{task_index:05d}"
        return f"{stem}.npz", f"{stem}.json"

    # -- write ----------------------------------------------------------
    def save(self, task_index: int, state: dict,
             meta: dict | None = None) -> pathlib.Path:
        """Atomically write ``state`` as the checkpoint for ``task_index``.

        ``meta`` is an optional JSON-safe mapping recorded in the manifest
        for humans and tooling (e.g. ``{"workers": 3}``); loading ignores
        it when restoring state, so runs stay resumable under a different
        execution topology.
        """
        tree, arrays = flatten_state(state)
        arrays_name, manifest_name = self._names(task_index)
        arrays_path = self.directory / arrays_name

        tmp = arrays_path.with_name(f"{arrays_path.name}.tmp-{os.getpid()}")
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, arrays_path)

        manifest = {
            "schema_version": SCHEMA_VERSION,
            "task_index": task_index,
            "arrays_file": arrays_name,
            "checksums": {key: _array_checksum(a) for key, a in arrays.items()},
            "tree": tree,
        }
        if meta:
            meta_arrays: dict[str, np.ndarray] = {}
            manifest["meta"] = _flatten(meta, "meta", meta_arrays)
            if meta_arrays:
                raise TypeError("checkpoint meta must be JSON-only "
                                "(ndarrays belong in the state tree)")
        manifest_path = self.directory / manifest_name
        atomic_write_bytes(manifest_path,
                           json.dumps(manifest, indent=1).encode("utf-8"))
        self._prune()
        return manifest_path

    def _prune(self) -> None:
        if self.keep is None:
            return
        manifests = self.manifest_paths()
        for stale in manifests[:-self.keep]:
            stale_arrays = stale.with_suffix(".npz")
            stale.unlink(missing_ok=True)
            stale_arrays.unlink(missing_ok=True)

    # -- read -----------------------------------------------------------
    def _load_manifest(self, manifest_path: pathlib.Path) -> tuple[int, dict, dict]:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable manifest: {exc}") from exc
        if manifest.get("schema_version") != SCHEMA_VERSION:
            raise CheckpointError(
                f"schema version {manifest.get('schema_version')!r} != {SCHEMA_VERSION}")
        arrays_path = self.directory / manifest["arrays_file"]
        try:
            with np.load(arrays_path) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise CheckpointError(f"unreadable array file {arrays_path.name}: {exc}") from exc
        checksums = manifest["checksums"]
        if set(checksums) != set(arrays):
            raise CheckpointError(
                f"array set mismatch in {arrays_path.name}: manifest lists "
                f"{len(checksums)} arrays, file holds {len(arrays)}")
        for key, expected in checksums.items():
            actual = _array_checksum(arrays[key])
            if actual != expected:
                raise CheckpointError(
                    f"checksum mismatch for array {key!r} in {arrays_path.name}")
        state = unflatten_state(manifest["tree"], arrays)
        return int(manifest["task_index"]), state, manifest.get("meta") or {}

    def load_latest(self) -> LoadedCheckpoint | None:
        """Newest checkpoint that passes validation, or ``None`` if none do.

        Corrupt/partial checkpoints are skipped (newest-first) and recorded
        in the returned ``skipped`` list so callers can log the fallback.
        """
        skipped: list[str] = []
        for manifest_path in reversed(self.manifest_paths()):
            try:
                task_index, state, meta = self._load_manifest(manifest_path)
            except CheckpointError as exc:
                skipped.append(f"{manifest_path.name}: {exc}")
                continue
            return LoadedCheckpoint(task_index=task_index, state=state,
                                    path=manifest_path, skipped=skipped,
                                    meta=meta)
        return None
