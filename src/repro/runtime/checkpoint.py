"""Atomic, integrity-checked run-state checkpoints.

A checkpoint is a pair of files in the checkpoint directory::

    ckpt-00007.npz    every ndarray leaf of the state tree, flattened
    ckpt-00007.json   the manifest: schema version, the non-array tree with
                      array references, and a SHA-256 checksum per array

Both files are written via write-to-temp + ``fsync`` + ``os.replace``; the
manifest is written *last*, so its presence is the commit point — a crash
mid-write leaves at worst a stale temp file, never a manifest pointing at
missing or truncated data.  On load, :meth:`CheckpointManager.load_latest`
verifies the manifest parses, the schema version matches, every referenced
array exists, and every checksum agrees; a checkpoint failing any check is
skipped (recorded in ``LoadedCheckpoint.skipped``) and the next most recent
one is tried, so a corrupt or partial newest checkpoint falls back to the
last good one instead of crashing the run.

The state trees being checkpointed are the nested dicts produced by the
``state_dict()`` family (methods, optimizers, buffers, results): leaves must
be ndarrays (non-object dtype), plain Python scalars, strings, ``None``, or
lists/tuples/dicts thereof.  :func:`check_serializable` is the runtime
enforcement of that contract (lint rule SER001 is the static sibling).

Execution topology is deliberately **not** part of the state: a manifest may
carry an informational ``meta`` mapping (worker count, shard count — see
``ContinualConfig.workers``), but restoring a checkpoint never reads it.
The sharded regime's results are worker-count independent by construction,
so a run checkpointed under ``--workers 3`` resumes bit-for-bit under
``--workers 1`` and vice versa.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import re
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro.faults import plane as _faults

SCHEMA_VERSION = 1

#: Every fault-injection site on the checkpoint write path, in program
#: order.  The crash-consistency sweep (:mod:`repro.faults.crashsweep`)
#: kills a saving subprocess at each of these in turn and asserts
#: ``load_latest`` still yields the previous or the new checkpoint —
#: adding an I/O boundary to ``save`` means adding its site here (the
#: sweep's probe pass fails if the two drift apart).
_WRITE_STAGES = ("begin", "tmp_written", "tmp_fsynced", "replaced", "committed")
CHECKPOINT_SITES = tuple(f"{prefix}.{stage}"
                         for prefix in ("ckpt.arrays", "ckpt.manifest")
                         for stage in _WRITE_STAGES)

#: Marker key used in the manifest tree to reference an array in the npz.
_ARRAY_REF = "__ndarray__"

_MANIFEST_RE = re.compile(r"^ckpt-(\d+)\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, or no usable checkpoint was found."""


# ----------------------------------------------------------------------
# State-tree flattening
# ----------------------------------------------------------------------
def flatten_state(state: dict) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a nested state tree into a JSON-safe tree plus an array table.

    Returns ``(tree, arrays)`` where every ndarray leaf in ``state`` is
    replaced in ``tree`` by ``{"__ndarray__": key}`` and stored in
    ``arrays[key]``.  Raises ``TypeError`` naming the offending path for any
    leaf that is not serializable.
    """
    arrays: dict[str, np.ndarray] = {}
    tree = _flatten(state, "state", arrays)
    return tree, arrays


def _flatten(node, path: str, arrays: dict[str, np.ndarray]):
    if isinstance(node, np.ndarray):
        if node.dtype == object:
            raise TypeError(f"{path}: object-dtype arrays are not serializable")
        arrays[path] = node
        return {_ARRAY_REF: path}
    if isinstance(node, dict):
        flat = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise TypeError(f"{path}: dict key {key!r} is not a string")
            if key == _ARRAY_REF:
                raise TypeError(f"{path}: key {_ARRAY_REF!r} is reserved")
            flat[key] = _flatten(value, f"{path}/{key}", arrays)
        return flat
    if isinstance(node, (list, tuple)):
        return [_flatten(value, f"{path}/{i}", arrays)
                for i, value in enumerate(node)]
    if isinstance(node, (np.integer, np.floating, np.bool_)):
        return node.item()
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise TypeError(f"{path}: value of type {type(node).__name__} is not "
                    f"JSON/ndarray-serializable")


def unflatten_state(tree, arrays: dict[str, np.ndarray]):
    """Inverse of :func:`flatten_state` (tuples come back as lists)."""
    if isinstance(tree, dict):
        if set(tree) == {_ARRAY_REF}:
            return arrays[tree[_ARRAY_REF]]
        return {key: unflatten_state(value, arrays) for key, value in tree.items()}
    if isinstance(tree, list):
        return [unflatten_state(value, arrays) for value in tree]
    return tree


def check_serializable(state: dict) -> None:
    """Raise ``TypeError`` (naming the path) if ``state`` cannot checkpoint."""
    flatten_state(state)


# ----------------------------------------------------------------------
# Atomic file primitives
# ----------------------------------------------------------------------
def _fsync_directory(directory: pathlib.Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: pathlib.Path, data: bytes,
                       site: str = "io.atomic_write") -> None:
    """Write ``data`` to ``path`` so readers see either nothing or all of it.

    ``site`` names this write's fault-injection points (five per write:
    ``begin``/``tmp_written``/``tmp_fsynced``/``replaced``/``committed``)
    — no-ops unless a :class:`repro.faults.FaultPlan` is armed.  An armed
    ``torn_write`` event short-circuits the atomic dance entirely: it
    writes *truncated* bytes straight to the final path and raises,
    leaving exactly the corruption a non-atomic writer would have — the
    state the loader's checksum fallback must survive.
    """
    path = pathlib.Path(path)
    if _faults.ARMED and _faults.take_torn(f"{site}.torn"):
        with open(path, "wb") as handle:  # repro-lint: disable=RB001
            handle.write(data[:max(1, len(data) // 2)])
        raise _faults.InjectedTornWrite(site)
    _faults.fault_point(f"{site}.begin")
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        _faults.fault_point(f"{site}.tmp_written")
        os.fsync(handle.fileno())
    _faults.fault_point(f"{site}.tmp_fsynced")
    os.replace(tmp, path)
    _faults.fault_point(f"{site}.replaced")
    _fsync_directory(path.parent)
    _faults.fault_point(f"{site}.committed")


def _array_checksum(array: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    # Checkpoint integrity hashing runs at save/load boundaries, not in a
    # replayed step; the copy is needed to hash strided views at all.
    digest.update(np.ascontiguousarray(array).tobytes())  # repro-lint: disable=PERF002
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Checkpoint manager
# ----------------------------------------------------------------------
@dataclass
class LoadedCheckpoint:
    """A successfully validated checkpoint plus any corrupt ones skipped."""

    task_index: int
    state: dict
    path: pathlib.Path
    skipped: list[str] = field(default_factory=list)
    #: Informational run metadata (e.g. worker count); never used to
    #: restore state — resume is execution-topology independent.
    meta: dict = field(default_factory=dict)


class CheckpointManager:
    """Writes and validates per-task checkpoints in one run directory.

    Parameters
    ----------
    directory:
        Run directory; created if missing.
    keep:
        Retain only the newest ``keep`` checkpoints after each save
        (``None`` keeps everything).
    """

    def __init__(self, directory: str | pathlib.Path, keep: int | None = None):
        if keep is not None and keep < 1:
            raise ValueError("keep must be >= 1 (or None to keep all)")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.sweep_orphans()

    def sweep_orphans(self) -> list[str]:
        """Remove stale ``*.tmp-<pid>`` files a killed writer left behind.

        Safe under the manager's single-writer-per-directory contract: a
        temp file present at init can only be the residue of a crashed
        save (the atomic dance never leaves one on success).  Returns the
        removed names, for logging.
        """
        removed = []
        for stale in self.directory.glob("ckpt-*.tmp-*"):
            stale.unlink(missing_ok=True)
            removed.append(stale.name)
        return sorted(removed)

    # -- paths ----------------------------------------------------------
    def manifest_paths(self) -> list[pathlib.Path]:
        """All manifest files, oldest first (by task index)."""
        found = []
        for path in self.directory.iterdir():
            match = _MANIFEST_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _index, path in sorted(found)]

    def _names(self, task_index: int) -> tuple[str, str]:
        stem = f"ckpt-{task_index:05d}"
        return f"{stem}.npz", f"{stem}.json"

    # -- write ----------------------------------------------------------
    def save(self, task_index: int, state: dict,
             meta: dict | None = None) -> pathlib.Path:
        """Atomically write ``state`` as the checkpoint for ``task_index``.

        ``meta`` is an optional JSON-safe mapping recorded in the manifest
        for humans and tooling (e.g. ``{"workers": 3}``); loading ignores
        it when restoring state, so runs stay resumable under a different
        execution topology.
        """
        tree, arrays = flatten_state(state)
        arrays_name, manifest_name = self._names(task_index)
        arrays_path = self.directory / arrays_name

        buffer = io.BytesIO()
        np.savez_compressed(buffer, **arrays)
        atomic_write_bytes(arrays_path, buffer.getvalue(), site="ckpt.arrays")

        manifest = {
            "schema_version": SCHEMA_VERSION,
            "task_index": task_index,
            "arrays_file": arrays_name,
            "checksums": {key: _array_checksum(a) for key, a in arrays.items()},
            "tree": tree,
        }
        if meta:
            meta_arrays: dict[str, np.ndarray] = {}
            manifest["meta"] = _flatten(meta, "meta", meta_arrays)
            if meta_arrays:
                raise TypeError("checkpoint meta must be JSON-only "
                                "(ndarrays belong in the state tree)")
        manifest_path = self.directory / manifest_name
        atomic_write_bytes(manifest_path,
                           json.dumps(manifest, indent=1).encode("utf-8"),
                           site="ckpt.manifest")
        self._prune()
        return manifest_path

    def _pair_is_valid(self, manifest_path: pathlib.Path) -> bool:
        """Cheap pair validity: manifest parses and its npz file exists.

        (Checksums are the loader's job; pruning only needs to know which
        checkpoints could possibly restore, so that retention counts
        *valid* checkpoints and a run of torn pairs can't evict the last
        good one.)
        """
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return False
        arrays_file = manifest.get("arrays_file")
        return (isinstance(arrays_file, str)
                and (self.directory / arrays_file).exists())

    def _prune(self) -> None:
        """Retain the newest ``keep`` *valid* checkpoints.

        Invalid pairs (manifest without npz, torn manifest) never count
        toward ``keep`` and are removed along with anything older than
        the retained set; orphan npz files below the newest retained
        index (residue of a crash between the two writes) go too.
        """
        if self.keep is None:
            return
        manifests = self.manifest_paths()
        valid = [path for path in manifests if self._pair_is_valid(path)]
        kept = set(valid[-self.keep:])
        for stale in manifests:
            if stale in kept:
                continue
            stale.unlink(missing_ok=True)
            stale.with_suffix(".npz").unlink(missing_ok=True)
        if kept:
            newest_kept = max(int(_MANIFEST_RE.match(p.name).group(1))
                              for p in kept)
            kept_arrays = {p.with_suffix(".npz").name for p in kept}
            for npz in self.directory.glob("ckpt-*.npz"):
                index = int(npz.stem.split("-")[1])
                if npz.name not in kept_arrays and index < newest_kept:
                    npz.unlink(missing_ok=True)

    # -- read -----------------------------------------------------------
    def _load_manifest(self, manifest_path: pathlib.Path) -> tuple[int, dict, dict]:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable manifest: {exc}") from exc
        if manifest.get("schema_version") != SCHEMA_VERSION:
            raise CheckpointError(
                f"schema version {manifest.get('schema_version')!r} != {SCHEMA_VERSION}")
        arrays_path = self.directory / manifest["arrays_file"]
        try:
            with np.load(arrays_path) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise CheckpointError(f"unreadable array file {arrays_path.name}: {exc}") from exc
        checksums = manifest["checksums"]
        if set(checksums) != set(arrays):
            raise CheckpointError(
                f"array set mismatch in {arrays_path.name}: manifest lists "
                f"{len(checksums)} arrays, file holds {len(arrays)}")
        for key, expected in checksums.items():
            actual = _array_checksum(arrays[key])
            if actual != expected:
                raise CheckpointError(
                    f"checksum mismatch for array {key!r} in {arrays_path.name}")
        state = unflatten_state(manifest["tree"], arrays)
        return int(manifest["task_index"]), state, manifest.get("meta") or {}

    def load_latest(self) -> LoadedCheckpoint | None:
        """Newest checkpoint that passes validation, or ``None`` if none do.

        Corrupt/partial checkpoints are skipped (newest-first) and recorded
        in the returned ``skipped`` list so callers can log the fallback.
        """
        skipped: list[str] = []
        for manifest_path in reversed(self.manifest_paths()):
            try:
                task_index, state, meta = self._load_manifest(manifest_path)
            except CheckpointError as exc:
                skipped.append(f"{manifest_path.name}: {exc}")
                continue
            return LoadedCheckpoint(task_index=task_index, state=state,
                                    path=manifest_path, skipped=skipped,
                                    meta=meta)
        return None
