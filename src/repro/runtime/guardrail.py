"""Divergence guardrails for the continual training loop.

A :class:`GuardrailPolicy` describes what counts as divergence (non-finite
or exploding loss, exploding gradient norm, an :class:`AnomalyError` from
the autograd sanitizer) and how the trainer escalates when it happens:

1. **skip batch** — discard the poisoned gradients and move on;
2. **restore + LR backoff** — after ``max_skips_per_task`` skips in one
   task, restore the last good task-boundary state (method weights, memory,
   RNG stream) and restart the task with the learning rate scaled by
   ``lr_backoff``;
3. **abort** — after ``max_restores_per_task`` restores, write a structured
   failure report to the run directory and raise :class:`TrainingDiverged`.

Every step of the ladder is recorded through :class:`RunLog`, an
append-only JSONL event log living next to the checkpoints.
"""

from __future__ import annotations

import json
import math
import pathlib
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.runtime.checkpoint import atomic_write_bytes

#: Longest ``detail`` string kept in events (anomaly stacks can be huge).
_DETAIL_LIMIT = 600


@dataclass(frozen=True)
class GuardrailPolicy:
    """Thresholds and escalation limits for divergence recovery.

    Attributes
    ----------
    max_loss:
        Absolute loss value treated as an explosion (``None`` disables).
    max_grad_norm:
        Global gradient-norm threshold (``None`` disables).
    anomaly_mode:
        Run every batch under :func:`repro.tensor.detect_anomaly`, catching
        NaN/Inf the moment a primitive produces one (more precise, slightly
        slower) instead of only at the loss/grad checks.
    max_skips_per_task:
        Skipped batches tolerated within one task before escalating to a
        restore.
    lr_backoff:
        Learning-rate factor applied per restore (restart ``i`` trains at
        ``lr * lr_backoff**i``).
    max_restores_per_task:
        Restores tolerated within one task before aborting the run.
    """

    max_loss: float | None = 1e6
    max_grad_norm: float | None = 1e3
    anomaly_mode: bool = True
    max_skips_per_task: int = 3
    lr_backoff: float = 0.5
    max_restores_per_task: int = 2

    def __post_init__(self):
        if self.max_loss is not None and self.max_loss <= 0:
            raise ValueError("max_loss must be positive (or None)")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive (or None)")
        if self.max_skips_per_task < 0:
            raise ValueError("max_skips_per_task must be >= 0")
        if not 0 < self.lr_backoff <= 1:
            raise ValueError("lr_backoff must be in (0, 1]")
        if self.max_restores_per_task < 0:
            raise ValueError("max_restores_per_task must be >= 0")


class GuardrailViolation(RuntimeError):
    """Internal signal that one batch tripped a guardrail check."""

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


class TrainingDiverged(RuntimeError):
    """The guardrail escalation ladder was exhausted; the run aborted.

    Carries the structured failure ``report`` (also written to
    ``failure-report.json`` in the run directory when one is configured).
    """

    def __init__(self, message: str, report: dict,
                 report_path: pathlib.Path | None = None):
        super().__init__(message)
        self.report = report
        self.report_path = report_path


def clip_detail(text: str, limit: int = _DETAIL_LIMIT) -> str:
    """Trim long diagnostics (anomaly stacks) for event records."""
    text = str(text)
    if len(text) <= limit:
        return text
    return text[:limit] + f"... [{len(text) - limit} chars truncated]"


def global_grad_norm(parameters) -> float:
    """L2 norm over every parameter gradient (missing grads contribute 0)."""
    total = 0.0
    for p in parameters:
        if p.grad is not None:
            total += float(np.sum(np.square(p.grad.astype(np.float64))))
    return math.sqrt(total)


class RunLog:
    """Append-only JSONL event log for one run directory.

    With ``path=None`` the log is memory-only (events still accumulate, so
    failure reports and tests can inspect them); with a path every event is
    appended to the file as one JSON line as it happens.
    """

    def __init__(self, path: str | pathlib.Path | None = None):
        self.path = None if path is None else pathlib.Path(path)
        self.events: list[dict] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, kind: str, **fields) -> dict:
        event = {"time": time.time(), "kind": kind, **fields}
        self.events.append(event)
        if self.path is not None:
            # Append-only JSONL is crash-safe by construction: a torn last
            # line cannot corrupt committed events, and readers skip it.
            # The atomic writer would rewrite the whole log per event.
            with open(self.path, "a", encoding="utf-8") as handle:  # repro-lint: disable=RB001
                handle.write(json.dumps(event) + "\n")
                handle.flush()
        return event

    def tail(self, n: int = 20) -> list[dict]:
        return self.events[-n:]

    def write_failure_report(self, report: dict) -> pathlib.Path | None:
        """Atomically write ``failure-report.json`` next to the event log."""
        if self.path is None:
            return None
        target = self.path.parent / "failure-report.json"
        atomic_write_bytes(target, json.dumps(report, indent=2).encode("utf-8"))
        return target


def build_failure_report(method_name: str, task_index: int, restores: int,
                         policy: GuardrailPolicy, log: RunLog) -> dict:
    """The structured report written when the escalation ladder is exhausted."""
    return {
        "method": method_name,
        "task_index": task_index,
        "restores": restores,
        "policy": asdict(policy),
        "recent_events": log.tail(20),
        "message": (f"training diverged on task {task_index}: "
                    f"{restores} restore(s) with LR backoff did not recover"),
    }
