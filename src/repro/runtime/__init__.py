"""Fault-tolerance layer: atomic checkpoints, resume, divergence guardrails.

``repro.runtime`` makes long continual runs restartable and self-healing:

- :class:`CheckpointManager` — atomic, integrity-checked per-task
  checkpoints of the *full* run state (model, method extras, optimizer
  buffers, memory, RNG stream, partial accuracy matrix), with corrupt-file
  fallback to the last good checkpoint;
- :class:`GuardrailPolicy` — configurable divergence detection (NaN/Inf
  loss, exploding gradients, autograd anomalies) with an escalating
  recovery ladder: skip batch → restore + LR backoff → structured abort
  (:class:`TrainingDiverged`);
- :class:`RunLog` — the JSONL event trail both subsystems write to the run
  directory.

See ``DESIGN.md`` ("Fault tolerance") for the checkpoint format and the
atomicity argument.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_SITES,
    CheckpointError,
    CheckpointManager,
    LoadedCheckpoint,
    SCHEMA_VERSION,
    atomic_write_bytes,
    check_serializable,
    flatten_state,
    unflatten_state,
)
from repro.runtime.guardrail import (
    GuardrailPolicy,
    GuardrailViolation,
    RunLog,
    TrainingDiverged,
    build_failure_report,
    clip_detail,
    global_grad_norm,
)

__all__ = [
    "CHECKPOINT_SITES",
    "CheckpointError",
    "CheckpointManager",
    "LoadedCheckpoint",
    "SCHEMA_VERSION",
    "atomic_write_bytes",
    "check_serializable",
    "flatten_state",
    "unflatten_state",
    "GuardrailPolicy",
    "GuardrailViolation",
    "RunLog",
    "TrainingDiverged",
    "build_failure_report",
    "clip_detail",
    "global_grad_norm",
]
