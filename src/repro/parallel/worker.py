"""The per-shard execution unit and the worker-process main loop.

A :class:`ShardExecutor` owns a model replica built from the run config
and evaluates one micro-shard at a time: load the step-start parameters
and buffers, zero the replica's gradients, run forward+backward on the
shard's two views, and hand back the loss, the leaf gradients, and (when
asked) the post-forward buffer values.  Because every shard starts from
the same broadcast state, a shard's result depends only on its input
arrays — not on which process (or which previously executed shard)
produced it.  That is the whole parity argument: serial execution and any
worker assignment run identical per-shard programs.

Shard shapes are stable across steps, so the executor drives its
forward+backward through :class:`repro.tensor.tape.TapedFunction` when
``use_tape`` is set — the first occurrence of each shard shape is
captured, later ones replay the recorded program (bit-for-bit identical
gradients, by the tape contract).

:func:`worker_main` wraps an executor in a request/reply loop over a
``multiprocessing`` pipe.  The protocol is deliberately tiny:

- ``("step", step_id, params, buffers, jobs)`` where ``jobs`` is a list of
  ``(shard_id, view1, view2, want_buffers)`` → ``("ok", step_id, results)``
  with ``results = [(shard_id, loss, grads, buffers-or-None), ...]``;
- ``("stop",)`` → clean exit.

Any exception inside a step is reported as ``("err", step_id, detail)``
instead of killing the process, so the parent can escalate through the
guardrail ladder rather than diagnosing a dead pipe.
"""

from __future__ import annotations

import traceback

import numpy as np

from repro.faults import plane as _faults
from repro.tensor import memplan
from repro.tensor.tape import TapedFunction

__all__ = ["ShardExecutor", "worker_main"]


def _collect_buffers(module) -> dict[str, np.ndarray]:
    """Copy every registered buffer (BatchNorm running stats) by name."""
    return {name: np.array(buf, copy=True)
            for name, buf in module.named_buffers()}


def _assign_buffers(module, values: dict[str, np.ndarray], prefix: str = "") -> None:
    """Write named buffer values into a module tree (copies, in order)."""
    for name in list(module._buffers):
        module._set_buffer(name, values[prefix + name].copy())
    for name, child in module._modules.items():
        _assign_buffers(child, values, prefix + name + ".")


class ShardExecutor:
    """A model replica that evaluates micro-shards from broadcast state.

    Parameters
    ----------
    config:
        The run's :class:`~repro.continual.config.ContinualConfig`; the
        replica is rebuilt from it (initial values are irrelevant — every
        shard loads the step-start parameters before running).
    sample_shape:
        Per-sample input shape (no batch dimension), as accepted by
        :func:`repro.continual.config.build_objective`.
    use_tape:
        Drive the shard forward+backward through a per-shape tape.
    """

    def __init__(self, config, sample_shape: tuple[int, ...],
                 use_tape: bool = True):
        # Imported lazily: repro.continual imports repro.parallel (via the
        # trainer), so a top-level import here would be circular.
        from repro.continual.config import build_objective

        self.objective = build_objective(
            config, tuple(sample_shape), np.random.default_rng(0))
        self.objective.train()
        self.parameters = self.objective.parameters()

        def _forward_backward(v1: np.ndarray, v2: np.ndarray):
            loss = self.objective.css_loss(v1, v2)
            loss.backward()
            return loss

        self._forward_backward = (
            TapedFunction(_forward_backward, name="shard-step")
            if use_tape else _forward_backward)

    def load_state(self, params: list[np.ndarray],
                   buffers: dict[str, np.ndarray]) -> None:
        """Reset the replica to the broadcast step-start state."""
        if len(params) != len(self.parameters):
            raise ValueError(
                f"got {len(params)} parameter arrays, replica has "
                f"{len(self.parameters)} parameters")
        for param, value in zip(self.parameters, params):
            # Sanctioned rebind (same as Module.load_state_dict): the
            # broadcast value replaces the replica's array outside any
            # live graph; the version counter records it.
            param.data = value  # repro-lint: disable=AD001
        _assign_buffers(self.objective, buffers)

    def run_shard(self, view1: np.ndarray, view2: np.ndarray,
                  params: list[np.ndarray], buffers: dict[str, np.ndarray],
                  want_buffers: bool = False):
        """Evaluate one micro-shard from the broadcast state.

        Returns ``(loss, grads, buffers)`` where ``loss`` is the shard's
        scalar mean loss (float32), ``grads`` the per-parameter leaf
        gradients (copies, in ``parameters()`` order), and ``buffers`` the
        post-forward buffer values when ``want_buffers`` else ``None``.
        """
        self.load_state(params, buffers)
        self.objective.zero_grad(set_to_none=False)
        _faults.fault_point("shard.step")
        loss = self._forward_backward(view1, view2)
        grads = [p.grad.copy() for p in self.parameters]
        if _faults.ARMED and grads:
            # Payload-corruption site: a nan_payload event poisons one
            # gradient array, exactly what a bad reduce or a flaky host
            # would hand back; the guardrail grad screen must catch it.
            grads[0] = _faults.corrupt("shard.grads", grads[0])
        out_buffers = _collect_buffers(self.objective) if want_buffers else None
        return np.float32(loss.data), grads, out_buffers


def worker_main(conn, config, sample_shape, use_tape: bool,
                fault_plan=None) -> None:
    """Request/reply loop run inside each worker process.

    ``fault_plan`` is this worker's filtered
    :class:`~repro.faults.FaultPlan` slice (or ``None``): the plane is
    always re-armed process-locally here — a forked child would otherwise
    inherit the parent's armed state *and* its hit counters.
    """
    _faults.disarm()
    if fault_plan is not None:
        _faults.arm(fault_plan)
    # Forked children inherit the parent's scratch cache and allocator
    # counters; drop them so each worker plans into its own arena and
    # reports process-local stats.
    memplan.reset_process_state()
    executor = ShardExecutor(config, sample_shape, use_tape=use_tape)
    try:
        while True:
            # Blocking by design: the worker has nothing to do but wait on
            # its parent, and a vanished parent surfaces as EOFError.
            message = conn.recv()  # repro-lint: disable=RB001
            kind = message[0]
            if kind == "stop":
                _faults.fault_point("worker.stop")
                return
            if kind != "step":
                conn.send(("err", None, f"unknown message kind {kind!r}"))
                continue
            _kind, step_id, params, buffers, jobs = message
            try:
                # kill/hang events escape the except below (they are not
                # exceptions); worker_exception lands in the err reply.
                _faults.fault_point("worker.step")
                results = []
                for shard_id, view1, view2, want_buffers in jobs:
                    loss, grads, out_buffers = executor.run_shard(
                        view1, view2, params, buffers,
                        want_buffers=want_buffers)
                    results.append((shard_id, loss, grads, out_buffers))
                conn.send(("ok", step_id, results))
            except Exception:  # noqa: BLE001 - report, don't die
                conn.send(("err", step_id, traceback.format_exc(limit=20)))
    except (EOFError, KeyboardInterrupt):  # parent went away
        return
    finally:
        conn.close()
