"""The sharded training step: broadcast → per-shard fwd+bwd → tree all-reduce.

:class:`ShardedStep` is what the trainer drives when a run sets
``ContinualConfig.workers``.  One call to :meth:`loss_backward` is the
sharded-regime equivalent of "loss forward + backward" on a full batch:

1. the batch's two views are split by :func:`~repro.parallel.reduce.shard_plan`
   into micro-shards (a pure function of the batch size — never of the
   worker count);
2. the live model's parameters and buffers are broadcast, and every shard
   runs forward+backward from that same state — serially in-process with
   one worker, round-robin across a :class:`~repro.parallel.pool.WorkerPool`
   otherwise;
3. per-shard gradients are collated by shard id and combined with the
   fixed-order tree reduction, then accumulated into the live leaf
   ``.grad`` buffers exactly as an eager backward would;
4. the batch loss (the same weighted tree-reduction over shard losses) is
   returned as a graph-free scalar Tensor for the guardrail screens.

Because steps 1, 3 and 4 depend only on the batch and steps 2's per-shard
programs depend only on the broadcast state and the shard's arrays, the
result is bit-for-bit identical for every worker count — the property the
``tests/parallel`` parity harness enforces.

Running statistics (BatchNorm) cannot follow the eager full-batch rule in a
sharded regime (each shard normalizes with its own statistics), so the
regime defines them as *shard 0's*: shard 0 reports its post-forward buffer
values and they are written back to the live model.  Worker-count
independent, and applied identically by the serial reference.

Graceful degradation: when the pool reports itself ``broken`` (a dead
worker could not be respawned after bounded retries), the step does *not*
surface the failure — it closes the pool, rebuilds the serial executor,
re-runs the interrupted batch in-process, and continues the run in the
``workers=1`` regime.  Because the shard plan and reduction schedule are
pure functions of the batch (never of the worker count), the degraded run
is bit-for-bit identical to one that ran serially from the start — no
batch is skipped, no result changes.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.pool import WorkerFailure, WorkerPool
from repro.parallel.reduce import (N_SHARDS, accumulate_into, reduce_gradients,
                                   shard_plan, shard_weights, tree_reduce)
from repro.parallel.worker import ShardExecutor, _assign_buffers, _collect_buffers
from repro.tensor.tensor import Tensor

__all__ = ["ShardedStep", "WorkerFailure"]


class ShardedStep:
    """Data-parallel forward+backward over micro-shards of each batch.

    Parameters
    ----------
    objective:
        The live CSSL objective whose leaf ``.grad`` buffers receive the
        reduced gradients (the optimizer steps this model, exactly as in
        the single-process path).
    config:
        The run configuration; worker replicas are rebuilt from it.
    sample_shape:
        Per-sample input shape (no batch dimension).
    workers:
        Process count.  ``1`` executes the same per-shard program serially
        in this process (the parity reference); ``>= 2`` spreads shards
        over a persistent :class:`WorkerPool`.
    use_tape:
        Tape-capture each shard shape once and replay it on later steps.
    n_shards:
        Micro-shards per batch (default :data:`N_SHARDS`).  Part of the
        numerical regime: every worker count must use the same value.
    timeout:
        Seconds to wait on a worker before treating it as hung.
    on_event:
        Optional callback ``(kind, **fields)`` for operational events the
        caller should log (currently ``"pool-degraded"``).
    """

    def __init__(self, objective, config, sample_shape, workers: int = 1,
                 use_tape: bool = True, n_shards: int = N_SHARDS,
                 timeout: float | None = None, on_event=None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.objective = objective
        self.parameters = objective.parameters()
        self.workers = workers
        self.config = config
        self.sample_shape = tuple(sample_shape)
        self.use_tape = use_tape
        self.n_shards = n_shards
        self.on_event = on_event
        self.stats = {"steps": 0, "shards": 0, "degraded": False}
        self.pool: WorkerPool | None = None
        self.executor: ShardExecutor | None = None
        if workers > 1:
            kwargs = {} if timeout is None else {"timeout": timeout}
            self.pool = WorkerPool(workers, config, sample_shape,
                                   use_tape=use_tape, **kwargs)
        else:
            self.executor = ShardExecutor(config, sample_shape,
                                          use_tape=use_tape)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()

    def _degrade_to_serial(self, failure: WorkerFailure) -> None:
        """Swap the broken pool for an in-process serial executor."""
        pool = self.pool
        self.pool = None
        self.stats["degraded"] = True
        if self.on_event is not None:
            self.on_event("pool-degraded",
                          detail=str(failure),
                          respawn_failures=pool.respawn_failures,
                          workers=self.workers)
        pool.close()
        self.executor = ShardExecutor(self.config, self.sample_shape,
                                      use_tape=self.use_tape)

    def __enter__(self) -> "ShardedStep":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One batch
    # ------------------------------------------------------------------
    def loss_backward(self, view1: np.ndarray, view2: np.ndarray) -> Tensor:
        """Sharded forward+backward; gradients land in the live ``.grad``.

        Returns the batch loss (weighted tree-reduction of shard losses)
        as a graph-free scalar Tensor.  Raises :class:`WorkerFailure` if a
        worker dies/hangs/raises — gradients are then unusable and the
        caller discards them (``optimizer.zero_grad``) and escalates.
        """
        if len(view1) != len(view2):
            raise ValueError(
                f"view batches disagree: {len(view1)} vs {len(view2)}")
        plan = shard_plan(len(view1), self.n_shards)
        weights = shard_weights(plan, len(view1))
        params = [p.data for p in self.parameters]
        buffers = _collect_buffers(self.objective)

        if self.pool is not None:
            shard_views = [(view1[piece], view2[piece]) for piece in plan]
            try:
                losses, grads, shard0_buffers = self.pool.run_step(
                    params, buffers, shard_views)
            except WorkerFailure as failure:
                if not self.pool.broken:
                    raise
                # Respawn failed twice: the pool cannot be healed.  Fall
                # back to the serial regime and re-run this batch in
                # process — nothing was accumulated yet, so the degraded
                # run stays bit-for-bit identical to a workers=1 run.
                self._degrade_to_serial(failure)
        if self.pool is None:
            losses, grads, shard0_buffers = {}, {}, None
            for shard_id, piece in enumerate(plan):
                loss, shard_grads, out_buffers = self.executor.run_shard(
                    view1[piece], view2[piece], params, buffers,
                    want_buffers=shard_id == 0)
                losses[shard_id] = loss
                grads[shard_id] = shard_grads
                if out_buffers is not None:
                    shard0_buffers = out_buffers

        reduced = reduce_gradients(grads, weights)
        accumulate_into(self.parameters, reduced)
        if shard0_buffers:
            _assign_buffers(self.objective, shard0_buffers)
        loss_value = tree_reduce(
            [weights[k] * losses[k] for k in range(len(plan))])
        self.stats["steps"] += 1
        self.stats["shards"] += len(plan)
        return Tensor(np.float32(loss_value))
