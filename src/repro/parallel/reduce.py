"""Deterministic shard planning and tree-reduction of gradients.

This module is the *only* place in :mod:`repro.parallel` allowed to sum
shard results (lint rule MP001 polices the rest of the package).  Both
halves of the bit-for-bit story live here:

- :func:`shard_plan` decomposes a batch into micro-shards as a pure
  function of the batch size — never of the worker count — so every run
  of the sharded regime executes the identical per-shard programs no
  matter how many processes it is spread over;
- :func:`tree_reduce` combines per-shard contributions pairwise in a
  fixed binary-tree order indexed by *shard id*.  Float addition is not
  associative, so the reduction order is part of the numerical contract:
  as long as results are slotted by shard id before reduction, the order
  in which workers *deliver* them cannot change a single bit.

The reduction tree for six shards::

    s0   s1   s2   s3   s4   s5
      \\  /      \\  /      \\  /
      s01       s23       s45
         \\      /           |
          s0123            s45
               \\          /
                s012345            (odd node passes through unchanged)
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "N_SHARDS",
    "accumulate_into",
    "reduce_gradients",
    "shard_plan",
    "shard_weights",
    "tree_reduce",
]

#: Micro-shards per batch in the sharded regime.  Divisible by 1, 2 and 3
#: so the supported worker counts all balance; fixed (rather than derived
#: from the worker count) because the shard decomposition defines the
#: numerics — changing it changes the regime, changing workers must not.
N_SHARDS = 6


def shard_plan(batch_size: int, n_shards: int = N_SHARDS) -> list[slice]:
    """Contiguous micro-shard slices covering ``range(batch_size)``.

    A pure function of ``(batch_size, n_shards)``: the first
    ``batch_size % n_shards`` shards get one extra sample, and batches
    smaller than ``n_shards`` produce ``batch_size`` single-sample shards
    (never an empty shard).
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    n_shards = min(n_shards, batch_size)
    base, extra = divmod(batch_size, n_shards)
    plan: list[slice] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        plan.append(slice(start, start + size))
        start += size
    return plan


def shard_weights(plan: list[slice], batch_size: int) -> list[np.float32]:
    """Per-shard loss/gradient weights ``len(shard) / batch_size``.

    The sharded batch loss is the weighted sum of per-shard mean losses,
    so its gradient is the same weighted sum of per-shard gradients.  The
    weights are float32 scalars: the scaling is part of the fixed-order
    float32 program, identical in serial and multiprocess execution.
    """
    return [np.float32((s.stop - s.start) / batch_size) for s in plan]


def tree_reduce(values: list[np.ndarray]) -> np.ndarray:
    """Sum ``values`` pairwise in a fixed binary-tree order.

    ``values`` must be ordered by shard id.  Level by level, element ``2i``
    is added to element ``2i + 1``; an odd trailing element passes through
    unchanged.  The schedule depends only on ``len(values)``, so any two
    executions over the same shard decomposition — one process or many,
    whatever the completion order — add the same numbers in the same order.
    """
    if not values:
        raise ValueError("tree_reduce needs at least one value")
    level = list(values)
    while len(level) > 1:
        paired = [level[i] + level[i + 1] for i in range(0, len(level) - 1, 2)]
        if len(level) % 2:
            paired.append(level[-1])
        level = paired
    return level[0]


def reduce_gradients(shard_grads: dict[int, list[np.ndarray]],
                     weights: list[np.float32]) -> list[np.ndarray]:
    """All-reduce per-shard gradient lists into one list of batch gradients.

    ``shard_grads`` maps shard id to that shard's per-parameter gradients
    (every shard must be present; arrival order is irrelevant because the
    reduction iterates shard ids ``0..K-1``).  Each parameter slot is
    scaled by its shard weight and combined with :func:`tree_reduce`.
    """
    n_shards = len(weights)
    missing = [k for k in range(n_shards) if k not in shard_grads]
    if missing:
        raise ValueError(f"missing gradients for shard(s) {missing}")
    reduced: list[np.ndarray] = []
    n_params = len(shard_grads[0])
    for slot in range(n_params):
        scaled = [weights[k] * shard_grads[k][slot] for k in range(n_shards)]
        reduced.append(tree_reduce(scaled))
    return reduced


def accumulate_into(parameters, reduced: list[np.ndarray]) -> None:
    """Accumulate reduced batch gradients into the live leaf ``.grad`` buffers.

    Mirrors the engine's leaf accumulation: an existing buffer (stable
    under ``zero_grad(set_to_none=False)``) is added into in place, a
    missing one is assigned.
    """
    if len(parameters) != len(reduced):
        raise ValueError(
            f"{len(reduced)} reduced gradients for {len(parameters)} parameters")
    for param, grad in zip(parameters, reduced):
        if grad.dtype != param.data.dtype:
            grad = grad.astype(param.data.dtype)
        buf = param.grad
        if buf is None:
            param.grad = grad
        elif buf.shape == grad.shape and buf.dtype == grad.dtype:
            np.add(buf, grad, out=buf)
        else:
            param.grad = buf + grad
