"""Multiprocess data-parallel sharding with bit-for-bit determinism.

The repo's first concurrency layer.  Each training batch is split into a
fixed number of micro-shards (:func:`shard_plan` — a pure function of the
batch size, never of the worker count), every shard runs forward+backward
from the same broadcast model state, and the per-shard gradients are
all-reduced in a fixed binary-tree order (:func:`tree_reduce`) into the
stable leaf ``.grad`` buffers.  Because the shard decomposition, the
per-shard programs, and the reduction schedule are all worker-count
independent, runs with 1, 2, or 3 workers produce bit-for-bit identical
weights, gradients, and checkpoints — the property ``tests/parallel``
enforces and DESIGN.md derives.

Layout
------
- :mod:`repro.parallel.reduce` — shard planning + deterministic reduction
  (the only module allowed to sum gradients; lint rule MP001);
- :mod:`repro.parallel.worker` — the per-shard executor and the worker
  process loop;
- :mod:`repro.parallel.pool` — persistent worker pool with failure
  detection and respawn;
- :mod:`repro.parallel.step` — :class:`ShardedStep`, the trainer-facing
  broadcast → shard → all-reduce engine.
"""

from repro.parallel.pool import WorkerFailure, WorkerPool
from repro.parallel.reduce import (N_SHARDS, shard_plan, shard_weights,
                                   tree_reduce)
from repro.parallel.step import ShardedStep
from repro.parallel.worker import ShardExecutor

__all__ = [
    "N_SHARDS",
    "ShardExecutor",
    "ShardedStep",
    "WorkerFailure",
    "WorkerPool",
    "shard_plan",
    "shard_weights",
    "tree_reduce",
]
