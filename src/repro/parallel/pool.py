"""A persistent pool of shard workers with failure detection and respawn.

Workers are long-lived processes (one :class:`ShardExecutor` each) fed over
dedicated pipes; a step broadcasts the current parameter/buffer state and a
round-robin assignment of micro-shards, then collects per-shard results.

Failure handling is the point of this module: a worker that dies (killed,
OOM, crashed interpreter) or stops answering within ``timeout`` seconds is
detected on the next send/receive, every dead worker is respawned so the
*next* step can proceed, and the step raises :class:`WorkerFailure` — the
trainer maps that onto the PR-2 guardrail ladder (skip batch → restore +
LR backoff → abort) instead of hanging on a silent pipe.  A worker that
merely reports an exception (``("err", ...)``) stays alive and is not
respawned; its traceback rides along in the failure.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.parallel.worker import worker_main

__all__ = ["WorkerFailure", "WorkerPool"]

#: Seconds a step waits on one worker before declaring it hung.
DEFAULT_TIMEOUT = 120.0


class WorkerFailure(RuntimeError):
    """A worker died, hung, or raised while evaluating its shards.

    The step's gradients are unusable; callers discard them and escalate
    (guardrail ladder) or propagate.  The pool has already respawned any
    dead workers, so retrying the next batch is safe.
    """

    def __init__(self, reason: str, shard_ids: tuple[int, ...] = ()):
        detail = f" (shards {list(shard_ids)} lost)" if shard_ids else ""
        super().__init__(f"{reason}{detail}")
        self.reason = reason
        self.shard_ids = shard_ids


def _pick_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform offers it (fast, no pickling of the model
    builder), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerPool:
    """``n_workers`` persistent shard executors behind pipes.

    Parameters
    ----------
    n_workers:
        Process count (>= 1; a 1-worker pool is mainly useful in tests —
        serial execution without processes is
        :class:`repro.parallel.step.ShardedStep`'s job).
    config, sample_shape, use_tape:
        Forwarded to each worker's :class:`~repro.parallel.worker.ShardExecutor`.
    timeout:
        Seconds to wait for one worker's step reply before declaring it hung.
    """

    def __init__(self, n_workers: int, config, sample_shape,
                 use_tape: bool = True, timeout: float = DEFAULT_TIMEOUT):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.config = config
        self.sample_shape = tuple(sample_shape)
        self.use_tape = use_tape
        self.timeout = timeout
        self._ctx = _pick_context()
        self._step_id = 0
        self.processes: list = [None] * n_workers
        self._conns: list = [None] * n_workers
        self.respawns = 0
        for index in range(n_workers):
            self._spawn(index)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.config, self.sample_shape, self.use_tape),
            name=f"repro-shard-worker-{index}", daemon=True)
        process.start()
        child_conn.close()
        self.processes[index] = process
        self._conns[index] = parent_conn

    def _respawn_dead(self) -> list[int]:
        """Replace every dead worker; returns the indices respawned."""
        replaced = []
        for index, process in enumerate(self.processes):
            if process is not None and process.is_alive():
                continue
            if self._conns[index] is not None:
                self._conns[index].close()
            self._spawn(index)
            self.respawns += 1
            replaced.append(index)
        return replaced

    def close(self) -> None:
        """Stop every worker; terminate any that ignore the request."""
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self.processes:
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self.processes = [None] * self.n_workers
        self._conns = [None] * self.n_workers

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One step
    # ------------------------------------------------------------------
    def run_step(self, params, buffers, shard_views):
        """Evaluate every micro-shard across the pool; collate by shard id.

        Parameters
        ----------
        params:
            Per-parameter arrays of the live model (broadcast to workers).
        buffers:
            Named buffer values of the live model (broadcast to workers).
        shard_views:
            ``[(view1, view2), ...]`` indexed by shard id; shard 0 also
            reports its post-forward buffers (the shard that owns
            running-stat updates in the sharded regime).

        Returns
        -------
        ``(losses, grads, shard0_buffers)`` — ``losses[k]`` and
        ``grads[k]`` keyed by shard id, collated so downstream reduction
        is independent of delivery order.

        Raises
        ------
        WorkerFailure
            If any worker died, hung past ``timeout``, or raised.  Dead
            workers are respawned before the exception propagates.
        """
        self._step_id += 1
        step_id = self._step_id
        assignment: dict[int, list] = {w: [] for w in range(self.n_workers)}
        for shard_id, (view1, view2) in enumerate(shard_views):
            worker = shard_id % self.n_workers
            assignment[worker].append(
                (shard_id, view1, view2, shard_id == 0))

        busy = []
        failures = []
        for worker, jobs in assignment.items():
            if not jobs:
                continue
            try:
                self._conns[worker].send(
                    ("step", step_id, params, buffers, jobs))
                busy.append(worker)
            except (BrokenPipeError, OSError):
                failures.append((worker, jobs, "died before dispatch"))

        losses: dict[int, object] = {}
        grads: dict[int, list] = {}
        shard0_buffers = None
        deadline = time.monotonic() + self.timeout
        for worker in busy:
            jobs = assignment[worker]
            reply = self._receive(worker, step_id, deadline)
            if not isinstance(reply, tuple):
                failures.append((worker, jobs, str(reply)))
                continue
            _kind, _step, results = reply
            for shard_id, loss, shard_grads, out_buffers in results:
                losses[shard_id] = loss
                grads[shard_id] = shard_grads
                if out_buffers is not None:
                    shard0_buffers = out_buffers

        if failures:
            self._respawn_dead()
            lost = tuple(sorted(
                shard_id for _w, jobs, _r in failures
                for shard_id, *_rest in jobs))
            reasons = "; ".join(
                f"worker {w}: {reason}" for w, _j, reason in failures)
            raise WorkerFailure(reasons, shard_ids=lost)
        return losses, grads, shard0_buffers

    class _Failed(str):
        """Sentinel reply carrying a failure reason."""

    def _receive(self, worker: int, step_id: int, deadline: float):
        """One worker's step reply, or a ``_Failed`` reason string."""
        conn = self._conns[worker]
        process = self.processes[worker]
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self._Failed(f"no reply within {self.timeout:.0f}s")
            try:
                if not conn.poll(min(remaining, 0.05)):
                    if not process.is_alive():
                        return self._Failed(
                            f"died mid-step (exitcode {process.exitcode})")
                    continue
                reply = conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                return self._Failed(
                    f"pipe closed mid-step (exitcode {process.exitcode})")
            kind = reply[0]
            if kind == "err":
                return self._Failed(f"raised during step: {reply[2]}")
            if kind == "ok" and reply[1] == step_id:
                return reply
            # Stale reply from an aborted earlier step: drain and keep waiting.
