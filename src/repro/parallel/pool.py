"""A persistent pool of shard workers with failure detection and respawn.

Workers are long-lived processes (one :class:`ShardExecutor` each) fed over
dedicated pipes; a step broadcasts the current parameter/buffer state and a
round-robin assignment of micro-shards, then collects per-shard results.

Failure handling is the point of this module:

- every IPC message runs under its own deadline (``timeout`` seconds per
  reply, not one flat budget for the whole step), with exponentially
  backed-off polling and bounded retry of *transient* I/O errors on both
  send and receive;
- a worker that dies (killed, OOM, crashed interpreter) or stops answering
  within its deadline is detected on the next send/receive, every dead
  worker is respawned — itself with bounded retry + backoff — so the
  *next* step can proceed, and the step raises :class:`WorkerFailure`;
  the trainer maps that onto the PR-2 guardrail ladder (skip batch →
  restore + LR backoff → abort) instead of hanging on a silent pipe;
- a worker that cannot be respawned after :data:`RESPAWN_ATTEMPTS`
  consecutive attempts marks the pool ``broken`` — the signal
  :class:`~repro.parallel.step.ShardedStep` uses to degrade to the serial
  regime mid-task instead of aborting the run;
- :meth:`WorkerPool.close` escalates stop → ``terminate()`` → ``kill()``
  and always closes every pipe in a ``finally``, so a wedged worker can
  neither leak fds nor hang interpreter shutdown.

A worker that merely reports an exception (``("err", ...)``) stays alive
and is not respawned; its traceback rides along in the failure.

Every I/O boundary here is a named fault-injection site
(``pool.spawn`` / ``pool.send`` / ``pool.recv`` — see
:mod:`repro.faults.plane`); the chaos harness drives them to prove the
contracts above actually hold.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.faults import plane as _faults
from repro.parallel.worker import worker_main

__all__ = ["WorkerFailure", "WorkerPool"]

#: Seconds a step waits on one worker's reply (per message, not per step).
DEFAULT_TIMEOUT = 120.0

#: Bounded-retry budget for transient send faults and worker respawn.
SEND_RETRIES = 3
RESPAWN_ATTEMPTS = 2

#: Exponential backoff bounds for IPC polling and retry sleeps.
_POLL_MIN = 0.005
_POLL_MAX = 0.25
_BACKOFF_BASE = 0.01


def _is_transient(exc: OSError) -> bool:
    """Retryable I/O faults: interrupted/temporarily-blocked syscalls and
    injected transients; a broken pipe is never retryable (the peer is
    gone — retrying only hides the death)."""
    if isinstance(exc, (InterruptedError, BlockingIOError)):
        return True
    return bool(getattr(exc, "transient", False))


class WorkerFailure(RuntimeError):
    """A worker died, hung, or raised while evaluating its shards.

    The step's gradients are unusable; callers discard them and escalate
    (guardrail ladder) or propagate.  The pool has already respawned any
    dead workers — unless ``pool.broken`` is set, in which case respawn
    itself failed repeatedly and the pool cannot be healed.
    """

    def __init__(self, reason: str, shard_ids: tuple[int, ...] = ()):
        detail = f" (shards {list(shard_ids)} lost)" if shard_ids else ""
        super().__init__(f"{reason}{detail}")
        self.reason = reason
        self.shard_ids = shard_ids


def _pick_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform offers it (fast, no pickling of the model
    builder), spawn otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class WorkerPool:
    """``n_workers`` persistent shard executors behind pipes.

    Parameters
    ----------
    n_workers:
        Process count (>= 1; a 1-worker pool is mainly useful in tests —
        serial execution without processes is
        :class:`repro.parallel.step.ShardedStep`'s job).
    config, sample_shape, use_tape:
        Forwarded to each worker's :class:`~repro.parallel.worker.ShardExecutor`.
    timeout:
        Seconds to wait for one worker's step reply (per-message deadline)
        before declaring it hung.
    """

    def __init__(self, n_workers: int, config, sample_shape,
                 use_tape: bool = True, timeout: float = DEFAULT_TIMEOUT):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.config = config
        self.sample_shape = tuple(sample_shape)
        self.use_tape = use_tape
        self.timeout = timeout
        self._ctx = _pick_context()
        self._step_id = 0
        self.processes: list = [None] * n_workers
        self._conns: list = [None] * n_workers
        self.respawns = 0
        self.respawn_failures = 0
        #: Set when a dead worker could not be respawned after
        #: ``RESPAWN_ATTEMPTS`` tries; the pool cannot be healed and the
        #: caller should degrade to the serial regime.
        self.broken = False
        for index in range(n_workers):
            self._spawn(index)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> None:
        _faults.fault_point("pool.spawn")
        plan = _faults.current_plan()
        worker_plan = None if plan is None else plan.for_worker(index)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self.config, self.sample_shape, self.use_tape,
                  worker_plan),
            name=f"repro-shard-worker-{index}", daemon=True)
        process.start()
        child_conn.close()
        self.processes[index] = process
        self._conns[index] = parent_conn

    def _respawn_dead(self) -> list[int]:
        """Replace every dead worker, retrying each with backoff.

        Returns the indices successfully respawned; a worker that stays
        dead after :data:`RESPAWN_ATTEMPTS` attempts marks the pool
        ``broken`` (the degrade-to-serial signal) but never raises.
        """
        replaced = []
        for index, process in enumerate(self.processes):
            if process is not None and process.is_alive():
                continue
            if self._conns[index] is not None:
                self._conns[index].close()
                self._conns[index] = None
            for attempt in range(RESPAWN_ATTEMPTS):
                try:
                    self._spawn(index)
                except OSError:
                    self.respawn_failures += 1
                    time.sleep(_BACKOFF_BASE * 2 ** attempt)
                    continue
                self.respawns += 1
                replaced.append(index)
                break
            else:
                self.processes[index] = None
                self.broken = True
        return replaced

    def close(self, grace: float = 5.0) -> None:
        """Stop every worker, escalating stop → terminate → kill.

        ``grace`` bounds each wait stage, so even a worker wedged in
        uninterruptible state (ignoring SIGTERM) delays shutdown by at
        most ``2 * grace`` before SIGKILL clears it.  Every pipe fd is
        closed in a ``finally`` whatever the workers do.
        """
        try:
            for conn in self._conns:
                if conn is None:
                    continue
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            for process in self.processes:
                if process is None:
                    continue
                process.join(timeout=grace)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=grace)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=grace)
        finally:
            for conn in self._conns:
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:  # pragma: no cover - already torn down
                        pass
            self.processes = [None] * self.n_workers
            self._conns = [None] * self.n_workers

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # One step
    # ------------------------------------------------------------------
    def run_step(self, params, buffers, shard_views):
        """Evaluate every micro-shard across the pool; collate by shard id.

        Parameters
        ----------
        params:
            Per-parameter arrays of the live model (broadcast to workers).
        buffers:
            Named buffer values of the live model (broadcast to workers).
        shard_views:
            ``[(view1, view2), ...]`` indexed by shard id; shard 0 also
            reports its post-forward buffers (the shard that owns
            running-stat updates in the sharded regime).

        Returns
        -------
        ``(losses, grads, shard0_buffers)`` — ``losses[k]`` and
        ``grads[k]`` keyed by shard id, collated so downstream reduction
        is independent of delivery order.

        Raises
        ------
        WorkerFailure
            If any worker died, hung past its per-message ``timeout``, or
            raised.  Dead workers are respawned (with bounded retry)
            before the exception propagates; if respawn itself failed
            repeatedly the pool is left marked ``broken``.
        """
        self._step_id += 1
        step_id = self._step_id
        assignment: dict[int, list] = {w: [] for w in range(self.n_workers)}
        for shard_id, (view1, view2) in enumerate(shard_views):
            worker = shard_id % self.n_workers
            assignment[worker].append(
                (shard_id, view1, view2, shard_id == 0))

        busy = []
        failures = []
        for worker, jobs in assignment.items():
            if not jobs:
                continue
            error = self._send(worker, ("step", step_id, params, buffers, jobs))
            if error is None:
                busy.append(worker)
            else:
                failures.append((worker, jobs, error))

        losses: dict[int, object] = {}
        grads: dict[int, list] = {}
        shard0_buffers = None
        for worker in busy:
            jobs = assignment[worker]
            reply = self._receive(worker, step_id)
            if not isinstance(reply, tuple):
                failures.append((worker, jobs, str(reply)))
                continue
            _kind, _step, results = reply
            for shard_id, loss, shard_grads, out_buffers in results:
                losses[shard_id] = loss
                grads[shard_id] = shard_grads
                if out_buffers is not None:
                    shard0_buffers = out_buffers

        if failures:
            self._respawn_dead()
            lost = tuple(sorted(
                shard_id for _w, jobs, _r in failures
                for shard_id, *_rest in jobs))
            reasons = "; ".join(
                f"worker {w}: {reason}" for w, _j, reason in failures)
            raise WorkerFailure(reasons, shard_ids=lost)
        return losses, grads, shard0_buffers

    class _Failed(str):
        """Sentinel reply carrying a failure reason."""

    def _send(self, worker: int, payload) -> str | None:
        """Send one message, retrying transient faults with backoff.

        Returns ``None`` on success or the failure reason; a dead peer
        (broken pipe) fails immediately — only transient I/O errors
        consume the :data:`SEND_RETRIES` budget.
        """
        conn = self._conns[worker]
        if conn is None:
            return "not respawned (pool broken)"
        for attempt in range(SEND_RETRIES):
            try:
                _faults.fault_point("pool.send")
                conn.send(payload)
                return None
            except (BrokenPipeError, ConnectionResetError):
                return "died before dispatch"
            except OSError as exc:
                if not _is_transient(exc) or attempt == SEND_RETRIES - 1:
                    return f"send failed: {exc}"
                time.sleep(_BACKOFF_BASE * 2 ** attempt)
        return "send failed"  # pragma: no cover - loop always returns

    def _receive(self, worker: int, step_id: int):
        """One worker's step reply, or a ``_Failed`` reason string.

        Runs under its own per-message deadline (``self.timeout`` from the
        moment this reply is awaited), polling with exponential backoff;
        transient recv faults are retried until the deadline, anything
        else fails the worker.
        """
        conn = self._conns[worker]
        process = self.processes[worker]
        deadline = time.monotonic() + self.timeout
        interval = _POLL_MIN
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self._Failed(f"no reply within {self.timeout:.0f}s")
            try:
                if not conn.poll(min(remaining, interval)):
                    interval = min(interval * 2, _POLL_MAX)
                    if not process.is_alive():
                        return self._Failed(
                            f"died mid-step (exitcode {process.exitcode})")
                    continue
                _faults.fault_point("pool.recv")
                # Safe to block: poll() above said a message is ready.
                reply = conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError):
                return self._Failed(
                    f"pipe closed mid-step (exitcode {process.exitcode})")
            except OSError as exc:
                if not _is_transient(exc):
                    return self._Failed(f"recv failed: {exc}")
                time.sleep(interval)
                interval = min(interval * 2, _POLL_MAX)
                continue
            kind = reply[0]
            if kind == "err":
                return self._Failed(f"raised during step: {reply[2]}")
            if kind == "ok" and reply[1] == step_id:
                return reply
            # Stale reply from an aborted earlier step: drain and keep waiting.
