"""Datasets, loaders, and the class-incremental task protocol.

The paper evaluates on CIFAR-10/100, Tiny-ImageNet, DomainNet-real and five
tabular sets (Table II).  None of those can be downloaded in this offline
environment, so this package provides *seeded synthetic generators* whose
presets mirror each dataset's shape (class counts, split sizes, image size /
feature counts, positive rates).  See DESIGN.md's substitution table for why
this preserves the behaviours the paper's experiments measure.
"""

from repro.data.dataset import Dataset, ArrayDataset
from repro.data.loader import DataLoader
from repro.data.synthetic import SyntheticImageConfig, make_image_dataset
from repro.data.tabular import TabularConfig, make_tabular_dataset, TABULAR_PRESETS
from repro.data.splits import class_incremental_split, TaskSequence, Task
from repro.data.registry import IMAGE_PRESETS, load_image_benchmark, load_tabular_benchmark

__all__ = [
    "Dataset",
    "ArrayDataset",
    "DataLoader",
    "SyntheticImageConfig",
    "make_image_dataset",
    "TabularConfig",
    "make_tabular_dataset",
    "TABULAR_PRESETS",
    "class_incremental_split",
    "TaskSequence",
    "Task",
    "IMAGE_PRESETS",
    "load_image_benchmark",
    "load_tabular_benchmark",
]
