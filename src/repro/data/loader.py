"""Mini-batch iteration with seeded shuffling."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import fallback_rng


class DataLoader:
    """Iterates an :class:`ArrayDataset` in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Mini-batch size; the final short batch is kept unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle at the start of each iteration using ``rng``.
    rng:
        Explicit generator — loaders never touch global numpy state.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, shuffle: bool = True,
                 drop_last: bool = False, rng: np.random.Generator | None = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or fallback_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = n - n % self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]
