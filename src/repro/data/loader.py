"""Mini-batch iteration with seeded shuffling."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import fallback_rng


class DataLoader:
    """Iterates an :class:`ArrayDataset` in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Mini-batch size; the final short batch is kept unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle at the start of each iteration.
    rng:
        Explicit generator — loaders never touch global numpy state.
        Stateful: each iteration consumes a draw, so the order depends on
        everything else that shared the generator first.
    seed:
        Stateless alternative to ``rng`` (takes precedence when set): the
        shuffle order is a pure function of ``(seed, epoch)`` — see
        :meth:`set_epoch` — and of nothing else.  This is what the sharded
        training regime requires: any process can reproduce the exact
        iteration order from the two integers alone, so iteration can
        never drift with worker count or with unrelated RNG consumption.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, shuffle: bool = True,
                 drop_last: bool = False, rng: np.random.Generator | None = None,
                 seed: int | None = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if seed is not None and seed < 0:
            raise ValueError("seed must be a non-negative integer")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or fallback_rng()
        self.seed = seed
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Select the epoch whose (seed-keyed) shuffle order to produce.

        Only meaningful with ``seed``; epoch ``e`` always yields the same
        permutation, whatever was iterated (or drawn from any generator)
        before.
        """
        self._epoch = int(epoch)

    def _order(self, n: int) -> np.ndarray:
        if not self.shuffle:
            return np.arange(n)
        if self.seed is not None:
            return np.random.default_rng((self.seed, self._epoch)).permutation(n)
        return self.rng.permutation(n)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._order(n)
        stop = n - n % self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset.x[idx], self.dataset.y[idx]
