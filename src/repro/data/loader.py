"""Mini-batch iteration with seeded shuffling and fault-tolerant fetch.

Batch materialization is an I/O boundary (``dataset.x`` may be a memmap
over cold storage), so each fetch runs through a bounded-retry loop:
transient read errors are retried with exponential backoff, persistent
ones propagate to the trainer's loader-fault guardrail.  The
``data.loader.batch`` fault-injection site sits inside the retry loop —
a no-op unless a :class:`repro.faults.FaultPlan` is armed.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.faults import plane as _faults
from repro.utils.rng import fallback_rng

#: Bounded retry of transient batch-fetch faults.
FETCH_RETRIES = 3
_RETRY_BACKOFF = 0.005


class DataLoader:
    """Iterates an :class:`ArrayDataset` in shuffled mini-batches.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Mini-batch size; the final short batch is kept unless
        ``drop_last`` is set.
    shuffle:
        Reshuffle at the start of each iteration.
    rng:
        Explicit generator — loaders never touch global numpy state.
        Stateful: each iteration consumes a draw, so the order depends on
        everything else that shared the generator first.
    seed:
        Stateless alternative to ``rng`` (takes precedence when set): the
        shuffle order is a pure function of ``(seed, epoch)`` — see
        :meth:`set_epoch` — and of nothing else.  This is what the sharded
        training regime requires: any process can reproduce the exact
        iteration order from the two integers alone, so iteration can
        never drift with worker count or with unrelated RNG consumption.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, shuffle: bool = True,
                 drop_last: bool = False, rng: np.random.Generator | None = None,
                 seed: int | None = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if seed is not None and seed < 0:
            raise ValueError("seed must be a non-negative integer")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or fallback_rng()
        self.seed = seed
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Select the epoch whose (seed-keyed) shuffle order to produce.

        Only meaningful with ``seed``; epoch ``e`` always yields the same
        permutation, whatever was iterated (or drawn from any generator)
        before.
        """
        self._epoch = int(epoch)

    def _order(self, n: int) -> np.ndarray:
        if not self.shuffle:
            return np.arange(n)
        if self.seed is not None:
            return np.random.default_rng((self.seed, self._epoch)).permutation(n)
        return self.rng.permutation(n)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _fetch(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Materialize one batch, retrying transient read faults.

        A transient ``OSError`` (interrupted syscall, injected transient)
        is retried up to :data:`FETCH_RETRIES` times with exponential
        backoff; a persistent fault propagates so the trainer can treat
        the epoch as poisoned.
        """
        delay = _RETRY_BACKOFF
        for attempt in range(FETCH_RETRIES):
            try:
                if _faults.ARMED:
                    _faults.fault_point("data.loader.batch")
                return self.dataset.x[idx], self.dataset.y[idx]
            except OSError as exc:
                transient = isinstance(exc, (InterruptedError, BlockingIOError)) \
                    or bool(getattr(exc, "transient", False))
                if not transient or attempt == FETCH_RETRIES - 1:
                    raise
                time.sleep(delay)
                delay *= 2
        raise RuntimeError("unreachable")  # pragma: no cover

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._order(n)
        stop = n - n % self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self._fetch(idx)
