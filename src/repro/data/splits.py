"""Class-incremental task splitting (Sec. IV-A2 of the paper).

A benchmark dataset is divided into a sequence of *tasks*, each holding a
disjoint subset of classes: CIFAR-10 -> 5 tasks x 2 classes, CIFAR-100 and
Tiny-ImageNet -> 20 x 5, DomainNet-real -> 15 x 23, and the Fig. 7 variant
10 x 10.  The model sees tasks one at a time; after learning task ``i`` it is
evaluated on the test splits of tasks ``1..i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class Task:
    """One increment of the continual sequence."""

    task_id: int
    classes: tuple[int, ...]
    train: ArrayDataset
    test: ArrayDataset

    def __repr__(self) -> str:
        return f"Task({self.task_id}, classes={self.classes}, train={len(self.train)}, test={len(self.test)})"


@dataclass(frozen=True)
class TaskSequence:
    """An ordered list of tasks plus the merged sets for Multitask training."""

    tasks: tuple[Task, ...]
    name: str = "sequence"

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, index: int) -> Task:
        return self.tasks[index]

    @property
    def merged_train(self) -> ArrayDataset:
        return ArrayDataset.concatenate([t.train for t in self.tasks], name=self.name + "-all-train")

    @property
    def merged_test(self) -> ArrayDataset:
        return ArrayDataset.concatenate([t.test for t in self.tasks], name=self.name + "-all-test")


def class_incremental_split(train: ArrayDataset, test: ArrayDataset, n_tasks: int,
                            rng: np.random.Generator | None = None,
                            name: str | None = None) -> TaskSequence:
    """Partition classes into ``n_tasks`` disjoint, equally sized groups.

    Parameters
    ----------
    train, test:
        Full dataset splits; both must contain the same class set.
    n_tasks:
        Number of increments; must divide the class count.
    rng:
        Optional generator to shuffle the class-to-task assignment (the paper
        shuffles class order between seeds).  Without it, classes are
        assigned in sorted order.
    """
    classes = train.classes
    if not np.array_equal(classes, test.classes):
        raise ValueError("train and test must cover the same classes")
    if len(classes) % n_tasks:
        raise ValueError(f"{len(classes)} classes not divisible into {n_tasks} tasks")
    if rng is not None:
        classes = rng.permutation(classes)
    per_task = len(classes) // n_tasks

    tasks = []
    for task_id in range(n_tasks):
        chunk = tuple(int(c) for c in classes[task_id * per_task:(task_id + 1) * per_task])
        tasks.append(Task(
            task_id=task_id,
            classes=chunk,
            train=train.filter_classes(chunk, name=f"{train.name}-task{task_id}"),
            test=test.filter_classes(chunk, name=f"{test.name}-task{task_id}"),
        ))
    return TaskSequence(tuple(tasks), name=name or train.name)


def dataset_sequence(pairs: list[tuple[ArrayDataset, ArrayDataset]],
                     name: str = "dataset-sequence") -> TaskSequence:
    """Build a task sequence where each increment is a *whole dataset*.

    Used by the tabular experiment (Sec. IV-E): the five tables form a
    5-increment sequence.  Labels are re-offset per task so the KNN
    evaluator never confuses classes across datasets.
    """
    tasks = []
    offset = 0
    for task_id, (train, test) in enumerate(pairs):
        n_classes = len(train.classes)
        remap = {int(c): offset + i for i, c in enumerate(train.classes)}
        mapper = np.vectorize(remap.__getitem__)
        train_shifted = ArrayDataset(train.x, mapper(train.y), name=train.name)
        test_shifted = ArrayDataset(test.x, mapper(test.y), name=test.name)
        tasks.append(Task(
            task_id=task_id,
            classes=tuple(range(offset, offset + n_classes)),
            train=train_shifted,
            test=test_shifted,
        ))
        offset += n_classes
    return TaskSequence(tuple(tasks), name=name)
