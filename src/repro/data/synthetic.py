"""Seeded synthetic image datasets (the CIFAR/Tiny-ImageNet stand-ins).

Generative model
----------------
Each class ``c`` is defined by a *prototype*: a smooth random color field
plus a class-specific geometric figure (an oriented ellipse).  A sample from
class ``c`` is::

    x = clip(prototype_c + instance_field * intra_class_std + pixel_noise)

where ``instance_field`` is a fresh smooth field per sample.  The design
mirrors what continual-learning experiments need from CIFAR:

- classes are separable by *augmentation-invariant* statistics (the
  prototype's color distribution and coarse shape survive crops, flips and
  jitter; the instance noise does not), so contrastive learning genuinely
  improves a KNN evaluator over time;
- classes share the pixel space, so sequentially training on disjoint class
  subsets causes measurable representation drift — i.e. forgetting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class SyntheticImageConfig:
    """Parameters of the synthetic image generative model.

    Attributes
    ----------
    n_classes, train_per_class, test_per_class:
        Dataset shape.
    image_size, channels:
        Resolution (square) and color channels.
    intra_class_std:
        Strength of the per-sample smooth instance field; higher is harder.
    pixel_noise:
        iid pixel noise amplitude.
    seed:
        Root seed for all class prototypes and samples.
    name:
        Dataset name used in tables and logs.
    """

    n_classes: int = 10
    train_per_class: int = 100
    test_per_class: int = 40
    image_size: int = 8
    channels: int = 3
    intra_class_std: float = 0.15
    pixel_noise: float = 0.03
    seed: int = 0
    name: str = "synthetic-images"


def _smooth_field(rng: np.random.Generator, channels: int, size: int,
                  grid: int = 4, sigma: float = 1.0) -> np.ndarray:
    """Low-frequency random field: coarse iid grid, upsampled and blurred."""
    grid = min(grid, size)
    coarse = rng.normal(size=(channels, grid, grid))
    reps = int(np.ceil(size / grid))
    field = np.kron(coarse, np.ones((reps, reps)))[:, :size, :size]
    return ndimage.gaussian_filter(field, sigma=(0, sigma, sigma))


def _class_figure(rng: np.random.Generator, size: int) -> np.ndarray:
    """Oriented elliptical blob mask in [0, 1] — the class's 'shape'."""
    cy, cx = rng.uniform(0.3, 0.7, size=2) * size
    ry, rx = rng.uniform(0.15, 0.45, size=2) * size
    theta = rng.uniform(0, np.pi)
    yy, xx = np.mgrid[0:size, 0:size]
    y0, x0 = yy - cy, xx - cx
    yr = y0 * np.cos(theta) + x0 * np.sin(theta)
    xr = -y0 * np.sin(theta) + x0 * np.cos(theta)
    dist = (yr / ry) ** 2 + (xr / rx) ** 2
    return np.exp(-dist)


def _class_prototype(rng: np.random.Generator, channels: int, size: int) -> np.ndarray:
    """Prototype in [0, 1]: strong *luminance* structure plus a color accent.

    The luminance pattern (shared across channels) is what survives the
    paper's augmentation pipeline — grayscale averages channels and color
    jitter is an affine intensity map, but neither destroys spatial
    luminance structure.  A weaker per-channel color accent adds realism
    without carrying the class identity.
    """
    luminance = _smooth_field(rng, 1, size, grid=4, sigma=0.8)
    luminance = luminance / (np.abs(luminance).max() + 1e-8)
    figure = _class_figure(rng, size)
    figure_sign = rng.choice([-1.0, 1.0])
    pattern = 0.35 * luminance[0] + 0.45 * figure_sign * figure
    color = rng.uniform(-0.15, 0.15, size=(channels, 1, 1))
    return np.clip(0.5 + pattern[None] + color, 0.0, 1.0)


#: RNG namespace tag for domain-shift draws ("DOM"), so a domain's
#: transform can never collide with another consumer of the same seed.
_DOMAIN_TAG = 0x444F4D


def apply_domain_shift(x: np.ndarray, domain: int, strength: float = 0.5,
                       seed: int = 0) -> np.ndarray:
    """Deterministic nuisance transform defining domain ``domain``.

    A pure function of ``(domain, strength, seed)``: the same inputs give
    the same shifted arrays on every process.  Domain 0 is the identity —
    the reference domain — so a one-domain stream degenerates to the
    unshifted data.  The transforms change *style*, not content:

    - images ``(N, C, H, W)``: a per-domain smooth additive color field
      (the :func:`_smooth_field` generator the prototypes use) plus
      per-channel gains, clipped back to ``[0, 1]``;
    - tabular ``(N, F)``: a per-feature affine map (gain + offset).
    """
    x = np.asarray(x, dtype=np.float32)
    if domain < 0:
        raise ValueError("domain must be >= 0")
    if strength < 0:
        raise ValueError("strength must be >= 0")
    if domain == 0 or strength == 0 or len(x) == 0:
        return x.copy()
    rng = np.random.default_rng([seed, _DOMAIN_TAG, domain])
    if x.ndim == 4:
        _n, channels, height, width = x.shape
        if height != width:
            raise ValueError(f"images must be square, got {x.shape}")
        field = _smooth_field(rng, channels, height, grid=4, sigma=1.0)
        gain = 1.0 + 0.3 * strength * rng.uniform(-1.0, 1.0,
                                                  size=(channels, 1, 1))
        shifted = x * gain[None].astype(np.float32)
        shifted = shifted + (0.25 * strength * field)[None].astype(np.float32)
        return np.clip(shifted, 0.0, 1.0).astype(np.float32)
    if x.ndim == 2:
        n_features = x.shape[1]
        gain = 1.0 + 0.3 * strength * rng.uniform(-1.0, 1.0, size=n_features)
        offset = 0.25 * strength * rng.normal(size=n_features)
        return (x * gain + offset).astype(np.float32)
    raise ValueError(f"unsupported data shape {x.shape}")


def make_image_dataset(config: SyntheticImageConfig) -> tuple[ArrayDataset, ArrayDataset]:
    """Generate the (train, test) pair for ``config``.

    Returns
    -------
    (train, test):
        :class:`ArrayDataset` objects with x in [0, 1], shape (N, C, H, W).
    """
    root = np.random.default_rng(config.seed)
    class_seeds = root.integers(0, 2**31 - 1, size=config.n_classes)
    sample_rng = np.random.default_rng(root.integers(0, 2**31 - 1))

    prototypes = []
    for seed in class_seeds:
        class_rng = np.random.default_rng(seed)
        prototypes.append(_class_prototype(class_rng, config.channels, config.image_size))

    def draw(per_class: int) -> tuple[np.ndarray, np.ndarray]:
        xs, ys = [], []
        for label, proto in enumerate(prototypes):
            for _ in range(per_class):
                instance = _smooth_field(sample_rng, config.channels, config.image_size,
                                         grid=4, sigma=0.8)
                x = proto + config.intra_class_std * instance
                x = x + sample_rng.normal(scale=config.pixel_noise, size=x.shape)
                xs.append(np.clip(x, 0.0, 1.0))
                ys.append(label)
        return np.asarray(xs, dtype=np.float32), np.asarray(ys, dtype=np.int64)

    x_train, y_train = draw(config.train_per_class)
    x_test, y_test = draw(config.test_per_class)
    train = ArrayDataset(x_train, y_train, name=config.name + "-train")
    test = ArrayDataset(x_test, y_test, name=config.name + "-test")
    return train, test
