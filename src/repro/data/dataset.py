"""Dataset containers.

Datasets hold dense numpy arrays (``x``: samples, ``y``: integer labels).
Labels are carried through every dataset **for evaluation only** — the
training loop of every continual method in this library never reads them,
matching the unsupervised setting of Def. 2 in the paper.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np


class Dataset:
    """Abstract dataset: indexable collection of (x, y) pairs."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dense in-memory dataset.

    Parameters
    ----------
    x:
        Samples, shape (N, ...); images are (N, C, H, W) in [0, 1],
        tabular rows are (N, F).
    y:
        Integer labels, shape (N,).  Used exclusively by the KNN evaluator.
    name:
        Human-readable dataset name for logs and result tables.
    """

    def __init__(self, x: np.ndarray, y: np.ndarray, name: str = "dataset"):
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise ValueError(f"x and y length mismatch: {len(x)} vs {len(y)}")
        self.x = x
        self.y = y
        self.name = name

    def __len__(self) -> int:
        return len(self.x)

    def __getitem__(self, index) -> tuple[np.ndarray, np.ndarray]:
        return self.x[index], self.y[index]

    @property
    def classes(self) -> np.ndarray:
        return np.unique(self.y)

    def subset(self, indices: Sequence[int], name: str | None = None) -> "ArrayDataset":
        indices = np.asarray(indices)
        return ArrayDataset(self.x[indices], self.y[indices], name or self.name)

    def filter_classes(self, classes: Sequence[int], name: str | None = None) -> "ArrayDataset":
        mask = np.isin(self.y, np.asarray(classes))
        return ArrayDataset(self.x[mask], self.y[mask], name or self.name)

    @staticmethod
    def concatenate(datasets: Sequence["ArrayDataset"], name: str = "merged") -> "ArrayDataset":
        if not datasets:
            raise ValueError("cannot concatenate zero datasets")
        # Task-boundary dataset merging, not per-step replay work: the
        # call-graph link into the replay slice is CHA over-approximation
        # on the shared method name.
        x = np.concatenate([d.x for d in datasets], axis=0)  # repro-lint: disable=PERF002
        y = np.concatenate([d.y for d in datasets], axis=0)  # repro-lint: disable=PERF002
        return ArrayDataset(x, y, name)

    def __repr__(self) -> str:
        return f"ArrayDataset({self.name}, n={len(self)}, classes={len(self.classes)}, shape={self.x.shape[1:]})"
