"""Named benchmark presets mirroring Table II, with CPU-scale variants.

``load_image_benchmark`` returns a ready :class:`TaskSequence` for one of
the four image benchmarks; ``load_tabular_benchmark`` builds the 5-table
sequence of Sec. IV-E.  Each preset supports two scales:

- ``"ci"`` (default): reduced resolution / class count / sample count so a
  full continual run finishes in seconds on CPU;
- ``"paper"``: the shape reported in Table II (runnable, but intended for
  documentation — numpy on CPU cannot train it in reasonable time).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.splits import TaskSequence, class_incremental_split, dataset_sequence
from repro.data.synthetic import SyntheticImageConfig, make_image_dataset
from repro.data.tabular import TABULAR_PRESETS, TabularConfig, make_tabular_dataset


@dataclass(frozen=True)
class ImageBenchmark:
    """An image benchmark: a synthetic-data config plus its task split."""

    config: SyntheticImageConfig
    n_tasks: int


IMAGE_PRESETS: dict[str, dict[str, ImageBenchmark]] = {
    # Paper scale mirrors Table II; CI scale keeps the task structure
    # (classes per task, relative dataset difficulty) at CPU-feasible sizes.
    "cifar10-like": {
        "paper": ImageBenchmark(SyntheticImageConfig(
            n_classes=10, train_per_class=5000, test_per_class=1000,
            image_size=32, seed=10, name="cifar10-like"), n_tasks=5),
        "ci": ImageBenchmark(SyntheticImageConfig(
            n_classes=10, train_per_class=60, test_per_class=40,
            image_size=8, intra_class_std=0.32, pixel_noise=0.05,
            seed=10, name="cifar10-like"), n_tasks=5),
    },
    "cifar100-like": {
        "paper": ImageBenchmark(SyntheticImageConfig(
            n_classes=100, train_per_class=500, test_per_class=100,
            image_size=32, seed=20, name="cifar100-like"), n_tasks=20),
        "ci": ImageBenchmark(SyntheticImageConfig(
            n_classes=20, train_per_class=30, test_per_class=20,
            image_size=8, intra_class_std=0.20, seed=20, name="cifar100-like"), n_tasks=5),
    },
    "tiny-imagenet-like": {
        "paper": ImageBenchmark(SyntheticImageConfig(
            n_classes=100, train_per_class=500, test_per_class=100,
            image_size=64, seed=30, name="tiny-imagenet-like"), n_tasks=20),
        "ci": ImageBenchmark(SyntheticImageConfig(
            n_classes=20, train_per_class=30, test_per_class=20,
            image_size=12, intra_class_std=0.22, seed=30, name="tiny-imagenet-like"), n_tasks=5),
    },
    "domainnet-like": {
        "paper": ImageBenchmark(SyntheticImageConfig(
            n_classes=345, train_per_class=350, test_per_class=150,
            image_size=64, seed=40, name="domainnet-like"), n_tasks=15),
        "ci": ImageBenchmark(SyntheticImageConfig(
            n_classes=15, train_per_class=30, test_per_class=20,
            image_size=12, intra_class_std=0.25, seed=40, name="domainnet-like"), n_tasks=5),
    },
}


def load_image_benchmark(name: str, scale: str = "ci", n_tasks: int | None = None,
                         shuffle_classes: np.random.Generator | None = None) -> TaskSequence:
    """Build the class-incremental :class:`TaskSequence` for a named preset.

    Parameters
    ----------
    name:
        One of ``IMAGE_PRESETS``.
    scale:
        ``"ci"`` or ``"paper"``.
    n_tasks:
        Override the preset's task count (used by the Fig. 7 re-split
        experiment).
    shuffle_classes:
        Optional rng to randomize the class-to-task assignment.
    """
    try:
        preset = IMAGE_PRESETS[name][scale]
    except KeyError as exc:
        raise KeyError(f"unknown image benchmark {name!r} at scale {scale!r}; "
                       f"available: {sorted(IMAGE_PRESETS)} x ['ci', 'paper']") from exc
    train, test = make_image_dataset(preset.config)
    return class_incremental_split(train, test, n_tasks or preset.n_tasks,
                                   rng=shuffle_classes, name=name)


def load_tabular_benchmark(scale: str = "ci", seed: int = 0) -> TaskSequence:
    """Build the 5-increment tabular sequence of Sec. IV-E.

    The paper handles heterogeneous feature widths with a data-specific first
    encoder layer; here all tables are zero-padded to the widest feature
    count, which equally unifies the input space (documented in DESIGN.md).
    ``scale="ci"`` shrinks row counts ~50x while preserving each table's
    relative size and positive rate.
    """
    factor = 0.02 if scale == "ci" else 1.0
    pairs = []
    configs = [replace(cfg, size=max(80, int(cfg.size * factor)), seed=cfg.seed + seed)
               for cfg in TABULAR_PRESETS.values()]
    max_features = max(cfg.n_features for cfg in configs)
    for cfg in configs:
        train, test = make_tabular_dataset(cfg)
        pad = max_features - cfg.n_features
        if pad:
            train = ArrayDataset(np.pad(train.x, ((0, 0), (0, pad))), train.y, train.name)
            test = ArrayDataset(np.pad(test.x, ((0, 0), (0, pad))), test.y, test.name)
        pairs.append((train, test))
    return dataset_sequence(pairs, name="tabular-5")
