"""Seeded synthetic tabular datasets (the Table II tabular stand-ins).

The paper's five tabular sets (Bank, Shoppers, Income, BlastChar, Shrutime)
are binary person-characteristic classification tables with heterogeneous
feature counts and class imbalance.  The generator here matches each set's
published shape — row count, feature count, positive rate (Table II) — with
a latent-factor model: a subset of *informative* features is shifted by a
class-dependent mean, the rest is noise, and a random linear mixing makes
features correlated like real tabular data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ArrayDataset


@dataclass(frozen=True)
class TabularConfig:
    """Shape and difficulty of a synthetic binary-classification table."""

    name: str
    size: int
    n_features: int
    positive_rate: float
    informative_fraction: float = 0.6
    class_separation: float = 1.6
    seed: int = 0
    test_fraction: float = 0.2


# Shapes from Table II of the paper. ``scale`` in ``load_tabular_benchmark``
# shrinks ``size`` for CPU runs while preserving these ratios.
TABULAR_PRESETS: dict[str, TabularConfig] = {
    "bank": TabularConfig("bank", 45211, 16, 0.1170, seed=101),
    "shoppers": TabularConfig("shoppers", 12330, 17, 0.1547, seed=102),
    "income": TabularConfig("income", 32561, 14, 0.2408, seed=103),
    "blastchar": TabularConfig("blastchar", 7043, 20, 0.2654, seed=104),
    "shrutime": TabularConfig("shrutime", 10000, 10, 0.2037, seed=105),
}


def make_tabular_dataset(config: TabularConfig) -> tuple[ArrayDataset, ArrayDataset]:
    """Generate the (train, test) pair for ``config``.

    The 80/20 split follows Sec. IV-A1 ("randomly split 20% of each data set
    as their test set").
    """
    rng = np.random.default_rng(config.seed)
    n = config.size
    f = config.n_features
    n_informative = max(1, int(round(config.informative_fraction * f)))

    y = (rng.uniform(size=n) < config.positive_rate).astype(np.int64)
    # class-dependent shift on informative features only
    direction = rng.normal(size=n_informative)
    direction /= np.linalg.norm(direction)
    x = rng.normal(size=(n, f))
    x[:, :n_informative] += np.where(y[:, None] == 1, 1.0, -1.0) * (
        0.5 * config.class_separation * direction[None, :])
    # correlate features via random mixing, then standardize
    mixing = rng.normal(size=(f, f)) / np.sqrt(f) + np.eye(f)
    x = x @ mixing
    x = (x - x.mean(axis=0)) / (x.std(axis=0) + 1e-8)

    order = rng.permutation(n)
    n_test = int(round(config.test_fraction * n))
    test_idx, train_idx = order[:n_test], order[n_test:]
    train = ArrayDataset(x[train_idx].astype(np.float32), y[train_idx], name=config.name + "-train")
    test = ArrayDataset(x[test_idx].astype(np.float32), y[test_idx], name=config.name + "-test")
    return train, test
