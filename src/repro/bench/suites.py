"""Benchmark suites: fused-vs-unfused op microbenches + the SSL step bench.

Two layers of measurement:

* **Op microbenches** — each fused kernel (linear, linear+ReLU,
  L2-normalize, cosine rows, normalized MSE, batch norm) timed
  forward+backward with fusion on and off (:func:`repro.tensor.no_fusion`).
  These localise *where* a regression lives.
* **SSL training-step bench** — one full SimCLR-style optimisation step
  (SimSiam objective, MLP backbone, batch 128, SGD momentum), the unit the
  ISSUE acceptance bar is written against.  The pre-refactor engine
  (closure-taped, no fusion, fresh grad buffers every step) measured
  ``PRE_REFACTOR_REFERENCE`` on this exact configuration; the current
  engine must stay >= 1.5x faster (see BENCH_pr3.json).

``smoke=True`` shrinks shapes and repeats so the whole suite runs in well
under a second — that mode exists for the tier-1 test, not for numbers
worth reading.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import BenchTiming, speedup, time_callable
from repro.tensor import Tensor, no_fusion, ops

# Measured on the pre-registry engine (closure-based tape, unfused kernels,
# per-step grad allocation) with build_ssl_step()'s exact configuration.
PRE_REFACTOR_REFERENCE = {"median_s": 0.00974, "best_s": 0.00727, "mean_s": 0.01052}

#: Acceptance bar from ISSUE.md: median SSL-step time must beat the
#: pre-refactor reference by at least this factor.
REQUIRED_SPEEDUP = 1.5

#: PR 4 acceptance bar: median tape-replayed SSL-step time must beat the
#: eager-dispatch step by at least this factor (full shapes only).
TAPE_REQUIRED_SPEEDUP = 1.3

#: PR 5 acceptance bar: the 3-worker sharded step must beat the serial
#: sharded step by at least this factor.  Only asserted when the host
#: actually has that many cores to run on — on fewer cores the workers
#: time-slice one CPU and a parallel speedup is physically impossible, so
#: the bench reports honest numbers without the bar (mirroring how smoke
#: mode omits the full-shape bars).
SHARDING_REQUIRED_SPEEDUP = 1.5

#: Worker count the sharding acceptance bar is measured at.
SHARDING_BENCH_WORKERS = 3

#: PR 9 acceptance bar: the closed-form ridge probe must beat the SGD
#: linear probe by at least this factor per accuracy-matrix cell (full
#: shapes only), while agreeing within PROBE_MAX_ACCURACY_DELTA.
RIDGE_REQUIRED_SPEEDUP = 10.0

#: Maximum |ridge accuracy − SGD probe accuracy| on the bench workload.
PROBE_MAX_ACCURACY_DELTA = 0.01

#: Worker counts the statistics shard-merge identity is checked across.
PROBE_BENCH_WORKER_COUNTS = (1, 2, 3)


# ----------------------------------------------------------------------
# Op microbenches
# ----------------------------------------------------------------------
def _bench_pair(make_step, *, warmup: int, repeats: int) -> dict:
    """Time ``make_step()`` with fusion enabled and disabled."""
    fused = time_callable(make_step, warmup=warmup, repeats=repeats)
    with no_fusion():
        unfused = time_callable(make_step, warmup=warmup, repeats=repeats)
    return {"fused": fused.to_dict(), "unfused": unfused.to_dict(),
            "speedup": speedup(unfused, fused)}


def op_microbenches(*, smoke: bool = False, repeats: int | None = None) -> dict:
    """Forward+backward timings for every fused kernel, fused vs composed."""
    n, d = (16, 8) if smoke else (256, 128)
    warmup = 1 if smoke else 5
    repeats = repeats or (3 if smoke else 30)
    rng = np.random.default_rng(0)
    x_np = rng.normal(size=(n, d)).astype(np.float32)
    y_np = rng.normal(size=(n, d)).astype(np.float32)
    w_np = (rng.normal(size=(d, d)) / np.sqrt(d)).astype(np.float32)
    b_np = np.zeros(d, dtype=np.float32)

    def linear_step():
        x = Tensor(x_np, requires_grad=True)
        w = Tensor(w_np, requires_grad=True)
        b = Tensor(b_np, requires_grad=True)
        ops.linear(x, w, b).sum().backward()

    def linear_relu_step():
        x = Tensor(x_np, requires_grad=True)
        w = Tensor(w_np, requires_grad=True)
        b = Tensor(b_np, requires_grad=True)
        ops.linear_relu(x, w, b).sum().backward()

    def l2_normalize_step():
        x = Tensor(x_np, requires_grad=True)
        ops.l2_normalize(x, axis=1).sum().backward()

    def cosine_step():
        a = Tensor(x_np, requires_grad=True)
        b = Tensor(y_np, requires_grad=True)
        ops.cosine_similarity(a, b, axis=1).sum().backward()

    def normalized_mse_step():
        p = Tensor(x_np, requires_grad=True)
        t = Tensor(y_np)
        ops.normalized_mse(p, t, axis=1).sum().backward()

    def batch_norm_step():
        x = Tensor(x_np, requires_grad=True)
        x_hat, _mean, _var = ops.batch_norm_train(x, (0,), 1e-5)
        x_hat.sum().backward()

    steps = {
        "linear": linear_step,
        "linear_relu": linear_relu_step,
        "l2_normalize": l2_normalize_step,
        "cosine_rows": cosine_step,
        "normalized_mse": normalized_mse_step,
        "batch_norm": batch_norm_step,
    }
    return {name: _bench_pair(fn, warmup=warmup, repeats=repeats)
            for name, fn in steps.items()}


# ----------------------------------------------------------------------
# SSL training-step bench
# ----------------------------------------------------------------------
def build_ssl_step(*, smoke: bool = False, seed: int = 0, use_tape: bool = False,
                   shapes: tuple[int, int, int] | None = None):
    """Build the SimSiam+MLP training step the acceptance bar measures.

    Returns ``(step, batches)`` where ``step()`` runs zero_grad -> loss ->
    backward -> optimizer step on a fixed pair of augmented views.  With
    ``use_tape`` the step runs through :class:`repro.ssl.SSLTrainStep`'s
    tape: captured on the first call, replayed afterwards.  ``shapes``
    overrides the default ``(batch, input_dim, hidden)`` (the memory
    bench uses larger buffers so allocations are mmap-sized and visible
    in resident-set numbers).
    """
    from repro.optim import SGD
    from repro.ssl.encoder import Encoder, build_backbone
    from repro.ssl.simsiam import SimSiam
    from repro.ssl.step import SSLTrainStep

    batch, input_dim, hidden = shapes or ((8, 8, 16) if smoke else (128, 32, 64))
    rng = np.random.default_rng(seed)
    backbone = build_backbone("mlp", rng, input_dim=input_dim, hidden_dim=hidden)
    encoder = Encoder(backbone, representation_dim=hidden, rng=rng)
    objective = SimSiam(encoder, rng=rng)
    optimizer = SGD(objective.parameters(), lr=0.03, momentum=0.9)
    train_step = SSLTrainStep(objective, optimizer, use_tape=use_tape)

    data_rng = np.random.default_rng(42)
    x = data_rng.normal(size=(batch, input_dim)).astype(np.float32)
    v1 = x + data_rng.normal(scale=0.1, size=x.shape).astype(np.float32)
    v2 = x + data_rng.normal(scale=0.1, size=x.shape).astype(np.float32)

    def step() -> float:
        return train_step(v1, v2)

    return step, (v1, v2)


def ssl_step_bench(*, smoke: bool = False, repeats: int | None = None) -> dict:
    """Time the full SSL training step, fused vs unfused engine paths."""
    warmup = 1 if smoke else 5
    repeats = repeats or (3 if smoke else 30)

    step, _ = build_ssl_step(smoke=smoke)
    fused = time_callable(step, warmup=warmup, repeats=repeats)

    step_unfused, _ = build_ssl_step(smoke=smoke)
    with no_fusion():
        unfused = time_callable(step_unfused, warmup=warmup, repeats=repeats)

    result = {
        "config": {"smoke": smoke, "batch": 8 if smoke else 128,
                   "backbone": "mlp", "objective": "simsiam",
                   "optimizer": "sgd(lr=0.03, momentum=0.9)",
                   "repeats": repeats},
        "fused": fused.to_dict(),
        "unfused": unfused.to_dict(),
        "speedup_fused_vs_unfused": speedup(unfused, fused),
    }
    if not smoke:
        # The reference was measured at full shapes; comparing a smoke run
        # against it would be meaningless.
        result["pre_refactor_reference"] = dict(PRE_REFACTOR_REFERENCE)
        result["speedup_vs_pre_refactor"] = speedup(PRE_REFACTOR_REFERENCE, fused)
        result["required_speedup"] = REQUIRED_SPEEDUP
    return result


def tape_replay_bench(*, smoke: bool = False, repeats: int | None = None) -> dict:
    """Time the SSL step eager vs tape-replayed (PR 4's acceptance bar).

    Both variants run the identical model/optimizer configuration; the
    taped one captures during warmup and replays the recorded program for
    every timed repetition.
    """
    warmup = 1 if smoke else 5
    repeats = repeats or (3 if smoke else 30)

    step_eager, _ = build_ssl_step(smoke=smoke, use_tape=False)
    eager = time_callable(step_eager, warmup=warmup, repeats=repeats)

    step_taped, _ = build_ssl_step(smoke=smoke, use_tape=True)
    replay = time_callable(step_taped, warmup=warmup, repeats=repeats)

    result = {
        "config": {"smoke": smoke, "batch": 8 if smoke else 128,
                   "backbone": "mlp", "objective": "simsiam",
                   "optimizer": "sgd(lr=0.03, momentum=0.9)",
                   "repeats": repeats},
        "eager": eager.to_dict(),
        "replay": replay.to_dict(),
        "speedup_replay_vs_eager": speedup(eager, replay),
    }
    if not smoke:
        # Smoke shapes are dominated by fixed Python overhead; the bar is
        # only meaningful at full shapes.
        result["required_speedup"] = TAPE_REQUIRED_SPEEDUP
    return result


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sharding_bench(*, smoke: bool = False, repeats: int | None = None) -> dict:
    """Time the sharded training step: serial vs multiprocess workers.

    Both variants execute the *identical* shard program (same micro-shard
    plan, same tree reduction — that is the regime's bit-for-bit
    contract), so the measurement isolates exactly what worker processes
    buy: shard forward+backwards overlapping across cores, against the
    broadcast/IPC cost of shipping state each step.  The 1.5x acceptance
    bar applies at ``SHARDING_BENCH_WORKERS`` workers and is only included
    when the host has at least that many usable cores (see ``cpus``).
    """
    from repro.continual.config import ContinualConfig, build_objective
    from repro.parallel import N_SHARDS, ShardedStep

    batch, features, dim = (12, 8, 16) if smoke else (240, 96, 128)
    warmup = 1 if smoke else 5
    repeats = repeats or (3 if smoke else 30)
    config = ContinualConfig(batch_size=batch, representation_dim=dim,
                             memory_budget=0, replay_batch_size=0,
                             noise_neighbors=0)
    data_rng = np.random.default_rng(42)
    view1 = data_rng.normal(size=(batch, features)).astype(np.float32)
    view2 = data_rng.normal(size=(batch, features)).astype(np.float32)

    def timed(workers: int):
        rng = np.random.default_rng(0)
        objective = build_objective(config, (features,), rng)
        objective.train()
        with ShardedStep(objective, config, (features,),
                         workers=workers) as sharded:
            def step() -> None:
                objective.zero_grad(set_to_none=False)
                sharded.loss_backward(view1, view2)

            return time_callable(step, warmup=warmup, repeats=repeats)

    serial = timed(1)
    pooled = timed(SHARDING_BENCH_WORKERS)

    cpus = _available_cpus()
    result = {
        "config": {"smoke": smoke, "batch": batch, "features": features,
                   "n_shards": N_SHARDS, "workers": SHARDING_BENCH_WORKERS,
                   "backbone": "mlp", "objective": "simsiam",
                   "repeats": repeats},
        "cpus": cpus,
        "serial": serial.to_dict(),
        "sharded": pooled.to_dict(),
        "speedup_sharded_vs_serial": speedup(serial, pooled),
    }
    if smoke:
        pass  # smoke shapes are all fixed overhead; no bar, as elsewhere
    elif cpus >= SHARDING_BENCH_WORKERS:
        result["required_speedup"] = SHARDING_REQUIRED_SPEEDUP
    else:
        result["required_speedup_omitted"] = (
            f"host exposes {cpus} usable CPU(s); the "
            f"{SHARDING_REQUIRED_SPEEDUP}x bar needs "
            f">= {SHARDING_BENCH_WORKERS} cores to be physically reachable")
    return result


# ----------------------------------------------------------------------
# Eval-probe bench (PR 9)
# ----------------------------------------------------------------------
def _probe_workload(smoke: bool):
    """Synthetic frozen representations with partial class overlap.

    Gaussian class blobs whose spread leaves a few percent of samples
    ambiguous — both probes land in the same accuracy band (the ±1pt
    agreement bar is meaningful) without either saturating at 100%.
    """
    n_train, n_test, dim, n_classes = (60, 30, 8, 3) if smoke else (1200, 600, 64, 10)
    rng = np.random.default_rng(7)
    centers = rng.normal(scale=0.6, size=(n_classes, dim))

    def sample(count):
        labels = rng.integers(0, n_classes, size=count)
        reps = centers[labels] + rng.normal(size=(count, dim))
        return reps.astype(np.float32), labels

    return sample(n_train), sample(n_test)


def eval_probe_bench(*, smoke: bool = False, repeats: int | None = None) -> dict:
    """Time one accuracy-matrix cell: SGD linear probe vs closed-form ridge.

    Measures exactly what the evaluation protocol pays per cell — construct
    a probe, ``fit`` on the train representations, ``accuracy`` on the test
    split — for the 50-epoch Adam :class:`~repro.eval.linear_probe.LinearProbe`
    and the streaming :class:`~repro.eval.ridge.RidgeProbe`.  Fewer default
    repeats than the microbenches because one SGD fit is itself a
    thousand-step optimization.

    Also checks the statistics shard-merge contract end-to-end: the train
    pass is split into blocks, the blocks are partitioned across
    ``PROBE_BENCH_WORKER_COUNTS`` simulated workers, and every worker
    count's merged ``(A, B)`` must be byte-identical (reported as digests).
    """
    import hashlib

    from repro.eval.linear_probe import LinearProbe
    from repro.eval.ridge import RidgeProbe, RidgeStatistics
    from repro.utils.rng import fallback_rng

    (train_x, train_y), (test_x, test_y) = _probe_workload(smoke)
    warmup = 0 if smoke else 1
    repeats = repeats or (2 if smoke else 5)

    def linear_cell() -> float:
        probe = LinearProbe(rng=fallback_rng(11)).fit(train_x, train_y)
        return probe.accuracy(test_x, test_y)

    def ridge_cell() -> float:
        return RidgeProbe().fit(train_x, train_y).accuracy(test_x, test_y)

    linear_acc = linear_cell()
    ridge_acc = ridge_cell()
    linear_timing = time_callable(linear_cell, warmup=warmup, repeats=repeats)
    ridge_timing = time_callable(ridge_cell, warmup=warmup, repeats=repeats)

    # Shard-merge identity across worker counts: same blocks, different
    # partitions, merged in reverse order to exercise order-independence.
    block_size = 16 if smoke else 128
    classes = np.unique(train_y)
    blocks = [(train_x[s:s + block_size], train_y[s:s + block_size])
              for s in range(0, len(train_x), block_size)]
    digests = {}
    for workers in PROBE_BENCH_WORKER_COUNTS:
        bounds = np.linspace(0, len(blocks), workers + 1).astype(int)
        partials = []
        for start, stop in zip(bounds, bounds[1:]):
            if start == stop:
                continue
            shard = RidgeStatistics(train_x.shape[1], classes,
                                    start_block=int(start))
            for block_x, block_y in blocks[start:stop]:
                shard.update(block_x, block_y)
            partials.append(shard)
        merged = partials[-1]
        for shard in reversed(partials[:-1]):
            merged = merged.merge(shard)
        a, b = merged.reduced()
        digests[str(workers)] = hashlib.sha256(
            a.tobytes() + b.tobytes()).hexdigest()
    identical = len(set(digests.values())) == 1

    result = {
        "config": {"smoke": smoke, "n_train": len(train_x),
                   "n_test": len(test_x), "dim": train_x.shape[1],
                   "n_classes": int(classes.size), "block_size": block_size,
                   "linear_probe": "adam(epochs=50, lr=1e-2)",
                   "repeats": repeats},
        "linear": linear_timing.to_dict(),
        "ridge": ridge_timing.to_dict(),
        "speedup_ridge_vs_linear": speedup(linear_timing, ridge_timing),
        "linear_accuracy": linear_acc,
        "ridge_accuracy": ridge_acc,
        "accuracy_delta": abs(ridge_acc - linear_acc),
        "shard_merge": {"worker_counts": list(PROBE_BENCH_WORKER_COUNTS),
                        "digests": digests,
                        "identical_across_worker_counts": identical},
    }
    if not smoke:
        # Smoke shapes are fixed Python overhead; the bars are full-shape
        # only, like every other suite.
        result["required_speedup"] = RIDGE_REQUIRED_SPEEDUP
        result["max_accuracy_delta"] = PROBE_MAX_ACCURACY_DELTA
    return result


# ----------------------------------------------------------------------
# Memory bench (PR 8)
# ----------------------------------------------------------------------
#: Steps measured (after warmup) by each memory-bench variant.
MEMORY_BENCH_STEPS = {"smoke": 5, "full": 30}

#: (batch, input_dim, hidden) for the full-mode memory bench.  Larger
#: than the timing bench on purpose: per-step transients must clear the
#: allocator's mmap threshold so resident-set numbers can see them.
MEMORY_BENCH_SHAPES = (512, 128, 256)


def _malloc_trim() -> None:
    """Return freed heap pages to the OS (glibc); no-op elsewhere.

    Called once after warmup so each variant's sampled RSS reflects its
    *steady-state* live set rather than pages the warmup (eager capture +
    observation pass) dirtied and the allocator never returned.
    """
    try:
        import ctypes

        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except Exception:  # pragma: no cover - non-glibc platforms
        pass


def _sampled_rss_kb() -> int:
    """Current (not high-water) resident set, in kB; 0 off-Linux."""
    import os

    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE") // 1024
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0


def _memory_probe(variant: str, smoke: bool, steps: int) -> dict:
    """Run ``steps`` SSL steps under one allocation regime; report memory.

    Meant to run in a *fresh* subprocess (one per variant) so the numbers
    are attributable to the variant.  ``tracemalloc`` tracks numpy buffer
    allocations too (numpy registers its data allocations with the
    tracemalloc domain), so the traced peak measures exactly the
    transient allocations of the measured steps: a warm planned replay
    should add almost nothing.

    Two resident-set numbers, because they answer different questions:
    ``ru_maxrss_kb`` is the process-lifetime high-water mark — the eager
    warm-up capture step sets it for every variant, so it mostly reflects
    the *capture* footprint; ``peak_rss_kb`` samples current RSS across
    the measured steady-state window, which is where planned replay's
    slab sharing shows (freed transients are mmap-returned at these
    shapes, so current RSS tracks the live set).
    """
    import contextlib
    import resource
    import tracemalloc

    from repro.tensor import memplan

    if variant not in ("eager", "unplanned", "planned"):
        raise ValueError(f"unknown memory-bench variant {variant!r}")
    guard = memplan.no_planning() if variant == "unplanned" \
        else contextlib.nullcontext()
    shapes = None if smoke else MEMORY_BENCH_SHAPES
    with guard:
        step, _ = build_ssl_step(smoke=smoke, use_tape=variant != "eager",
                                 shapes=shapes)
        # Warmup covers capture (1), the observation replay (2) and the
        # first planned replay (3); from step 4 on the regime is steady.
        for _ in range(3):
            step()
        _malloc_trim()
        before = memplan.stats_snapshot()
        peak_rss = _sampled_rss_kb()
        tracemalloc.start()
        for _ in range(steps):
            step()
            peak_rss = max(peak_rss, _sampled_rss_kb())
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        after = memplan.stats_snapshot()
    delta = {key: after[key] - before[key] for key in after}
    # Planner-visible allocator traffic: fresh op-output arrays on the
    # replay path plus scratch-cache misses plus helper allocations.
    # (Eager dispatch allocates outside the planner's accounting, so this
    # counter only compares like-for-like between the two tape regimes;
    # the tracemalloc peak covers all three.)
    alloc_calls = (delta["fallback_outputs"] + delta["cache_misses"]
                   + delta["helper_allocs"])
    return {
        "variant": variant,
        "steps": steps,
        "tracemalloc_peak_kb": round(peak / 1024.0, 1),
        "peak_rss_kb": peak_rss,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "planner_alloc_calls": alloc_calls,
        "planner_alloc_calls_per_step": round(alloc_calls / steps, 2),
        "stats_delta": delta,
    }


def memory_bench(*, smoke: bool = False, steps: int | None = None) -> dict:
    """Allocator-call counts and peak memory: eager vs unplanned vs planned.

    Each variant runs in its own subprocess so ``ru_maxrss`` is a clean
    per-variant number.  ``unplanned`` replays the tape with the memory
    planner disabled (the pre-PR-8 allocation regime: one fresh array per
    op output per step); ``planned`` replays against the arena.
    """
    import json
    import os
    import subprocess
    import sys

    import repro

    steps = steps or MEMORY_BENCH_STEPS["smoke" if smoke else "full"]
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    driver = ("import sys, json; from repro.bench.suites import _memory_probe; "
              "print(json.dumps(_memory_probe(sys.argv[1], sys.argv[2] == '1', "
              "int(sys.argv[3]))))")
    results = {}
    for variant in ("eager", "unplanned", "planned"):
        proc = subprocess.run(
            [sys.executable, "-c", driver, variant,
             "1" if smoke else "0", str(steps)],
            capture_output=True, text=True, env=env, timeout=600, check=False)
        if proc.returncode != 0:
            raise RuntimeError(f"memory bench variant {variant!r} failed:\n"
                               f"{proc.stderr[-2000:]}")
        results[variant] = json.loads(proc.stdout.strip().splitlines()[-1])

    planned, unplanned = results["planned"], results["unplanned"]

    def _reduction(metric: str) -> float:
        base = unplanned[metric]
        return round(1.0 - planned[metric] / base, 4) if base else 0.0

    return {
        "config": {"smoke": smoke, "steps": steps, "backbone": "mlp",
                   "objective": "simsiam"},
        "variants": results,
        "planned_vs_unplanned": {
            "alloc_calls_reduction": _reduction("planner_alloc_calls"),
            "tracemalloc_peak_reduction": _reduction("tracemalloc_peak_kb"),
            "peak_rss_reduction": _reduction("peak_rss_kb"),
            "ru_maxrss_reduction": _reduction("ru_maxrss_kb"),
        },
    }


def run_suite(*, smoke: bool = False, repeats: int | None = None) -> dict:
    """Run every bench; return one JSON-serializable report."""
    return {
        "suite": "repro-bench-pr9",
        "mode": "smoke" if smoke else "full",
        "ops": op_microbenches(smoke=smoke, repeats=repeats),
        "ssl_step": ssl_step_bench(smoke=smoke, repeats=repeats),
        "tape": tape_replay_bench(smoke=smoke, repeats=repeats),
        "sharding": sharding_bench(smoke=smoke, repeats=repeats),
        "memory": memory_bench(smoke=smoke),
        "eval_probe": eval_probe_bench(smoke=smoke, repeats=repeats),
    }


def format_report(report: dict) -> str:
    """Render a suite report as an aligned plain-text table."""
    from repro.utils import format_table

    rows = []
    for name, entry in report["ops"].items():
        rows.append([name,
                     f"{entry['fused']['median_s'] * 1e6:.1f}",
                     f"{entry['unfused']['median_s'] * 1e6:.1f}",
                     f"{entry['speedup']:.2f}x"])
    lines = [format_table(["op (fwd+bwd)", "fused us", "unfused us", "speedup"],
                          rows, title=f"op microbenches ({report['mode']})")]
    ssl = report["ssl_step"]
    lines.append("")
    lines.append(f"SSL step (simsiam/mlp, batch {ssl['config']['batch']}): "
                 f"fused {ssl['fused']['median_s'] * 1e3:.2f} ms, "
                 f"unfused {ssl['unfused']['median_s'] * 1e3:.2f} ms "
                 f"({ssl['speedup_fused_vs_unfused']:.2f}x)")
    if "speedup_vs_pre_refactor" in ssl:
        verdict = ("PASS" if ssl["speedup_vs_pre_refactor"] >= ssl["required_speedup"]
                   else "FAIL")
        lines.append(f"vs pre-refactor engine "
                     f"({ssl['pre_refactor_reference']['median_s'] * 1e3:.2f} ms): "
                     f"{ssl['speedup_vs_pre_refactor']:.2f}x "
                     f"(required >= {ssl['required_speedup']:.1f}x) [{verdict}]")
    tape = report.get("tape")
    if tape is not None:
        lines.append("")
        lines.append(f"tape replay (same step): "
                     f"eager {tape['eager']['median_s'] * 1e3:.2f} ms, "
                     f"replayed {tape['replay']['median_s'] * 1e3:.2f} ms "
                     f"({tape['speedup_replay_vs_eager']:.2f}x)")
        if "required_speedup" in tape:
            verdict = ("PASS" if tape["speedup_replay_vs_eager"] >= tape["required_speedup"]
                       else "FAIL")
            lines.append(f"tape acceptance: required >= "
                         f"{tape['required_speedup']:.1f}x [{verdict}]")
    sharding = report.get("sharding")
    if sharding is not None:
        cfg = sharding["config"]
        lines.append("")
        lines.append(f"sharded step (batch {cfg['batch']}, "
                     f"{cfg['n_shards']} shards, {sharding['cpus']} cpu(s)): "
                     f"serial {sharding['serial']['median_s'] * 1e3:.2f} ms, "
                     f"{cfg['workers']} workers "
                     f"{sharding['sharded']['median_s'] * 1e3:.2f} ms "
                     f"({sharding['speedup_sharded_vs_serial']:.2f}x)")
        if "required_speedup" in sharding:
            verdict = ("PASS" if sharding["speedup_sharded_vs_serial"]
                       >= sharding["required_speedup"] else "FAIL")
            lines.append(f"sharding acceptance: required >= "
                         f"{sharding['required_speedup']:.1f}x [{verdict}]")
        elif "required_speedup_omitted" in sharding:
            lines.append(f"sharding acceptance: not applicable — "
                         f"{sharding['required_speedup_omitted']}")
    memory = report.get("memory")
    if memory is not None:
        lines.append("")
        rows = []
        for name, entry in memory["variants"].items():
            rows.append([name,
                         f"{entry['planner_alloc_calls_per_step']:.1f}",
                         f"{entry['tracemalloc_peak_kb']:.0f}",
                         f"{entry['peak_rss_kb']}",
                         f"{entry['ru_maxrss_kb']}"])
        lines.append(format_table(
            ["variant", "alloc calls/step", "traced peak kB",
             "steady RSS kB", "max RSS kB"],
            rows, title=f"memory ({memory['config']['steps']} steps, "
                        f"fresh process per variant)"))
        red = memory["planned_vs_unplanned"]
        lines.append(f"planned vs unplanned: allocator calls "
                     f"-{red['alloc_calls_reduction'] * 100:.1f}%, traced peak "
                     f"-{red['tracemalloc_peak_reduction'] * 100:.1f}%, steady "
                     f"RSS -{red['peak_rss_reduction'] * 100:.1f}%")
    probe = report.get("eval_probe")
    if probe is not None:
        cfg = probe["config"]
        lines.append("")
        lines.append(f"eval probe ({cfg['n_train']}x{cfg['dim']} reps, "
                     f"{cfg['n_classes']} classes): "
                     f"sgd-linear {probe['linear']['median_s'] * 1e3:.2f} ms, "
                     f"ridge {probe['ridge']['median_s'] * 1e3:.2f} ms "
                     f"({probe['speedup_ridge_vs_linear']:.1f}x); accuracy "
                     f"{probe['linear_accuracy']:.4f} vs "
                     f"{probe['ridge_accuracy']:.4f} "
                     f"(delta {probe['accuracy_delta']:.4f})")
        merge = probe["shard_merge"]
        merge_verdict = ("identical" if merge["identical_across_worker_counts"]
                         else "MISMATCH")
        lines.append(f"statistics shard-merge across workers "
                     f"{merge['worker_counts']}: {merge_verdict}")
        if "required_speedup" in probe:
            verdict = ("PASS" if probe["speedup_ridge_vs_linear"]
                       >= probe["required_speedup"]
                       and probe["accuracy_delta"] <= probe["max_accuracy_delta"]
                       and merge["identical_across_worker_counts"] else "FAIL")
            lines.append(f"probe acceptance: required >= "
                         f"{probe['required_speedup']:.0f}x, accuracy delta <= "
                         f"{probe['max_accuracy_delta']:.2f}, merge identical "
                         f"[{verdict}]")
    return "\n".join(lines)


__all__ = [
    "MEMORY_BENCH_STEPS",
    "PRE_REFACTOR_REFERENCE",
    "PROBE_BENCH_WORKER_COUNTS",
    "PROBE_MAX_ACCURACY_DELTA",
    "REQUIRED_SPEEDUP",
    "RIDGE_REQUIRED_SPEEDUP",
    "SHARDING_BENCH_WORKERS",
    "SHARDING_REQUIRED_SPEEDUP",
    "TAPE_REQUIRED_SPEEDUP",
    "BenchTiming",
    "build_ssl_step",
    "eval_probe_bench",
    "format_report",
    "memory_bench",
    "op_microbenches",
    "run_suite",
    "sharding_bench",
    "ssl_step_bench",
    "tape_replay_bench",
]
