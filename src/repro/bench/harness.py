"""Timing harness for the repro microbenchmarks.

Every benchmark in :mod:`repro.bench.suites` funnels through
:func:`time_callable`: a fixed number of warmup calls (JIT-free Python, but
the first calls populate allocator pools, branch caches, and the conv
col-buffer pool), then ``repeats`` timed calls with ``time.perf_counter``.
We report the **median** as the headline number — on a shared machine the
minimum is optimistic and the mean is skewed by scheduler noise — and keep
best/mean alongside for context.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class BenchTiming:
    """Summary statistics for one timed callable."""

    median_s: float
    best_s: float
    mean_s: float
    repeats: int

    def to_dict(self) -> dict:
        return {"median_s": self.median_s, "best_s": self.best_s,
                "mean_s": self.mean_s, "repeats": self.repeats}


def time_callable(fn: Callable[[], object], *, warmup: int = 5,
                  repeats: int = 30) -> BenchTiming:
    """Time ``fn`` after ``warmup`` untimed calls; return summary stats."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    times.sort()
    return BenchTiming(
        median_s=times[len(times) // 2],
        best_s=times[0],
        mean_s=sum(times) / len(times),
        repeats=repeats,
    )


def speedup(reference: BenchTiming | dict, candidate: BenchTiming | dict) -> float:
    """Median-over-median speedup of ``candidate`` relative to ``reference``."""
    ref = reference.to_dict() if isinstance(reference, BenchTiming) else reference
    cand = candidate.to_dict() if isinstance(candidate, BenchTiming) else candidate
    return ref["median_s"] / cand["median_s"]
