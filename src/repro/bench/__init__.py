"""Microbenchmark harness for the op-registry execution engine.

``python -m repro bench`` runs the suite; see :mod:`repro.bench.suites`
for what is measured and :mod:`repro.bench.harness` for how.  The committed
baseline lives in ``BENCH_pr3.json`` at the repo root.
"""

from repro.bench.harness import BenchTiming, speedup, time_callable
from repro.bench.suites import (
    PRE_REFACTOR_REFERENCE,
    REQUIRED_SPEEDUP,
    TAPE_REQUIRED_SPEEDUP,
    build_ssl_step,
    format_report,
    op_microbenches,
    run_suite,
    ssl_step_bench,
    tape_replay_bench,
)

__all__ = [
    "PRE_REFACTOR_REFERENCE",
    "REQUIRED_SPEEDUP",
    "TAPE_REQUIRED_SPEEDUP",
    "BenchTiming",
    "build_ssl_step",
    "format_report",
    "op_microbenches",
    "run_suite",
    "speedup",
    "ssl_step_bench",
    "tape_replay_bench",
    "time_callable",
]
