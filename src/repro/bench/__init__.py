"""Microbenchmark harness for the op-registry execution engine.

``python -m repro bench`` runs the suite; see :mod:`repro.bench.suites`
for what is measured and :mod:`repro.bench.harness` for how.  The committed
baselines live at the repo root (``BENCH_pr3.json``, ``BENCH_pr4.json``,
``BENCH_pr5.json``, ``BENCH_pr8.json``, ``BENCH_pr9.json``).
"""

from repro.bench.harness import BenchTiming, speedup, time_callable
from repro.bench.suites import (
    MEMORY_BENCH_STEPS,
    PRE_REFACTOR_REFERENCE,
    PROBE_BENCH_WORKER_COUNTS,
    PROBE_MAX_ACCURACY_DELTA,
    REQUIRED_SPEEDUP,
    RIDGE_REQUIRED_SPEEDUP,
    SHARDING_BENCH_WORKERS,
    SHARDING_REQUIRED_SPEEDUP,
    TAPE_REQUIRED_SPEEDUP,
    build_ssl_step,
    eval_probe_bench,
    format_report,
    memory_bench,
    op_microbenches,
    run_suite,
    sharding_bench,
    ssl_step_bench,
    tape_replay_bench,
)

__all__ = [
    "MEMORY_BENCH_STEPS",
    "PRE_REFACTOR_REFERENCE",
    "PROBE_BENCH_WORKER_COUNTS",
    "PROBE_MAX_ACCURACY_DELTA",
    "REQUIRED_SPEEDUP",
    "RIDGE_REQUIRED_SPEEDUP",
    "SHARDING_BENCH_WORKERS",
    "SHARDING_REQUIRED_SPEEDUP",
    "TAPE_REQUIRED_SPEEDUP",
    "BenchTiming",
    "build_ssl_step",
    "eval_probe_bench",
    "format_report",
    "memory_bench",
    "op_microbenches",
    "run_suite",
    "sharding_bench",
    "speedup",
    "ssl_step_bench",
    "tape_replay_bench",
    "time_callable",
]
