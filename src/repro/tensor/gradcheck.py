"""Numerical gradient checking for the autograd engine.

Every primitive in :mod:`repro.tensor` is validated in the test suite by
comparing its analytic gradient against a central-difference estimate
computed here.  Checks run in float64 to keep the finite-difference error
well below the comparison tolerance.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                       index: int, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input.

    Parameters
    ----------
    fn:
        Function mapping :class:`Tensor` arguments to a :class:`Tensor`.
    inputs:
        Raw numpy arrays; converted to float64 tensors internally.
    index:
        Which input to differentiate with respect to.
    """
    base = [np.asarray(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[index])
    flat = grad.reshape(-1)
    target = base[index].reshape(-1)

    def evaluate() -> float:
        # float64 arrays pass through Tensor untouched, keeping the
        # finite-difference error below the comparison tolerance.
        tensors = [Tensor(b.copy()) for b in base]
        out = fn(*tensors)
        return float(out.data.sum())

    # Deliberate per-element loop: this IS the scalar reference the
    # vectorized backward passes are checked against.
    for i in range(flat.size):  # repro-lint: disable=PERF001
        original = target[i]
        target[i] = original + eps
        upper = evaluate()
        target[i] = original - eps
        lower = evaluate()
        target[i] = original
        flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[np.ndarray],
                    atol: float = 1e-4, rtol: float = 1e-3, eps: float = 1e-5) -> bool:
    """Compare analytic and numerical gradients of ``sum(fn(*inputs))``.

    Returns ``True`` when all gradients match; raises ``AssertionError`` with
    a diagnostic message otherwise.
    """
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.sum().backward()

    for i, t in enumerate(tensors):
        expected = numerical_gradient(fn, arrays, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(arrays[i])
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {worst:.3e}\n"
                f"analytic:\n{actual}\nnumerical:\n{expected}"
            )
    return True
