"""Runtime autograd sanitizer (the ``torch.autograd.set_detect_anomaly`` analog).

Two orthogonal safety nets guard the tape:

- :func:`detect_anomaly` — a context manager that makes every primitive
  check its forward output, and :meth:`Tensor.backward` check every
  gradient contribution, for NaN/Inf.  Violations raise
  :class:`AnomalyError` naming the offending op; under anomaly mode each
  tensor also records the Python stack that created it so the error can
  point at the producing call site, exactly like torch's anomaly mode.
- a per-tensor version counter (always on, see ``tensor.py``) — rebinding
  ``t.data`` bumps ``t._version``; ``backward()`` compares each saved
  parent's current version against the version recorded when the op was
  taped and raises if a tensor saved for backward was modified after the
  fact.

Anomaly mode costs one ``np.isfinite`` reduction per op plus a stack
capture per tensor, so it is opt-in; the version counter is a single
integer bump and is always enforced.
"""

from __future__ import annotations

import contextlib
import traceback

import numpy as np

__all__ = ["AnomalyError", "detect_anomaly", "is_anomaly_enabled"]

_ANOMALY_ENABLED = False


class AnomalyError(RuntimeError):
    """Raised when anomaly mode finds a non-finite forward value or gradient."""


def is_anomaly_enabled() -> bool:
    """Return whether NaN/Inf checking is currently active."""
    return _ANOMALY_ENABLED


@contextlib.contextmanager
def detect_anomaly():
    """Enable NaN/Inf checking for every op taped inside the block.

    Forward: every op result dispatched through ``engine.apply`` (and every
    legacy :meth:`Tensor.from_op` result) is checked as it is
    created.  Backward: each gradient contribution produced while the
    context is active is checked before it is accumulated.  Both raise
    :class:`AnomalyError` naming the op; forward errors also carry the
    stack that created the tensor.
    """
    global _ANOMALY_ENABLED
    previous = _ANOMALY_ENABLED
    _ANOMALY_ENABLED = True
    try:
        yield
    finally:
        _ANOMALY_ENABLED = previous


def capture_stack(skip: int = 2, limit: int = 12) -> str:
    """Format the current Python stack, dropping ``skip`` innermost frames."""
    frames = traceback.format_stack()
    trimmed = frames[:-skip] if skip else frames
    return "".join(trimmed[-limit:])


def check_forward(data: np.ndarray, op: str) -> None:
    """Raise :class:`AnomalyError` if a forward output contains NaN/Inf."""
    if not np.isfinite(data).all():
        kind = "NaN" if np.isnan(data).any() else "Inf"
        raise AnomalyError(
            f"anomaly detected: forward of op '{op or 'leaf'}' produced {kind}\n"
            f"created at:\n{capture_stack(skip=3)}"
        )


def check_backward(grad: np.ndarray, op: str, created_at: str | None) -> None:
    """Raise :class:`AnomalyError` if a gradient contribution contains NaN/Inf."""
    if not np.isfinite(grad).all():
        kind = "NaN" if np.isnan(grad).any() else "Inf"
        where = f"\nforward was taped at:\n{created_at}" if created_at else ""
        raise AnomalyError(
            f"anomaly detected: backward of op '{op or 'leaf'}' produced "
            f"{'a NaN' if kind == 'NaN' else 'an Inf'} gradient{where}"
        )
