"""The op registry and the single dispatch choke point of the tensor engine.

Every differentiable primitive in the library is a named :class:`Op` — an
explicit ``forward``/``backward`` pair registered in a process-wide table —
and every primitive call goes through :func:`apply`.  This replaces the
original design where each operation taped an ad-hoc Python closure per
parent: closures capture tensors lazily (the AD002 bug class), cannot share
intermediate work between parent gradients, and leave no seam for fusion.

What the choke point buys:

- **One taping path.**  Anomaly checks, dtype policy, version snapshots and
  graph construction happen in exactly one place instead of being repeated
  (and occasionally forgotten) in every primitive.
- **Op-level backward.**  ``Op.backward(ctx, grad)`` computes the gradients
  of *all* inputs in one call, so fused ops reuse shared intermediates
  (masks, norms, normalized activations) across parents.
- **Eager saving.**  Ops stash the arrays they need via ``ctx.save(...)`` at
  forward time, so backward never reads a tensor's ``.data`` lazily — the
  late-binding failure mode AD002 polices is structurally impossible for
  registered ops.
- **A float32 dtype policy.**  The output dtype is pinned at dispatch time:
  float64 is produced only when the graph is genuinely float64 (gradcheck);
  stray float64 scalars or kernel upcasts can no longer promote a float32
  activation graph (see :func:`result_dtype`).
- **Fusion seams.**  Layers consult :func:`fusion_enabled` and swap a
  composed chain (e.g. matmul + add + relu) for a single registered fused op
  with identical semantics; :func:`no_fusion` restores the unfused
  composition for parity testing.

``Tensor.from_op`` remains as the legacy closure-taping API (tests and
quick experiments use it); the registry is the supported path for library
code.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults import plane as _faults
from repro.tensor import anomaly

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.tensor.tensor import Tensor

__all__ = [
    "Context",
    "Op",
    "active_capture",
    "apply",
    "apply_ctx",
    "fusion_enabled",
    "get_op",
    "is_grad_enabled",
    "no_fusion",
    "no_grad",
    "register",
    "registered_ops",
    "registry_fingerprint",
    "result_dtype",
    "set_fusion",
]

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used for evaluation, representation extraction for data selection, and
    snapshotting the old model's outputs during distillation.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


_FUSION_ENABLED = True


def fusion_enabled() -> bool:
    """Return whether layers should dispatch fused kernels."""
    return _FUSION_ENABLED


def set_fusion(enabled: bool) -> bool:
    """Enable/disable fused kernels globally; returns the previous setting."""
    global _FUSION_ENABLED
    previous = _FUSION_ENABLED
    _FUSION_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def no_fusion():
    """Context manager forcing the unfused reference compositions.

    Used by the fused-vs-unfused parity tests and by ``repro bench`` to
    measure the speedup of the fused kernels against their references.
    """
    previous = set_fusion(False)
    try:
        yield
    finally:
        set_fusion(previous)


class Context:
    """Per-call scratchpad linking an op's forward to its backward.

    ``save(*arrays)`` stores the arrays backward needs (eager, by reference:
    rebinding an input tensor's ``.data`` afterwards cannot change what was
    saved).  Ops are free to attach extra attributes (``ctx.axis = ...``).
    ``needs_input_grad`` mirrors torch: a tuple of bools aligned with the
    op's inputs so backward can skip gradients nobody will consume.
    """

    def __init__(self):
        self.saved: tuple = ()
        self.needs_input_grad: tuple[bool, ...] = ()

    def save(self, *arrays) -> None:
        self.saved = arrays


class Op:
    """A named differentiable primitive.

    Subclasses set ``name`` and implement ``forward``/``backward`` as
    static methods:

    - ``forward(ctx, *arrays, **params) -> np.ndarray`` receives the raw
      input arrays (already unwrapped from their tensors) plus keyword
      parameters, and may stash state on ``ctx``;
    - ``backward(ctx, grad) -> Sequence[np.ndarray | None]`` returns one
      gradient per input, positionally aligned; ``None`` marks an input
      that needs no gradient.

    Ops participating in tape memory planning additionally:

    - declare their buffer needs via :meth:`plan_buffers`, a pure function
      of input shapes/dtypes and params;
    - accept an optional ``out=`` keyword in ``forward`` and, when given,
      write the result into that caller-provided array and return it
      bit-for-bit identical to the allocating path.  Eager dispatch never
      passes ``out``; only the tape's planned replay does.
    """

    name: str = ""

    @staticmethod
    def forward(ctx: Context, *arrays: np.ndarray, **params) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def backward(ctx: Context, grad: np.ndarray) -> Sequence[np.ndarray | None]:
        raise NotImplementedError

    @classmethod
    def plan_buffers(cls, params: dict, input_specs):
        """Declare output and scratch storage for the memory planner.

        ``input_specs`` is a tuple of ``(shape, dtype_str)`` pairs, one per
        forward input array.  Returns ``(out_spec, scratch_specs)`` where
        ``out_spec`` is ``(shape, dtype_str)`` — or ``None`` if the op does
        not support caller-provided output storage — and ``scratch_specs``
        is a tuple of ``(shape, dtype_str, lifetime)`` entries describing
        the buffers the op will :func:`repro.tensor.memplan.acquire` during
        forward; ``lifetime`` is ``"fwd"`` (released before the next
        instruction) or ``"bwd"`` (retained until this op's backward).

        The declaration must be exact: the planner cross-validates
        ``out_spec`` against the recorded output and falls back to
        per-op allocation on any mismatch.  The base implementation opts
        out of planning entirely.
        """
        return None, ()


_REGISTRY: dict[str, type[Op]] = {}

# Bumped on every registration; (version, size) is the cheap O(1) identity a
# captured tape pins so replay notices a registry that changed under it.
_REGISTRY_VERSION = 0


def register(cls: type[Op]) -> type[Op]:
    """Class decorator adding an :class:`Op` subclass to the registry."""
    global _REGISTRY_VERSION
    if not cls.name:
        raise ValueError(f"op class {cls.__name__} must set a non-empty name")
    if cls.name in _REGISTRY:
        raise ValueError(f"op {cls.name!r} is already registered "
                         f"(by {_REGISTRY[cls.name].__name__})")
    _REGISTRY[cls.name] = cls
    _REGISTRY_VERSION += 1
    return cls


def registry_fingerprint() -> tuple[int, int]:
    """An O(1) identity of the registry contents, for tape validity checks."""
    return (_REGISTRY_VERSION, len(_REGISTRY))


def get_op(name: str) -> type[Op]:
    """Look up a registered op by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"no op registered under {name!r}; "
                       f"known ops: {', '.join(sorted(_REGISTRY))}") from None


def registered_ops() -> dict[str, type[Op]]:
    """Snapshot of the registry (name -> op class)."""
    return dict(_REGISTRY)


# The Tensor class binds itself here at import time; engine cannot import
# tensor.py at module level without a cycle.
_TENSOR_CLS = None


def _bind_tensor_class(cls) -> None:
    global _TENSOR_CLS
    _TENSOR_CLS = cls


# The active tape capture (set by repro.tensor.tape.capture); apply_ctx
# reports every dispatch to it, and layers with per-step randomness
# (Dropout, the VAE sampler) poison it via mark_unsafe so a recorded
# program with baked-in random constants is never replayed.
_ACTIVE_CAPTURE = None


def active_capture():
    """The :class:`repro.tensor.tape.Tape` currently recording, or ``None``."""
    return _ACTIVE_CAPTURE


def result_dtype(inputs: Sequence["Tensor"]):
    """The float32-policy output dtype for an op over ``inputs``.

    Python/numpy scalars coerce to *weak* tensors that never steer the
    result dtype (so a stray ``np.float64(0.5)`` cannot upcast a float32
    graph), mirroring NEP 50.  The result is float64 only when some strong
    (array-backed) input is float64 — the gradcheck configuration, which
    builds pure-float64 graphs.  Everything else, including any kernel that
    internally upcasts (reductions, ``np.trace``-style accumulators), is
    pinned back to float32 at the dispatch layer.
    """
    for t in inputs:
        if not t._weak and t._data.dtype == np.float64:
            return np.float64
    return DEFAULT_DTYPE


def apply_ctx(name: str, *inputs, **params):
    """Dispatch op ``name`` and return ``(output_tensor, context)``.

    This is the engine's single choke point: input coercion, the forward
    kernel, the anomaly check, the dtype policy and graph taping all happen
    here.  The context is returned so callers that need forward by-products
    (BatchNorm's batch statistics) can read them without recomputing;
    ordinary callers use :func:`apply`.
    """
    tensor_cls = _TENSOR_CLS
    op = get_op(name)
    tensors = tuple(t if isinstance(t, tensor_cls) else tensor_cls(t)
                    for t in inputs)

    ctx = Context()
    ctx.needs_input_grad = tuple(_GRAD_ENABLED and t.requires_grad
                                 for t in tensors)

    data = op.forward(ctx, *(t._data for t in tensors), **params)

    expected = result_dtype(tensors)
    if data.dtype != expected:
        data = data.astype(expected)

    if _faults.ARMED:
        # nan_payload injection site, deliberately *before* the anomaly
        # check: under anomaly mode the sanitizer must catch the poison at
        # the producing op, otherwise it reaches the loss/grad screens.
        data = _faults.corrupt("engine.dispatch", data)

    if anomaly.is_anomaly_enabled():
        anomaly.check_forward(data, name)

    if any(ctx.needs_input_grad):
        out = tensor_cls(data, requires_grad=True, _op=name)
        parents = tuple(t for t in tensors if t.requires_grad)
        out._parents = parents
        out._parent_versions = tuple(t._version for t in parents)
        out._op_cls = op
        out._ctx = ctx
        out._inputs = tensors
    else:
        # Nobody will run backward through this node: drop whatever the op
        # stashed for it so eval / representation-extraction passes don't
        # retain activation copies for the lifetime of the output tensor.
        ctx.saved = ()
        out = tensor_cls(data, requires_grad=False)
    if _ACTIVE_CAPTURE is not None:
        _ACTIVE_CAPTURE.record_apply(name, op, tensors, params, out, ctx)
    return out, ctx


def apply(name: str, *inputs, **params):
    """Dispatch op ``name`` on ``inputs`` and return the output tensor."""
    return apply_ctx(name, *inputs, **params)[0]
