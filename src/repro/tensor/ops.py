"""Functional operations on :class:`~repro.tensor.tensor.Tensor`.

These are free functions (rather than methods) either because they take
multiple tensors (``concatenate``, ``stack``, ``where``) or because they are
composite conveniences used widely across the library (``softmax``,
``l2_normalize``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def exp(x: Tensor) -> Tensor:
    data = np.exp(x.data)
    return Tensor.from_op(data, [(x, lambda g: g * data)], op="exp")


def log(x: Tensor) -> Tensor:
    data = np.log(x.data)
    return Tensor.from_op(data, [(x, lambda g: g / x.data)], op="log")


def sqrt(x: Tensor) -> Tensor:
    data = np.sqrt(x.data)
    return Tensor.from_op(data, [(x, lambda g: g * 0.5 / data)], op="sqrt")


def tanh(x: Tensor) -> Tensor:
    data = np.tanh(x.data)
    return Tensor.from_op(data, [(x, lambda g: g * (1.0 - data * data))], op="tanh")


def sigmoid(x: Tensor) -> Tensor:
    data = 1.0 / (1.0 + np.exp(-x.data))
    return Tensor.from_op(data, [(x, lambda g: g * data * (1.0 - data))], op="sigmoid")


def relu(x: Tensor) -> Tensor:
    data = np.maximum(x.data, 0.0)
    mask = x.data > 0

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g * mask

    return Tensor.from_op(data, [(x, grad_fn)], op="relu")


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    data = np.where(x.data > 0, x.data, negative_slope * x.data)
    slope = np.where(x.data > 0, 1.0, negative_slope).astype(x.data.dtype)
    return Tensor.from_op(data, [(x, lambda g: g * slope)], op="leaky_relu")


def maximum(a: Tensor, b: Tensor) -> Tensor:
    from repro.tensor.tensor import _unbroadcast

    data = np.maximum(a.data, b.data)
    a_wins = (a.data >= b.data).astype(a.data.dtype)
    return Tensor.from_op(data, [
        (a, lambda g: _unbroadcast(g * a_wins, a.shape)),
        (b, lambda g: _unbroadcast(g * (1.0 - a_wins), b.shape)),
    ], op="maximum")


def minimum(a: Tensor, b: Tensor) -> Tensor:
    return -maximum(-a, -b)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``condition`` is a plain boolean array."""
    from repro.tensor.tensor import _unbroadcast

    cond = np.asarray(condition)
    data = np.where(cond, a.data, b.data)
    return Tensor.from_op(data, [
        (a, lambda g: _unbroadcast(np.where(cond, g, 0.0), a.shape)),
        (b, lambda g: _unbroadcast(np.where(cond, 0.0, g), b.shape)),
    ], op="where")


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    data = np.concatenate([t.data for t in tensors], axis=axis)
    offsets = np.cumsum([0] + [t.shape[axis] for t in tensors])
    parents = []
    for i, t in enumerate(tensors):
        start, stop = offsets[i], offsets[i + 1]

        def grad_fn(g: np.ndarray, start=start, stop=stop) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            return g[tuple(slicer)]

        parents.append((t, grad_fn))
    return Tensor.from_op(data, parents, op="concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    data = np.stack([t.data for t in tensors], axis=axis)
    parents = []
    for i, t in enumerate(tensors):
        def grad_fn(g: np.ndarray, i=i) -> np.ndarray:
            return np.take(g, i, axis=axis)

        parents.append((t, grad_fn))
    return Tensor.from_op(data, parents, op="stack")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - log(exp(shifted).sum(axis=axis, keepdims=True))


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows to unit Euclidean norm (used by cosine similarities)."""
    norm = sqrt((x * x).sum(axis=axis, keepdims=True) + eps)
    return x / norm


def mse(a: Tensor, b: Tensor) -> Tensor:
    """Mean squared error between two tensors (DER's distillation loss)."""
    diff = a - b
    return (diff * diff).mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Row-wise cosine similarity."""
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)
