"""Functional operations on :class:`~repro.tensor.tensor.Tensor`.

These are free functions (rather than methods) either because they take
multiple tensors (``concatenate``, ``stack``, ``where``) or because they are
composite conveniences used widely across the library (``softmax``,
``l2_normalize``).  Each dispatches a registered op through the engine's
``apply`` choke point; the fusable ones (``l2_normalize``,
``cosine_similarity``, ``normalized_mse``, ``linear``, ``linear_relu``,
``batch_norm_train``) consult :func:`~repro.tensor.engine.fusion_enabled`
and fall back to the unfused reference composition under
:func:`~repro.tensor.engine.no_fusion` so parity tests can pin the two
paths against each other.
"""

from __future__ import annotations

from typing import Sequence

from repro.tensor import engine
from repro.tensor.engine import apply as _apply
from repro.tensor.tensor import Tensor


def exp(x: Tensor) -> Tensor:
    return _apply("exp", x)


def log(x: Tensor) -> Tensor:
    return _apply("log", x)


def sqrt(x: Tensor) -> Tensor:
    return _apply("sqrt", x)


def tanh(x: Tensor) -> Tensor:
    return _apply("tanh", x)


def sigmoid(x: Tensor) -> Tensor:
    return _apply("sigmoid", x)


def relu(x: Tensor) -> Tensor:
    return _apply("relu", x)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return _apply("leaky_relu", x, negative_slope=negative_slope)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    return _apply("maximum", a, b)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    return -maximum(-a, -b)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``condition`` is a plain boolean array."""
    return _apply("where", a, b, condition=condition)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return _apply("concat", *tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return _apply("stack", *tensors, axis=axis)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = exp(shifted)
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - log(exp(shifted).sum(axis=axis, keepdims=True))


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows to unit Euclidean norm (used by cosine similarities)."""
    if engine.fusion_enabled():
        return _apply("l2normalize", x, axis=axis, eps=eps)
    norm = sqrt((x * x).sum(axis=axis, keepdims=True) + eps)
    return x / norm


def mse(a: Tensor, b: Tensor) -> Tensor:
    """Mean squared error between two tensors (DER's distillation loss)."""
    diff = a - b
    return (diff * diff).mean()


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Row-wise cosine similarity."""
    if engine.fusion_enabled():
        return _apply("cosine_rows", a, b, axis=axis)
    return (l2_normalize(a, axis=axis) * l2_normalize(b, axis=axis)).sum(axis=axis)


def normalized_mse(p: Tensor, t: Tensor, axis: int = -1) -> Tensor:
    """Per-row ``sum((l2n(p) - l2n(t))**2, axis)`` (BYOL's regression loss)."""
    if engine.fusion_enabled():
        return _apply("normalized_mse", p, t, axis=axis)
    diff = l2_normalize(p, axis=axis) - l2_normalize(t, axis=axis)
    return (diff * diff).sum(axis=axis)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``x @ weight (+ bias)`` for 2-D activations."""
    if engine.fusion_enabled() and x.ndim == 2:
        if bias is None:
            return _apply("linear", x, weight)
        return _apply("linear", x, weight, bias)
    out = x @ weight
    return out if bias is None else out + bias


def linear_relu(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fused ``relu(x @ weight (+ bias))`` — MLP hidden-layer kernel."""
    if engine.fusion_enabled() and x.ndim == 2:
        if bias is None:
            return _apply("linear_relu", x, weight)
        return _apply("linear_relu", x, weight, bias)
    return relu(linear(x, weight, bias))


def batch_norm_train(x: Tensor, axes: tuple[int, ...], eps: float,
                     stat_callback=None):
    """Train-mode batch normalization; returns ``(xhat, mean, var)``.

    ``mean``/``var`` are the batch statistics as plain keepdims arrays (for
    running-stat updates), not tensors on the tape.  ``stat_callback`` is
    the running-stat update itself, called here as ``callback(mean, var)``
    and — when a tape capture is active — registered as a replay hook so a
    replayed step updates the running averages exactly like an eager one.
    """
    axes = tuple(axes)
    if engine.fusion_enabled():
        out, ctx = engine.apply_ctx("batch_norm", x, axes=axes, eps=eps)
        if stat_callback is not None:
            stat_callback(ctx.mean, ctx.var)
            cap = engine.active_capture()
            if cap is not None:
                cap.record_stat_hook(stat_callback, ctx=ctx)
        return out, ctx.mean, ctx.var
    mean = x.mean(axis=axes, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=axes, keepdims=True)
    xhat = centered / sqrt(var + eps)
    if stat_callback is not None:
        stat_callback(mean.data, var.data)
        cap = engine.active_capture()
        if cap is not None:
            cap.record_stat_hook(stat_callback, tensors=(mean, var))
    return xhat, mean.data, var.data
