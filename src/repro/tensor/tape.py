"""Tape capture & replay: run a recorded training step without re-taping.

A shape-stable training loop (the SSL step) rebuilds an identical autograd
graph every iteration; eager dispatch pays Python-level input coercion,
dtype resolution, Tensor construction, and a graph walk per step, for a
program whose structure never changes.  This module records the program
once — straight from the :func:`repro.tensor.engine.apply_ctx` choke
point — and re-executes it against fresh input buffers:

- :func:`capture` installs the recording hook and yields a :class:`Tape`;
  the step still runs eagerly (and correctly) while being recorded.
- :meth:`Tape.replay` re-runs forward and backward from the recorded
  instruction list: no Tensor objects, no dispatch, no per-call dtype
  resolution — just ``op.forward``/``op.backward`` on raw arrays.  The
  backward pass replays the *same* reverse-topological schedule
  ``Tensor.backward`` walked at capture time, with the accumulation code
  replicated statement for statement, so float addition order and buffer
  reuse — and therefore every last bit of every leaf ``.grad`` — match
  eager exactly.
- :meth:`Tape.check` is the cheap validity guard: input shapes/dtypes, the
  fusion and grad-enabled flags, anomaly mode, and the op-registry
  fingerprint.  Callers fall back to eager dispatch and recapture on drift.
- :class:`TapedFunction` packages the capture -> validate -> replay ->
  invalidate lifecycle around a step callable, caching one tape per input
  signature (so partial final batches get their own tape instead of
  thrashing the full-batch one).

Leaf binding rules (what makes replay safe):

- tensors with ``requires_grad`` are *parameter leaves*: the tape keeps the
  Tensor object and reads ``.data`` fresh on every replay, so optimizer
  rebinds are picked up and gradients land in the same stable ``.grad``
  buffers the engine guarantees under ``zero_grad(set_to_none=False)``;
- arrays passed to :func:`capture` as ``inputs`` are *input leaves*, bound
  by array identity at capture and positionally at replay;
- every other leaf is a *constant*, kept by reference.  This is why any
  source of per-step randomness (Dropout masks, the VAE sampler) and any
  non-op side effect (BYOL's momentum update) must poison the active
  capture via :meth:`Tape.mark_unsafe` — a program with baked-in per-step
  constants must never be replayed.

Forward side effects that live outside the op stream (BatchNorm
running-stat updates) re-fire on replay through
:meth:`Tape.record_stat_hook`.

Memory planning (PR 8): a complete tape knows every buffer the step will
ever need, so the *second* replay runs as an observation pass — natural
output dtypes, view aliases, and which intermediates each op context
retains for backward are read off the live values — and feeds
:func:`repro.tensor.memplan.build_plan`.  Replays from the third on
execute against the resulting :class:`~repro.tensor.memplan.MemoryPlan`:
planned instructions write into pre-bound arena views (``out=``) and
draw their declared scratch from the same arena, with zero allocator
calls for planned storage.  The planned path is gated exactly like the
tape itself — bit-for-bit parity with the unplanned replay and with
eager is enforced by tests — and any planning failure (declaration
mismatch, odd dtypes, zero plannable buffers) permanently reverts that
tape to the allocate-per-op fallback path.  The loss root, parameter
leaves, ``.grad`` accumulators and captured constants never live in the
arena.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.faults import plane as _faults
from repro.tensor import anomaly, engine, memplan

__all__ = ["Tape", "TapedFunction", "capture"]

_MEMSTATS = memplan.stats()

_LEAF = 0
_OP = 1


class _Instruction:
    """One recorded ``apply_ctx`` call, in slot form."""

    __slots__ = ("name", "op_cls", "params", "input_slots", "out_slot",
                 "needs_input_grad", "out_dtype", "out_shape", "grad_out")

    def __init__(self, name, op_cls, params, input_slots, out_slot,
                 needs_input_grad, out_dtype, out_shape):
        self.name = name
        self.op_cls = op_cls
        self.params = params
        self.input_slots = input_slots
        self.out_slot = out_slot
        self.needs_input_grad = needs_input_grad
        self.out_dtype = out_dtype
        self.out_shape = out_shape
        self.grad_out = any(needs_input_grad)


class Tape:
    """A recorded forward+backward program over value slots.

    Built by :func:`capture`; every tensor seen during the capture gets a
    slot, instructions read and write slots, and leaves are bound per the
    module docstring.  After :meth:`check` passes, :meth:`replay` executes
    the program on fresh input arrays.
    """

    def __init__(self, example_inputs=()):
        self.instructions: list[_Instruction] = []
        self.param_of_slot: dict = {}
        self.const_of_slot: dict[int, np.ndarray] = {}
        self.input_slot_of_pos: dict[int, int] = {}
        self.input_signature = tuple(
            (np.asarray(a).shape, np.asarray(a).dtype.str) for a in example_inputs)
        self.stat_hooks: list[tuple] = []
        self.schedule: list[tuple[int, int]] = []
        self.seed_slot: int | None = None
        self.seed_grad: np.ndarray | None = None
        self.unsafe = False
        self.unsafe_reason: str | None = None
        self.complete = False
        self.plan: memplan.MemoryPlan | None = None
        self._plan_failed = False
        self.fusion = engine.fusion_enabled()
        self.grad_enabled = engine.is_grad_enabled()
        self.fingerprint = engine.registry_fingerprint()

        # Capture-time state, dropped at finalize.  ``_refs`` pins every
        # tensor (and ``_example_inputs`` every input array) for the length
        # of the capture so ``id()`` keys cannot be recycled.
        self._n_slots = 0
        self._backward_recorded = False
        self._refs: list | None = []
        self._ctx_refs: list | None = []
        self._slot_of_tensor: dict[int, int] | None = {}
        self._slot_of_array: dict[int, int] | None = {}
        self._inst_of_ctx: dict[int, int] | None = {}
        self._inst_of_out_slot: dict[int, int] = {}
        self._example_inputs = tuple(example_inputs)
        self._input_pos_of_array: dict[int, int] = {}
        for pos, arr in enumerate(self._example_inputs):
            self._input_pos_of_array.setdefault(id(arr), pos)

    # ------------------------------------------------------------------
    # Recording (called from engine.apply_ctx / Tensor.backward)
    # ------------------------------------------------------------------
    def mark_unsafe(self, reason: str) -> None:
        """Poison the capture: the recorded program must not be replayed."""
        if not self.unsafe:
            self.unsafe = True
            self.unsafe_reason = reason

    def _new_slot(self) -> int:
        sid = self._n_slots
        self._n_slots += 1
        return sid

    def _slot_for_input(self, t) -> int:
        sid = self._slot_of_tensor.get(id(t))
        if sid is not None:
            return sid
        self._refs.append(t)
        if t.requires_grad:
            # Parameter leaf: identity is the tensor, never the array —
            # two grad leaves sharing storage must accumulate separately,
            # exactly as eager keys its grads dict by tensor id.
            sid = self._new_slot()
            self.param_of_slot[sid] = t
            self._slot_of_tensor[id(t)] = sid
            self._slot_of_array.setdefault(id(t._data), sid)
            return sid
        data = t._data
        sid = self._slot_of_array.get(id(data))
        if sid is None:
            sid = self._new_slot()
            pos = self._input_pos_of_array.get(id(data))
            if pos is not None and pos not in self.input_slot_of_pos:
                self.input_slot_of_pos[pos] = sid
            else:
                self.const_of_slot[sid] = data
            self._slot_of_array[id(data)] = sid
        self._slot_of_tensor[id(t)] = sid
        return sid

    def record_apply(self, name, op_cls, tensors, params, out, ctx) -> None:
        """Record one dispatched op (the ``apply_ctx`` capture hook)."""
        if self.unsafe:
            return
        if self._backward_recorded:
            self.mark_unsafe(f"op {name!r} dispatched after backward during capture")
            return
        if anomaly.is_anomaly_enabled():
            self.mark_unsafe("anomaly detection was enabled during capture")
            return
        input_slots = tuple(self._slot_for_input(t) for t in tensors)
        out_slot = self._new_slot()
        self._refs.append(out)
        self._slot_of_tensor[id(out)] = out_slot
        self._slot_of_array.setdefault(id(out._data), out_slot)
        self._inst_of_out_slot[out_slot] = len(self.instructions)
        self._inst_of_ctx[id(ctx)] = len(self.instructions)
        self._ctx_refs.append(ctx)
        self.instructions.append(_Instruction(
            name, op_cls, dict(params), input_slots, out_slot,
            ctx.needs_input_grad, out._data.dtype, out._data.shape))

    def record_backward(self, root, seed: np.ndarray) -> None:
        """Freeze the backward schedule from the live graph at ``root``.

        Runs the same iterative DFS :meth:`Tensor.backward` is about to
        run and stores the reverse-topological visit order as slot/leaf
        references, so replay performs every accumulation in the same
        order on the same buffers.
        """
        if self.unsafe:
            return
        if self._backward_recorded:
            self.mark_unsafe("multiple backward passes during one capture")
            return
        root_slot = self._slot_of_tensor.get(id(root))
        if root_slot is None:
            self.mark_unsafe("backward from a tensor created outside the capture")
            return
        self._backward_recorded = True
        self.seed_slot = root_slot
        self.seed_grad = np.asarray(seed).copy()

        order = []
        seen: set[int] = set()
        stack = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        schedule = []
        for node in reversed(order):
            sid = self._slot_of_tensor.get(id(node))
            if sid is None:
                self.mark_unsafe(f"graph node ({node._op or 'leaf'}) was "
                                 f"created outside the capture")
                return
            if not node._parents:
                if sid not in self.param_of_slot:
                    self.mark_unsafe("backward reached a leaf the tape did not bind")
                    return
                schedule.append((_LEAF, sid))
                continue
            if node._op_cls is None:
                self.mark_unsafe(f"node {node._op or '?'} was taped with a "
                                 f"legacy closure (Tensor.from_op)")
                return
            schedule.append((_OP, self._inst_of_out_slot[sid]))
        self.schedule = schedule

    def record_stat_hook(self, callback, *, ctx=None, tensors=()) -> None:
        """Re-fire a forward side effect (BatchNorm running stats) on replay.

        ``ctx`` form: ``callback(replayed_ctx.mean, replayed_ctx.var)`` —
        for the fused batch-norm kernel, whose statistics live on its
        context.  ``tensors`` form: the callback receives the replayed slot
        values of the given captured tensors (the unfused composition's
        mean/var nodes).  Hooks fire after the forward replay, in
        registration order.
        """
        if self.unsafe:
            return
        if ctx is not None:
            idx = self._inst_of_ctx.get(id(ctx))
            if idx is None:
                self.mark_unsafe("stat hook bound to a context the tape did not record")
                return
            self.stat_hooks.append(("ctx", idx, callback))
            return
        slots = []
        for t in tensors:
            sid = self._slot_of_tensor.get(id(t))
            if sid is None:
                self.mark_unsafe("stat hook bound to a tensor the tape did not record")
                return
            slots.append(sid)
        self.stat_hooks.append(("slots", tuple(slots), callback))

    def _end_capture(self) -> None:
        """Finalize: pin the validity environment, drop capture-time state."""
        self.complete = self._backward_recorded and not self.unsafe
        self.fusion = engine.fusion_enabled()
        self.grad_enabled = engine.is_grad_enabled()
        self.fingerprint = engine.registry_fingerprint()
        self._refs = None
        self._ctx_refs = None
        self._slot_of_tensor = None
        self._slot_of_array = None
        self._inst_of_ctx = None
        self._example_inputs = ()
        self._input_pos_of_array = {}

    # ------------------------------------------------------------------
    # Validity
    # ------------------------------------------------------------------
    def check(self, inputs) -> str | None:
        """Cheap replay-validity check; returns the drift reason or ``None``.

        Guards everything the recorded program pinned: the input signature
        (all example inputs, used or not), the fusion and grad-enabled
        flags, anomaly mode, and the op-registry fingerprint.
        """
        if self.unsafe:
            return self.unsafe_reason
        if not self.complete:
            return "capture did not record a backward pass"
        if len(inputs) != len(self.input_signature):
            return (f"expected {len(self.input_signature)} inputs, "
                    f"got {len(inputs)}")
        for pos, (arr, (shape, dtype)) in enumerate(
                zip(inputs, self.input_signature)):
            arr = np.asarray(arr)
            if arr.shape != shape or arr.dtype.str != dtype:
                return (f"input {pos} drifted: captured {shape}/{dtype}, "
                        f"got {arr.shape}/{arr.dtype.str}")
        if engine.fusion_enabled() != self.fusion:
            return "fusion flag changed since capture"
        if engine.is_grad_enabled() != self.grad_enabled:
            return "grad-enabled flag changed since capture"
        if anomaly.is_anomaly_enabled():
            return "anomaly detection is enabled"
        if engine.registry_fingerprint() != self.fingerprint:
            return "op registry changed since capture"
        return None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self, inputs) -> np.ndarray:
        """Re-execute the program on ``inputs``; returns the root's value.

        The caller is responsible for :meth:`check`-ing first.  Parameter
        values are read fresh from the bound tensors and gradients are
        accumulated into their live ``.grad`` buffers, so a replayed step
        is bit-for-bit interchangeable with an eager one.

        Replay #1 after capture allocates per op; it doubles as the
        observation pass that builds this tape's :class:`MemoryPlan`.
        Later replays execute against the plan's arena.  Disabling
        planning (:func:`repro.tensor.memplan.no_planning`) or any
        planning failure reverts to the allocate-per-op path, which is
        bit-for-bit identical.
        """
        if self.plan is not None and memplan.planning_enabled():
            if self.plan.tape_fingerprint == (self.fingerprint,
                                              self.input_signature):
                return self._replay_planned(inputs)
            self.plan = None  # registry drifted under the plan: rebuild
        observe = (self.plan is None and not self._plan_failed
                   and memplan.planning_enabled())
        return self._replay_fallback(inputs, observe)

    def _bind_values(self, inputs) -> list:
        values: list = [None] * self._n_slots
        for sid, arr in self.const_of_slot.items():
            values[sid] = arr
        for sid, t in self.param_of_slot.items():
            values[sid] = t._data
        for pos, sid in self.input_slot_of_pos.items():
            values[sid] = inputs[pos]
        return values

    def _fire_stat_hooks(self, values, ctxs) -> None:
        for kind, ref, callback in self.stat_hooks:
            if kind == "ctx":
                replayed = ctxs[ref]
                callback(replayed.mean, replayed.var)
            else:
                callback(*[values[s] for s in ref])

    def _replay_fallback(self, inputs, observe: bool = False) -> np.ndarray:
        values = self._bind_values(inputs)
        armed = _faults.ARMED
        natural_ok = [False] * len(self.instructions) if observe else None
        ctxs: list = [None] * len(self.instructions)
        for i, inst in enumerate(self.instructions):
            ctx = engine.Context()
            ctx.needs_input_grad = inst.needs_input_grad
            data = inst.op_cls.forward(
                ctx, *[values[s] for s in inst.input_slots], **inst.params)
            _MEMSTATS["fallback_outputs"] += 1
            if data.dtype != inst.out_dtype:
                data = data.astype(inst.out_dtype)
            elif observe:
                natural_ok[i] = True
            if armed:
                data = _faults.corrupt("tape.replay", data)
            if not inst.grad_out:
                ctx.saved = ()
            values[inst.out_slot] = data
            ctxs[i] = ctx

        if observe and not armed:
            # Build the memory plan off this pass's live values.  Planning
            # is best-effort: any failure keeps this tape on the fallback
            # allocator for good (and the parity gate keeps that correct).
            try:
                self._build_plan(values, ctxs, natural_ok)
            except Exception:
                self._plan_failed = True

        self._fire_stat_hooks(values, ctxs)
        self._replay_backward(values, ctxs)
        return values[self.seed_slot]

    def _replay_planned(self, inputs) -> np.ndarray:
        values = self._bind_values(inputs)
        plan = self.plan
        out_views = plan.out_views
        scratch_views = plan.scratch_views
        armed = _faults.ARMED
        ctxs: list = [None] * len(self.instructions)
        for i, inst in enumerate(self.instructions):
            ctx = engine.Context()
            ctx.needs_input_grad = inst.needs_input_grad
            ins = [values[s] for s in inst.input_slots]
            staged = scratch_views[i]
            if staged:
                memplan.provide_scratch(staged)
            out = out_views[i]
            if out is not None:
                data = inst.op_cls.forward(ctx, *ins, out=out, **inst.params)
                _MEMSTATS["arena_outputs"] += 1
            else:
                data = inst.op_cls.forward(ctx, *ins, **inst.params)
                _MEMSTATS["fallback_outputs"] += 1
                if data.dtype != inst.out_dtype:
                    data = data.astype(inst.out_dtype)
            if staged:
                memplan.provide_scratch(())
            if armed:
                data = _faults.corrupt("tape.replay", data)
            if not inst.grad_out:
                ctx.saved = ()
            values[inst.out_slot] = data
            ctxs[i] = ctx

        self._fire_stat_hooks(values, ctxs)
        self._replay_backward(values, ctxs)
        return values[self.seed_slot]

    # ------------------------------------------------------------------
    # Plan construction (the observation pass)
    # ------------------------------------------------------------------
    @staticmethod
    def _ctx_arrays(ctx):
        """Every ndarray an op context retains (saved tuple + attributes)."""
        for value in vars(ctx).values():
            if isinstance(value, np.ndarray):
                yield value
            elif isinstance(value, (tuple, list)):
                for item in value:
                    if isinstance(item, np.ndarray):
                        yield item

    def _build_plan(self, values, ctxs, natural_ok) -> None:
        """Derive :class:`memplan.PlanInputs` from one observed replay.

        Lifetime evidence comes from the program itself (input slots, the
        frozen backward schedule, stat-hook slots) plus two things only
        the live pass can show: which instruction outputs are *views* of
        other slots (reshape/transpose/getitem — they own no storage) and
        which slot arrays each context retained for backward (saves extend
        a producer's lifetime to its consumer's backward position).
        """
        insts = self.instructions
        n = len(insts)
        bwd_time = {}
        for k, (kind, ref) in enumerate(self.schedule):
            if kind == _OP:
                bwd_time[ref] = n + 1 + k

        slot_of_array: dict[int, int] = {}
        out_values = []
        for inst in insts:
            val = values[inst.out_slot]
            slot_of_array.setdefault(id(val), inst.out_slot)
            out_values.append((inst.out_slot, val))

        alias_of: dict[int, int] = {}
        for i, inst in enumerate(insts):
            data = values[inst.out_slot]
            if data.base is None:
                continue
            for s in inst.input_slots:
                if values[s] is not None and np.may_share_memory(data, values[s]):
                    alias_of[inst.out_slot] = s
                    break

        saved_slots: list[tuple[int, ...]] = []
        for i, ctx in enumerate(ctxs):
            found: set[int] = set()
            if insts[i].grad_out:
                for arr in self._ctx_arrays(ctx):
                    slot = slot_of_array.get(id(arr))
                    if slot is not None:
                        found.add(slot)
                        continue
                    if arr.base is not None:
                        for out_slot, val in out_values:
                            if np.may_share_memory(arr, val):
                                found.add(out_slot)
            saved_slots.append(tuple(sorted(found)))

        out_specs: list = [None] * n
        scratch_specs: list = [()] * n
        for i, inst in enumerate(insts):
            data = values[inst.out_slot]
            if (not natural_ok[i] or data.base is not None
                    or inst.out_slot in alias_of
                    or inst.out_slot == self.seed_slot):
                continue
            input_specs = tuple((values[s].shape, values[s].dtype.str)
                                for s in inst.input_slots)
            try:
                spec, scratch = inst.op_cls.plan_buffers(inst.params, input_specs)
            except Exception:
                continue
            if spec is None:
                continue
            shape, dtype = spec
            # Cross-validate the declaration against the recorded output;
            # a lying plan_buffers must not get arena storage.
            if tuple(shape) != data.shape or np.dtype(dtype) != inst.out_dtype:
                continue
            out_specs[i] = (tuple(shape), np.dtype(dtype).str)
            scratch_specs[i] = tuple(
                (tuple(s), np.dtype(d).str, life) for s, d, life in scratch)

        stat_slots: list[int] = []
        for kind, ref, _callback in self.stat_hooks:
            if kind == "slots":
                stat_slots.extend(ref)

        plan = memplan.build_plan(memplan.PlanInputs(
            n_inst=n,
            out_slots=[inst.out_slot for inst in insts],
            input_slots=[inst.input_slots for inst in insts],
            out_specs=out_specs,
            scratch_specs=scratch_specs,
            saved_slots=saved_slots,
            backward_time=bwd_time,
            stat_slots=tuple(stat_slots),
            alias_of=alias_of,
            seed_slot=self.seed_slot,
            tape_fingerprint=(self.fingerprint, self.input_signature),
        ))
        if not plan.items:
            self._plan_failed = True
            return
        self.plan = plan

    def _replay_backward(self, values, ctxs) -> None:
        # Mirrors Tensor.backward statement for statement, with slot ids in
        # place of tensor ids; any divergence here breaks the bit-for-bit
        # parity guarantee (float accumulation order matters).
        grads: dict[int, np.ndarray] = {self.seed_slot: self.seed_grad}
        owned: set[int] = set()
        for kind, ref in self.schedule:
            if kind == _LEAF:
                node = self.param_of_slot[ref]
                node_grad = grads.pop(ref, None)
                if node_grad is None:
                    continue
                if node_grad.dtype != node._data.dtype:
                    node_grad = node_grad.astype(node._data.dtype)
                    owned.add(ref)
                buf = node.grad
                if buf is None:
                    node.grad = node_grad if ref in owned else node_grad.copy()
                elif buf.shape == node_grad.shape and buf.dtype == node_grad.dtype:
                    np.add(buf, node_grad, out=buf)
                else:
                    node.grad = buf + node_grad
                continue
            inst = self.instructions[ref]
            node_grad = grads.pop(inst.out_slot, None)
            if node_grad is None:
                continue
            contributions = inst.op_cls.backward(ctxs[ref], node_grad)
            for sid, requires, contribution in zip(
                    inst.input_slots, inst.needs_input_grad, contributions):
                if contribution is None or not requires:
                    continue
                contribution = np.asarray(contribution)
                accumulated = grads.get(sid)
                if accumulated is None:
                    grads[sid] = contribution
                elif (sid in owned and accumulated.shape == contribution.shape
                      and accumulated.dtype == contribution.dtype):
                    np.add(accumulated, contribution, out=accumulated)
                else:
                    grads[sid] = accumulated + contribution
                    owned.add(sid)


@contextlib.contextmanager
def capture(inputs=()):
    """Record every op dispatch and the backward walk into a fresh Tape.

    ``inputs`` are the per-step arrays (by identity): tensors wrapping them
    become input leaves, rebound positionally at replay.  The wrapped code
    runs eagerly and correctly; the yielded tape is finalized (validity
    environment pinned, capture state released) on exit.  Captures do not
    nest.
    """
    if engine._ACTIVE_CAPTURE is not None:
        raise RuntimeError("a tape capture is already active")
    tape = Tape(inputs)
    # Per-process capture slot, deliberately: each worker records and
    # replays its own tape; only (loss, grads, buffers) cross the pipe,
    # so the parent never needs to observe a worker's capture state.
    engine._ACTIVE_CAPTURE = tape  # repro-lint: disable=MP002
    try:
        yield tape
    finally:
        engine._ACTIVE_CAPTURE = None  # repro-lint: disable=MP002
        tape._end_capture()


class TapedFunction:
    """The capture -> validate -> replay -> invalidate lifecycle as a wrapper.

    ``fn(*arrays)`` must run one complete forward+backward over its array
    arguments and return the loss tensor.  The first call per input
    signature runs eagerly under :func:`capture`; later calls replay the
    cached tape when :meth:`Tape.check` passes, fall back to eager (and
    recapture) when it does not, and give up permanently — pure eager from
    then on — if a capture reports the step unsafe to tape (per-step
    randomness, non-op side effects).
    """

    def __init__(self, fn, name: str = ""):
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "step")
        self.tapes: dict = {}
        self.enabled = True
        self.disabled_reason: str | None = None
        self.stats = {"captures": 0, "replays": 0, "eager": 0, "invalidations": 0}

    @staticmethod
    def _signature(arrays) -> tuple:
        return tuple((np.asarray(a).shape, np.asarray(a).dtype.str)
                     for a in arrays)

    def reset(self) -> None:
        """Drop every cached tape and re-enable capturing."""
        self.tapes.clear()
        self.enabled = True
        self.disabled_reason = None

    def __call__(self, *arrays):
        if (not self.enabled or engine._ACTIVE_CAPTURE is not None
                or not engine.is_grad_enabled()
                or anomaly.is_anomaly_enabled()):
            self.stats["eager"] += 1
            return self.fn(*arrays)
        key = (self._signature(arrays), engine.fusion_enabled())
        tape = self.tapes.get(key)
        if tape is not None:
            if tape.check(arrays) is None:
                self.stats["replays"] += 1
                return engine._TENSOR_CLS(tape.replay(arrays))
            del self.tapes[key]
            self.stats["invalidations"] += 1
        with capture(arrays) as tape:
            result = self.fn(*arrays)
        if tape.complete:
            self.tapes[key] = tape
            self.stats["captures"] += 1
        elif tape.unsafe:
            # A property of the step itself, not of this batch: stop paying
            # the capture overhead and run eagerly from now on.
            self.enabled = False
            self.disabled_reason = tape.unsafe_reason
        return result
