"""Registered :class:`~repro.tensor.engine.Op` classes for every primitive.

Part one is the core surface that used to live as per-call closures in
``tensor.py``/``ops.py`` (arithmetic, shape, reductions, activations); part
two is the fused kernels (linear+bias[+relu], l2-normalize, row-wise cosine,
normalized MSE, batch-norm) whose backward passes compute all input
gradients from shared intermediates in a single call.  Each fused op has an
exact unfused reference composition — the parity property tests in
``tests/tensor/test_fusion_parity.py`` pin forward and gradients of the two
paths against each other.

All ops save what backward needs eagerly via ``ctx.save(...)`` and consult
``ctx.needs_input_grad`` to skip gradients nobody will consume.  ``None``
marks a skipped input gradient.

Allocation discipline (PR 8): ops declare their storage via
``plan_buffers`` and support an ``out=`` keyword so the tape's memory
planner can hand them arena slabs.  The ``out`` path must be **bit-for-bit
identical** to the allocating path — it therefore mirrors the natural
computation as the same ufunc chain with ``out=`` at every step, never a
mathematically-equivalent rewrite.  Scratch buffers are obtained from
:func:`repro.tensor.memplan.acquire` in exactly the order they were
declared (the planner stages slabs positionally by (shape, dtype) and the
first match wins, so out-of-order acquisition could swap two same-shaped
slabs with different lifetimes).  With ``out=None`` every op runs its
original allocating code path — eager dispatch is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import memplan
from repro.tensor.engine import Context, Op, register

_BOOL = np.dtype(np.bool_).str


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _promote(*dtype_strs) -> str:
    return np.result_type(*dtype_strs).str


def _reduced_shape(shape, axis, keepdims: bool) -> tuple[int, ...]:
    """Output shape of a reduction over ``axis`` (None/int/tuple, negatives ok)."""
    if axis is None:
        axes = tuple(range(len(shape)))
    elif isinstance(axis, (tuple, list)):
        axes = tuple(a % len(shape) for a in axis)
    else:
        axes = (axis % len(shape),)
    if keepdims:
        return tuple(1 if i in axes else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in axes)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
@register
class AddOp(Op):
    name = "add"

    @staticmethod
    def forward(ctx: Context, a, b, out=None):
        ctx.shapes = (a.shape, b.shape)
        if out is None:
            return a + b
        return np.add(a, b, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sa, da), (sb, db) = input_specs
        return (np.broadcast_shapes(sa, sb), _promote(da, db)), ()

    @staticmethod
    def backward(ctx: Context, grad):
        sa, sb = ctx.shapes
        ga = _unbroadcast(grad, sa) if ctx.needs_input_grad[0] else None
        gb = _unbroadcast(grad, sb) if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class NegOp(Op):
    name = "neg"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        if out is None:
            return -a
        return np.negative(a, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        return (-grad,)


@register
class SubOp(Op):
    name = "sub"

    @staticmethod
    def forward(ctx: Context, a, b, out=None):
        ctx.shapes = (a.shape, b.shape)
        if out is None:
            return a - b
        return np.subtract(a, b, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sa, da), (sb, db) = input_specs
        return (np.broadcast_shapes(sa, sb), _promote(da, db)), ()

    @staticmethod
    def backward(ctx: Context, grad):
        sa, sb = ctx.shapes
        ga = _unbroadcast(grad, sa) if ctx.needs_input_grad[0] else None
        gb = _unbroadcast(-grad, sb) if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class MulOp(Op):
    name = "mul"

    @staticmethod
    def forward(ctx: Context, a, b, out=None):
        ctx.save(a, b)
        if out is None:
            return a * b
        return np.multiply(a, b, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sa, da), (sb, db) = input_specs
        return (np.broadcast_shapes(sa, sb), _promote(da, db)), ()

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        ga = _unbroadcast(grad * b, a.shape) if ctx.needs_input_grad[0] else None
        gb = _unbroadcast(grad * a, b.shape) if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class DivOp(Op):
    name = "div"

    @staticmethod
    def forward(ctx: Context, a, b, out=None):
        ctx.save(a, b)
        if out is None:
            return a / b
        return np.true_divide(a, b, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sa, da), (sb, db) = input_specs
        return (np.broadcast_shapes(sa, sb), _promote(da, db)), ()

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        ga = _unbroadcast(grad / b, a.shape) if ctx.needs_input_grad[0] else None
        gb = (_unbroadcast(-grad * a / (b ** 2), b.shape)
              if ctx.needs_input_grad[1] else None)
        return ga, gb


@register
class PowOp(Op):
    name = "pow"

    @staticmethod
    def forward(ctx: Context, a, *, exponent: float, out=None):
        ctx.save(a)
        ctx.exponent = exponent
        if out is None:
            return a ** exponent
        # Mirror numpy's ``**`` scalar fast paths so the out= result is
        # bit-for-bit the natural one (a test pins this equivalence).
        if exponent == 2:
            return np.square(a, out=out)
        if exponent == 1:
            np.copyto(out, a)
            return out
        if exponent == 0.5:
            return np.sqrt(a, out=out)
        if exponent == -1:
            return np.reciprocal(a, out=out)
        return np.power(a, exponent, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        e = ctx.exponent
        return (grad * e * a ** (e - 1),)


@register
class MatMulOp(Op):
    name = "matmul"

    @staticmethod
    def forward(ctx: Context, a, b, out=None):
        ctx.save(a, b)
        if out is None:
            return a @ b
        return np.matmul(a, b, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sa, da), (sb, db) = input_specs
        # Only the 2-D x 2-D hot case takes caller storage; the gufunc
        # out= semantics for 1-D operands are not worth mirroring.
        if len(sa) != 2 or len(sb) != 2:
            return None, ()
        return ((sa[0], sb[1]), _promote(da, db)), ()

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        ga = gb = None
        if ctx.needs_input_grad[0]:
            if b.ndim == 1:
                ga = np.outer(grad, b) if a.ndim == 2 else grad * b
            else:
                ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
        if ctx.needs_input_grad[1]:
            if a.ndim == 1:
                gb = np.outer(a, grad) if b.ndim == 2 else grad * a
            else:
                gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
        return ga, gb


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
@register
class ReshapeOp(Op):
    # Returns a view of its input — owns no storage, planner-exempt (the
    # planner detects the alias and unions the lifetimes instead).
    name = "reshape"

    @staticmethod
    def forward(ctx: Context, a, *, shape):
        ctx.original = a.shape
        return a.reshape(shape)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad.reshape(ctx.original),)


@register
class TransposeOp(Op):
    # View op, like reshape: no storage of its own.
    name = "transpose"

    @staticmethod
    def forward(ctx: Context, a, *, axes):
        ctx.inverse = np.argsort(axes)
        return a.transpose(axes)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad.transpose(ctx.inverse),)


@register
class GetItemOp(Op):
    # Output shape depends on the index expression (basic vs advanced
    # indexing, bool masks); not worth declaring — stays on the fallback
    # allocator.
    name = "getitem"

    @staticmethod
    def forward(ctx: Context, a, *, index):
        ctx.index = index
        ctx.shape = a.shape
        ctx.dtype = a.dtype
        return np.asarray(a[index])

    @staticmethod
    def backward(ctx: Context, grad):
        full = np.zeros(ctx.shape, dtype=ctx.dtype)
        np.add.at(full, ctx.index, grad)
        return (full,)


@register
class ConcatOp(Op):
    name = "concat"

    @staticmethod
    def forward(ctx: Context, *arrays, axis: int = 0, out=None):
        ctx.axis = axis
        ctx.offsets = np.cumsum([0] + [a.shape[axis] for a in arrays])
        if out is None:
            return np.concatenate(arrays, axis=axis)
        return np.concatenate(arrays, axis=axis, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        axis = params.get("axis", 0)
        shapes = [s for s, _d in input_specs]
        axis_n = axis % len(shapes[0])
        shape = list(shapes[0])
        shape[axis_n] = sum(s[axis_n] for s in shapes)
        return (tuple(shape), _promote(*[d for _s, d in input_specs])), ()

    @staticmethod
    def backward(ctx: Context, grad):
        axis, offsets = ctx.axis, ctx.offsets
        slicer = [slice(None)] * grad.ndim
        grads = []
        for i in range(len(offsets) - 1):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)


@register
class StackOp(Op):
    name = "stack"

    @staticmethod
    def forward(ctx: Context, *arrays, axis: int = 0, out=None):
        ctx.axis = axis
        ctx.count = len(arrays)
        if out is None:
            return np.stack(arrays, axis=axis)
        return np.stack(arrays, axis=axis, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        axis = params.get("axis", 0)
        shapes = [s for s, _d in input_specs]
        ndim = len(shapes[0]) + 1
        axis_n = axis % ndim
        shape = list(shapes[0])
        shape.insert(axis_n, len(shapes))
        return (tuple(shape), _promote(*[d for _s, d in input_specs])), ()

    @staticmethod
    def backward(ctx: Context, grad):
        return tuple(np.take(grad, i, axis=ctx.axis) for i in range(ctx.count))


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
@register
class SumOp(Op):
    name = "sum"

    @staticmethod
    def forward(ctx: Context, a, *, axis=None, keepdims: bool = False, out=None):
        ctx.shape = a.shape
        ctx.axis = axis
        ctx.keepdims = keepdims
        if out is None:
            return np.asarray(a.sum(axis=axis, keepdims=keepdims))
        a.sum(axis=axis, keepdims=keepdims, out=out)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        axis = params.get("axis")
        keepdims = params.get("keepdims", False)
        return (_reduced_shape(shape, axis, keepdims), dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        if ctx.axis is None:
            return (np.broadcast_to(grad, ctx.shape),)
        expanded = grad if ctx.keepdims else np.expand_dims(grad, ctx.axis)
        return (np.broadcast_to(expanded, ctx.shape),)


@register
class MaxOp(Op):
    name = "max"

    @staticmethod
    def forward(ctx: Context, a, *, axis=None, keepdims: bool = False, out=None):
        if out is None:
            out = np.asarray(a.max(axis=axis, keepdims=keepdims))
        else:
            a.max(axis=axis, keepdims=keepdims, out=out)
        ctx.save(a, out)
        ctx.axis = axis
        ctx.keepdims = keepdims
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        axis = params.get("axis")
        keepdims = params.get("keepdims", False)
        return (_reduced_shape(shape, axis, keepdims), dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        a, out = ctx.saved
        axis, keepdims = ctx.axis, ctx.keepdims
        if axis is None:
            mask = (a == out).astype(grad.dtype)
            mask /= mask.sum()
            return (mask * grad,)
        expanded = out if keepdims else np.expand_dims(out, axis)
        mask = (a == expanded).astype(grad.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        g_expanded = grad if keepdims else np.expand_dims(grad, axis)
        return (mask * g_expanded,)


@register
class AbsOp(Op):
    name = "abs"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        ctx.save(a)
        if out is None:
            return np.abs(a)
        return np.absolute(a, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        return (grad * np.sign(a),)


@register
class TraceOp(Op):
    # Rare scalar-output op; not worth an out= path.
    name = "trace"

    @staticmethod
    def forward(ctx: Context, a):
        ctx.shape = a.shape
        ctx.dtype = a.dtype
        return np.asarray(np.trace(a), dtype=a.dtype)

    @staticmethod
    def backward(ctx: Context, grad):
        n, m = ctx.shape
        return (np.eye(n, m, dtype=ctx.dtype) * grad,)


# ----------------------------------------------------------------------
# Pointwise nonlinearities
# ----------------------------------------------------------------------
@register
class ExpOp(Op):
    name = "exp"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        out = np.exp(a) if out is None else np.exp(a, out=out)
        ctx.save(out)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * out,)


@register
class LogOp(Op):
    name = "log"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        ctx.save(a)
        if out is None:
            return np.log(a)
        return np.log(a, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        return (grad / a,)


@register
class SqrtOp(Op):
    name = "sqrt"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        out = np.sqrt(a) if out is None else np.sqrt(a, out=out)
        ctx.save(out)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * 0.5 / out,)


@register
class TanhOp(Op):
    name = "tanh"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        out = np.tanh(a) if out is None else np.tanh(a, out=out)
        ctx.save(out)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * (1.0 - out * out),)


@register
class SigmoidOp(Op):
    name = "sigmoid"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        if out is None:
            out = 1.0 / (1.0 + np.exp(-a))
        else:
            # Same ufunc chain as the natural expression, applied in place.
            np.negative(a, out=out)
            np.exp(out, out=out)
            np.add(out, 1.0, out=out)
            np.true_divide(1.0, out, out=out)
        ctx.save(out)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ()

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * out * (1.0 - out),)


@register
class ReluOp(Op):
    name = "relu"

    @staticmethod
    def forward(ctx: Context, a, out=None):
        if out is None:
            ctx.mask = a > 0
            return np.maximum(a, 0.0)
        mask = memplan.acquire(a.shape, np.bool_)
        np.greater(a, 0, out=mask)
        ctx.mask = mask
        return np.maximum(a, 0.0, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        return (shape, dtype), ((shape, _BOOL, "bwd"),)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad * ctx.mask,)


@register
class LeakyReluOp(Op):
    # np.where has no out= form; this op stays on the fallback allocator.
    name = "leaky_relu"

    @staticmethod
    def forward(ctx: Context, a, *, negative_slope: float = 0.01):
        ctx.slope = np.where(a > 0, 1.0, negative_slope).astype(a.dtype)
        return np.where(a > 0, a, negative_slope * a)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad * ctx.slope,)


@register
class MaximumOp(Op):
    name = "maximum"

    @staticmethod
    def forward(ctx: Context, a, b, out=None):
        ctx.shapes = (a.shape, b.shape)
        if out is None:
            ctx.a_wins = (a >= b).astype(a.dtype)
            return np.maximum(a, b)
        shape = np.broadcast_shapes(a.shape, b.shape)
        wins = memplan.acquire(shape, a.dtype)
        ge = memplan.acquire(shape, np.bool_)
        np.greater_equal(a, b, out=ge)
        np.copyto(wins, ge)
        ctx.a_wins = wins
        np.maximum(a, b, out=out)
        memplan.release(ge)
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sa, da), (sb, db) = input_specs
        shape = np.broadcast_shapes(sa, sb)
        return ((shape, _promote(da, db)),
                ((shape, da, "bwd"), (shape, _BOOL, "fwd")))

    @staticmethod
    def backward(ctx: Context, grad):
        sa, sb = ctx.shapes
        ga = (_unbroadcast(grad * ctx.a_wins, sa)
              if ctx.needs_input_grad[0] else None)
        gb = (_unbroadcast(grad * (1.0 - ctx.a_wins), sb)
              if ctx.needs_input_grad[1] else None)
        return ga, gb


@register
class WhereOp(Op):
    # np.where has no out= form; stays on the fallback allocator.
    name = "where"

    @staticmethod
    def forward(ctx: Context, a, b, *, condition):
        ctx.condition = np.asarray(condition)
        ctx.shapes = (a.shape, b.shape)
        return np.where(ctx.condition, a, b)

    @staticmethod
    def backward(ctx: Context, grad):
        cond = ctx.condition
        sa, sb = ctx.shapes
        ga = (_unbroadcast(np.where(cond, grad, 0.0), sa)
              if ctx.needs_input_grad[0] else None)
        gb = (_unbroadcast(np.where(cond, 0.0, grad), sb)
              if ctx.needs_input_grad[1] else None)
        return ga, gb


# ----------------------------------------------------------------------
# Fused kernels
# ----------------------------------------------------------------------
@register
class LinearOp(Op):
    """Fused ``x @ w + b`` for 2-D activations (one kernel, one tape node).

    Reference composition: ``matmul`` then broadcast ``add``.
    """

    name = "linear"

    @staticmethod
    def forward(ctx: Context, x, w, *bias, out=None):
        ctx.save(x, w)
        if out is None:
            out = x @ w
        else:
            np.matmul(x, w, out=out)
        if bias:
            out += bias[0]
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sx, dx), (sw, dw) = input_specs[:2]
        if len(sx) != 2 or len(sw) != 2:
            return None, ()
        return ((sx[0], sw[1]), _promote(dx, dw)), ()

    @staticmethod
    def backward(ctx: Context, grad):
        x, w = ctx.saved
        gx = grad @ w.T if ctx.needs_input_grad[0] else None
        gw = x.T @ grad if ctx.needs_input_grad[1] else None
        if len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            return gx, gw, grad.sum(axis=0)
        return (gx, gw) + (None,) * (len(ctx.needs_input_grad) - 2)


@register
class LinearReluOp(Op):
    """Fused ``relu(x @ w + b)`` — the MLP/projector hidden-layer kernel.

    Reference composition: ``matmul`` + ``add`` + ``relu``.  The pre-ReLU
    activation never materializes on the tape; only its sign mask survives
    to backward.
    """

    name = "linear_relu"

    @staticmethod
    def forward(ctx: Context, x, w, *bias, out=None):
        if out is None:
            y = x @ w
            if bias:
                y += bias[0]
            mask = y > 0
            ctx.save(x, w, mask)
            return np.maximum(y, 0.0, out=y)
        np.matmul(x, w, out=out)
        if bias:
            out += bias[0]
        mask = memplan.acquire(out.shape, np.bool_)
        np.greater(out, 0, out=mask)
        ctx.save(x, w, mask)
        return np.maximum(out, 0.0, out=out)

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sx, dx), (sw, dw) = input_specs[:2]
        if len(sx) != 2 or len(sw) != 2:
            return None, ()
        shape = (sx[0], sw[1])
        return (shape, _promote(dx, dw)), ((shape, _BOOL, "bwd"),)

    @staticmethod
    def backward(ctx: Context, grad):
        x, w, mask = ctx.saved
        gy = grad * mask
        gx = gy @ w.T if ctx.needs_input_grad[0] else None
        gw = x.T @ gy if ctx.needs_input_grad[1] else None
        if len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            return gx, gw, gy.sum(axis=0)
        return (gx, gw) + (None,) * (len(ctx.needs_input_grad) - 2)


@register
class L2NormalizeOp(Op):
    """Fused ``x / sqrt(sum(x*x, axis) + eps)``.

    Reference composition: ``mul`` + ``sum`` + ``add`` + ``sqrt`` + ``div``
    (5 tape nodes).  Backward uses the closed form
    ``dx = (g - out * sum(g * out, axis)) / norm``, exact including eps
    because ``out * norm == x`` identically.
    """

    name = "l2normalize"

    @staticmethod
    def forward(ctx: Context, x, *, axis: int = -1, eps: float = 1e-12, out=None):
        if out is None:
            norm = np.sqrt((x * x).sum(axis=axis, keepdims=True) + eps)
            out = x / norm
        else:
            sq = memplan.acquire(x.shape, x.dtype)
            norm = memplan.acquire(
                _reduced_shape(x.shape, axis, True), x.dtype)
            np.multiply(x, x, out=sq)
            sq.sum(axis=axis, keepdims=True, out=norm)
            np.add(norm, eps, out=norm)
            np.sqrt(norm, out=norm)
            np.true_divide(x, norm, out=out)
            memplan.release(sq)
        ctx.save(out, norm)
        ctx.axis = axis
        return out

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        axis = params.get("axis", -1)
        red = _reduced_shape(shape, axis, True)
        return (shape, dtype), ((shape, dtype, "fwd"), (red, dtype, "bwd"))

    @staticmethod
    def backward(ctx: Context, grad):
        out, norm = ctx.saved
        inner = (grad * out).sum(axis=ctx.axis, keepdims=True)
        return ((grad - out * inner) / norm,)


@register
class CosineRowsOp(Op):
    """Fused row-wise cosine similarity ``sum(l2n(a) * l2n(b), axis)``.

    Reference composition: two ``l2_normalize`` chains + ``mul`` + ``sum``
    (12 tape nodes).  Shares the normalized activations between the two
    input gradients:

    ``ga = g * (b_hat - c * a_hat) / ||a||``,
    ``gb = g * (a_hat - c * b_hat) / ||b||``.
    """

    name = "cosine_rows"

    @staticmethod
    def forward(ctx: Context, a, b, *, axis: int = -1, eps: float = 1e-12,
                out=None):
        if out is None:
            na = np.sqrt((a * a).sum(axis=axis, keepdims=True) + eps)
            nb = np.sqrt((b * b).sum(axis=axis, keepdims=True) + eps)
            ah = a / na
            bh = b / nb
            cos = (ah * bh).sum(axis=axis)
        else:
            red = _reduced_shape(a.shape, axis, True)
            sq = memplan.acquire(a.shape, a.dtype)
            na = memplan.acquire(red, a.dtype)
            nb = memplan.acquire(red, a.dtype)
            ah = memplan.acquire(a.shape, a.dtype)
            bh = memplan.acquire(a.shape, a.dtype)
            np.multiply(a, a, out=sq)
            sq.sum(axis=axis, keepdims=True, out=na)
            np.add(na, eps, out=na)
            np.sqrt(na, out=na)
            np.multiply(b, b, out=sq)
            sq.sum(axis=axis, keepdims=True, out=nb)
            np.add(nb, eps, out=nb)
            np.sqrt(nb, out=nb)
            np.true_divide(a, na, out=ah)
            np.true_divide(b, nb, out=bh)
            np.multiply(ah, bh, out=sq)
            sq.sum(axis=axis, out=out)
            memplan.release(sq)
            cos = out
        ctx.save(ah, bh, na, nb)
        ctx.cos_kept = np.expand_dims(cos, axis)
        ctx.axis = axis
        return cos

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sa, da), (sb, db) = input_specs
        if sa != sb or da != db:
            return None, ()
        axis = params.get("axis", -1)
        red = _reduced_shape(sa, axis, True)
        return ((_reduced_shape(sa, axis, False), da),
                ((sa, da, "fwd"), (red, da, "bwd"), (red, da, "bwd"),
                 (sa, da, "bwd"), (sa, da, "bwd")))

    @staticmethod
    def backward(ctx: Context, grad):
        ah, bh, na, nb = ctx.saved
        c = ctx.cos_kept
        g = np.expand_dims(grad, ctx.axis)
        ga = g * (bh - c * ah) / na if ctx.needs_input_grad[0] else None
        gb = g * (ah - c * bh) / nb if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class NormalizedMseOp(Op):
    """Fused BYOL regression loss ``sum((l2n(p) - l2n(t))**2, axis)``.

    Reference composition: two ``l2_normalize`` chains + ``sub`` + ``mul``
    + ``sum``.  With ``d = p_hat - t_hat``:

    ``gp = 2 * (g*d - p_hat * sum(g*d*p_hat, axis)) / ||p||`` and the
    symmetric expression for ``gt``.
    """

    name = "normalized_mse"

    @staticmethod
    def forward(ctx: Context, p, t, *, axis: int = -1, eps: float = 1e-12,
                out=None):
        if out is None:
            np_norm = np.sqrt((p * p).sum(axis=axis, keepdims=True) + eps)
            nt_norm = np.sqrt((t * t).sum(axis=axis, keepdims=True) + eps)
            ph = p / np_norm
            th = t / nt_norm
            diff = ph - th
            result = (diff * diff).sum(axis=axis)
        else:
            red = _reduced_shape(p.shape, axis, True)
            sq = memplan.acquire(p.shape, p.dtype)
            np_norm = memplan.acquire(red, p.dtype)
            nt_norm = memplan.acquire(red, p.dtype)
            ph = memplan.acquire(p.shape, p.dtype)
            th = memplan.acquire(p.shape, p.dtype)
            diff = memplan.acquire(p.shape, p.dtype)
            np.multiply(p, p, out=sq)
            sq.sum(axis=axis, keepdims=True, out=np_norm)
            np.add(np_norm, eps, out=np_norm)
            np.sqrt(np_norm, out=np_norm)
            np.multiply(t, t, out=sq)
            sq.sum(axis=axis, keepdims=True, out=nt_norm)
            np.add(nt_norm, eps, out=nt_norm)
            np.sqrt(nt_norm, out=nt_norm)
            np.true_divide(p, np_norm, out=ph)
            np.true_divide(t, nt_norm, out=th)
            np.subtract(ph, th, out=diff)
            np.multiply(diff, diff, out=sq)
            sq.sum(axis=axis, out=out)
            memplan.release(sq)
            result = out
        ctx.save(ph, th, diff, np_norm, nt_norm)
        ctx.axis = axis
        return result

    @classmethod
    def plan_buffers(cls, params, input_specs):
        (sp, dp), (st, dt) = input_specs
        if sp != st or dp != dt:
            return None, ()
        axis = params.get("axis", -1)
        red = _reduced_shape(sp, axis, True)
        return ((_reduced_shape(sp, axis, False), dp),
                ((sp, dp, "fwd"), (red, dp, "bwd"), (red, dp, "bwd"),
                 (sp, dp, "bwd"), (sp, dp, "bwd"), (sp, dp, "bwd")))

    @staticmethod
    def backward(ctx: Context, grad):
        ph, th, diff, np_norm, nt_norm = ctx.saved
        axis = ctx.axis
        g = np.expand_dims(grad, axis)
        gd = 2.0 * g * diff
        gp = gt = None
        if ctx.needs_input_grad[0]:
            gp = (gd - ph * (gd * ph).sum(axis=axis, keepdims=True)) / np_norm
        if ctx.needs_input_grad[1]:
            gt = (-gd + th * (gd * th).sum(axis=axis, keepdims=True)) / nt_norm
        return gp, gt


@register
class BatchNormOp(Op):
    """Fused train-mode batch normalization ``(x - mean) / sqrt(var + eps)``.

    Reference composition: ``mean``/``var``/``sqrt``/``div`` — roughly 15
    tape nodes per BatchNorm layer.  ``ctx.mean``/``ctx.var`` expose the
    batch statistics (keepdims) so the layer can update running stats
    without recomputing the reductions.  Backward is the standard analytic
    form with full gradient flow through mean and variance:

    ``dx = inv/m * (m*g - sum(g) - xhat * sum(g * xhat))``.
    """

    name = "batch_norm"

    @staticmethod
    def forward(ctx: Context, x, *, axes, eps: float, out=None):
        axes = tuple(axes)
        if out is None:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = np.mean(centered * centered, axis=axes, keepdims=True)
            inv = 1.0 / np.sqrt(var + eps)
            xhat = centered * inv
        else:
            red = _reduced_shape(x.shape, axes, True)
            mean = memplan.acquire(red, x.dtype)
            sq = memplan.acquire(x.shape, x.dtype)
            var = memplan.acquire(red, x.dtype)
            inv = memplan.acquire(red, x.dtype)
            x.mean(axis=axes, keepdims=True, out=mean)
            np.subtract(x, mean, out=out)          # centered, in the out slab
            np.multiply(out, out, out=sq)
            sq.mean(axis=axes, keepdims=True, out=var)
            np.add(var, eps, out=inv)
            np.sqrt(inv, out=inv)
            np.true_divide(1.0, inv, out=inv)
            np.multiply(out, inv, out=out)         # xhat overwrites centered
            memplan.release(sq)
            xhat = out
        ctx.save(xhat, inv)
        ctx.axes = axes
        ctx.m = int(np.prod([x.shape[a] for a in axes]))
        ctx.mean = mean
        ctx.var = var
        return xhat

    @classmethod
    def plan_buffers(cls, params, input_specs):
        ((shape, dtype),) = input_specs
        axes = tuple(params["axes"])
        red = _reduced_shape(shape, axes, True)
        # ``mean``/``var`` are read by the running-stats hook after the
        # forward sweep and ``inv`` by backward — all "bwd" lifetime.
        return (shape, dtype), ((red, dtype, "bwd"), (shape, dtype, "fwd"),
                                (red, dtype, "bwd"), (red, dtype, "bwd"))

    @staticmethod
    def backward(ctx: Context, grad):
        xhat, inv = ctx.saved
        axes, m = ctx.axes, ctx.m
        sum_g = grad.sum(axis=axes, keepdims=True)
        sum_gx = (grad * xhat).sum(axis=axes, keepdims=True)
        return ((inv / m) * (m * grad - sum_g - xhat * sum_gx),)
