"""Registered :class:`~repro.tensor.engine.Op` classes for every primitive.

Part one is the core surface that used to live as per-call closures in
``tensor.py``/``ops.py`` (arithmetic, shape, reductions, activations); part
two is the fused kernels (linear+bias[+relu], l2-normalize, row-wise cosine,
normalized MSE, batch-norm) whose backward passes compute all input
gradients from shared intermediates in a single call.  Each fused op has an
exact unfused reference composition — the parity property tests in
``tests/tensor/test_fusion_parity.py`` pin forward and gradients of the two
paths against each other.

All ops save what backward needs eagerly via ``ctx.save(...)`` and consult
``ctx.needs_input_grad`` to skip gradients nobody will consume.  ``None``
marks a skipped input gradient.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.engine import Context, Op, register


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
@register
class AddOp(Op):
    name = "add"

    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.shapes = (a.shape, b.shape)
        return a + b

    @staticmethod
    def backward(ctx: Context, grad):
        sa, sb = ctx.shapes
        ga = _unbroadcast(grad, sa) if ctx.needs_input_grad[0] else None
        gb = _unbroadcast(grad, sb) if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class NegOp(Op):
    name = "neg"

    @staticmethod
    def forward(ctx: Context, a):
        return -a

    @staticmethod
    def backward(ctx: Context, grad):
        return (-grad,)


@register
class SubOp(Op):
    name = "sub"

    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.shapes = (a.shape, b.shape)
        return a - b

    @staticmethod
    def backward(ctx: Context, grad):
        sa, sb = ctx.shapes
        ga = _unbroadcast(grad, sa) if ctx.needs_input_grad[0] else None
        gb = _unbroadcast(-grad, sb) if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class MulOp(Op):
    name = "mul"

    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.save(a, b)
        return a * b

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        ga = _unbroadcast(grad * b, a.shape) if ctx.needs_input_grad[0] else None
        gb = _unbroadcast(grad * a, b.shape) if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class DivOp(Op):
    name = "div"

    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.save(a, b)
        return a / b

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        ga = _unbroadcast(grad / b, a.shape) if ctx.needs_input_grad[0] else None
        gb = (_unbroadcast(-grad * a / (b ** 2), b.shape)
              if ctx.needs_input_grad[1] else None)
        return ga, gb


@register
class PowOp(Op):
    name = "pow"

    @staticmethod
    def forward(ctx: Context, a, *, exponent: float):
        ctx.save(a)
        ctx.exponent = exponent
        return a ** exponent

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        e = ctx.exponent
        return (grad * e * a ** (e - 1),)


@register
class MatMulOp(Op):
    name = "matmul"

    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.save(a, b)
        return a @ b

    @staticmethod
    def backward(ctx: Context, grad):
        a, b = ctx.saved
        ga = gb = None
        if ctx.needs_input_grad[0]:
            if b.ndim == 1:
                ga = np.outer(grad, b) if a.ndim == 2 else grad * b
            else:
                ga = _unbroadcast(grad @ np.swapaxes(b, -1, -2), a.shape)
        if ctx.needs_input_grad[1]:
            if a.ndim == 1:
                gb = np.outer(a, grad) if b.ndim == 2 else grad * a
            else:
                gb = _unbroadcast(np.swapaxes(a, -1, -2) @ grad, b.shape)
        return ga, gb


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
@register
class ReshapeOp(Op):
    name = "reshape"

    @staticmethod
    def forward(ctx: Context, a, *, shape):
        ctx.original = a.shape
        return a.reshape(shape)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad.reshape(ctx.original),)


@register
class TransposeOp(Op):
    name = "transpose"

    @staticmethod
    def forward(ctx: Context, a, *, axes):
        ctx.inverse = np.argsort(axes)
        return a.transpose(axes)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad.transpose(ctx.inverse),)


@register
class GetItemOp(Op):
    name = "getitem"

    @staticmethod
    def forward(ctx: Context, a, *, index):
        ctx.index = index
        ctx.shape = a.shape
        ctx.dtype = a.dtype
        return np.asarray(a[index])

    @staticmethod
    def backward(ctx: Context, grad):
        full = np.zeros(ctx.shape, dtype=ctx.dtype)
        np.add.at(full, ctx.index, grad)
        return (full,)


@register
class ConcatOp(Op):
    name = "concat"

    @staticmethod
    def forward(ctx: Context, *arrays, axis: int = 0):
        ctx.axis = axis
        ctx.offsets = np.cumsum([0] + [a.shape[axis] for a in arrays])
        return np.concatenate(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad):
        axis, offsets = ctx.axis, ctx.offsets
        slicer = [slice(None)] * grad.ndim
        grads = []
        for i in range(len(offsets) - 1):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)


@register
class StackOp(Op):
    name = "stack"

    @staticmethod
    def forward(ctx: Context, *arrays, axis: int = 0):
        ctx.axis = axis
        ctx.count = len(arrays)
        return np.stack(arrays, axis=axis)

    @staticmethod
    def backward(ctx: Context, grad):
        return tuple(np.take(grad, i, axis=ctx.axis) for i in range(ctx.count))


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
@register
class SumOp(Op):
    name = "sum"

    @staticmethod
    def forward(ctx: Context, a, *, axis=None, keepdims: bool = False):
        ctx.shape = a.shape
        ctx.axis = axis
        ctx.keepdims = keepdims
        return np.asarray(a.sum(axis=axis, keepdims=keepdims))

    @staticmethod
    def backward(ctx: Context, grad):
        if ctx.axis is None:
            return (np.broadcast_to(grad, ctx.shape),)
        expanded = grad if ctx.keepdims else np.expand_dims(grad, ctx.axis)
        return (np.broadcast_to(expanded, ctx.shape),)


@register
class MaxOp(Op):
    name = "max"

    @staticmethod
    def forward(ctx: Context, a, *, axis=None, keepdims: bool = False):
        out = np.asarray(a.max(axis=axis, keepdims=keepdims))
        ctx.save(a, out)
        ctx.axis = axis
        ctx.keepdims = keepdims
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        a, out = ctx.saved
        axis, keepdims = ctx.axis, ctx.keepdims
        if axis is None:
            mask = (a == out).astype(grad.dtype)
            mask /= mask.sum()
            return (mask * grad,)
        expanded = out if keepdims else np.expand_dims(out, axis)
        mask = (a == expanded).astype(grad.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        g_expanded = grad if keepdims else np.expand_dims(grad, axis)
        return (mask * g_expanded,)


@register
class AbsOp(Op):
    name = "abs"

    @staticmethod
    def forward(ctx: Context, a):
        ctx.save(a)
        return np.abs(a)

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        return (grad * np.sign(a),)


@register
class TraceOp(Op):
    name = "trace"

    @staticmethod
    def forward(ctx: Context, a):
        ctx.shape = a.shape
        ctx.dtype = a.dtype
        return np.asarray(np.trace(a), dtype=a.dtype)

    @staticmethod
    def backward(ctx: Context, grad):
        n, m = ctx.shape
        return (np.eye(n, m, dtype=ctx.dtype) * grad,)


# ----------------------------------------------------------------------
# Pointwise nonlinearities
# ----------------------------------------------------------------------
@register
class ExpOp(Op):
    name = "exp"

    @staticmethod
    def forward(ctx: Context, a):
        out = np.exp(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * out,)


@register
class LogOp(Op):
    name = "log"

    @staticmethod
    def forward(ctx: Context, a):
        ctx.save(a)
        return np.log(a)

    @staticmethod
    def backward(ctx: Context, grad):
        (a,) = ctx.saved
        return (grad / a,)


@register
class SqrtOp(Op):
    name = "sqrt"

    @staticmethod
    def forward(ctx: Context, a):
        out = np.sqrt(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * 0.5 / out,)


@register
class TanhOp(Op):
    name = "tanh"

    @staticmethod
    def forward(ctx: Context, a):
        out = np.tanh(a)
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * (1.0 - out * out),)


@register
class SigmoidOp(Op):
    name = "sigmoid"

    @staticmethod
    def forward(ctx: Context, a):
        out = 1.0 / (1.0 + np.exp(-a))
        ctx.save(out)
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        (out,) = ctx.saved
        return (grad * out * (1.0 - out),)


@register
class ReluOp(Op):
    name = "relu"

    @staticmethod
    def forward(ctx: Context, a):
        ctx.mask = a > 0
        return np.maximum(a, 0.0)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad * ctx.mask,)


@register
class LeakyReluOp(Op):
    name = "leaky_relu"

    @staticmethod
    def forward(ctx: Context, a, *, negative_slope: float = 0.01):
        ctx.slope = np.where(a > 0, 1.0, negative_slope).astype(a.dtype)
        return np.where(a > 0, a, negative_slope * a)

    @staticmethod
    def backward(ctx: Context, grad):
        return (grad * ctx.slope,)


@register
class MaximumOp(Op):
    name = "maximum"

    @staticmethod
    def forward(ctx: Context, a, b):
        ctx.a_wins = (a >= b).astype(a.dtype)
        ctx.shapes = (a.shape, b.shape)
        return np.maximum(a, b)

    @staticmethod
    def backward(ctx: Context, grad):
        sa, sb = ctx.shapes
        ga = (_unbroadcast(grad * ctx.a_wins, sa)
              if ctx.needs_input_grad[0] else None)
        gb = (_unbroadcast(grad * (1.0 - ctx.a_wins), sb)
              if ctx.needs_input_grad[1] else None)
        return ga, gb


@register
class WhereOp(Op):
    name = "where"

    @staticmethod
    def forward(ctx: Context, a, b, *, condition):
        ctx.condition = np.asarray(condition)
        ctx.shapes = (a.shape, b.shape)
        return np.where(ctx.condition, a, b)

    @staticmethod
    def backward(ctx: Context, grad):
        cond = ctx.condition
        sa, sb = ctx.shapes
        ga = (_unbroadcast(np.where(cond, grad, 0.0), sa)
              if ctx.needs_input_grad[0] else None)
        gb = (_unbroadcast(np.where(cond, 0.0, grad), sb)
              if ctx.needs_input_grad[1] else None)
        return ga, gb


# ----------------------------------------------------------------------
# Fused kernels
# ----------------------------------------------------------------------
@register
class LinearOp(Op):
    """Fused ``x @ w + b`` for 2-D activations (one kernel, one tape node).

    Reference composition: ``matmul`` then broadcast ``add``.
    """

    name = "linear"

    @staticmethod
    def forward(ctx: Context, x, w, *bias):
        ctx.save(x, w)
        out = x @ w
        if bias:
            out += bias[0]
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        x, w = ctx.saved
        gx = grad @ w.T if ctx.needs_input_grad[0] else None
        gw = x.T @ grad if ctx.needs_input_grad[1] else None
        if len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            return gx, gw, grad.sum(axis=0)
        return (gx, gw) + (None,) * (len(ctx.needs_input_grad) - 2)


@register
class LinearReluOp(Op):
    """Fused ``relu(x @ w + b)`` — the MLP/projector hidden-layer kernel.

    Reference composition: ``matmul`` + ``add`` + ``relu``.  The pre-ReLU
    activation never materializes on the tape; only its sign mask survives
    to backward.
    """

    name = "linear_relu"

    @staticmethod
    def forward(ctx: Context, x, w, *bias):
        y = x @ w
        if bias:
            y += bias[0]
        mask = y > 0
        ctx.save(x, w, mask)
        return np.maximum(y, 0.0, out=y)

    @staticmethod
    def backward(ctx: Context, grad):
        x, w, mask = ctx.saved
        gy = grad * mask
        gx = gy @ w.T if ctx.needs_input_grad[0] else None
        gw = x.T @ gy if ctx.needs_input_grad[1] else None
        if len(ctx.needs_input_grad) > 2 and ctx.needs_input_grad[2]:
            return gx, gw, gy.sum(axis=0)
        return (gx, gw) + (None,) * (len(ctx.needs_input_grad) - 2)


@register
class L2NormalizeOp(Op):
    """Fused ``x / sqrt(sum(x*x, axis) + eps)``.

    Reference composition: ``mul`` + ``sum`` + ``add`` + ``sqrt`` + ``div``
    (5 tape nodes).  Backward uses the closed form
    ``dx = (g - out * sum(g * out, axis)) / norm``, exact including eps
    because ``out * norm == x`` identically.
    """

    name = "l2normalize"

    @staticmethod
    def forward(ctx: Context, x, *, axis: int = -1, eps: float = 1e-12):
        norm = np.sqrt((x * x).sum(axis=axis, keepdims=True) + eps)
        out = x / norm
        ctx.save(out, norm)
        ctx.axis = axis
        return out

    @staticmethod
    def backward(ctx: Context, grad):
        out, norm = ctx.saved
        inner = (grad * out).sum(axis=ctx.axis, keepdims=True)
        return ((grad - out * inner) / norm,)


@register
class CosineRowsOp(Op):
    """Fused row-wise cosine similarity ``sum(l2n(a) * l2n(b), axis)``.

    Reference composition: two ``l2_normalize`` chains + ``mul`` + ``sum``
    (12 tape nodes).  Shares the normalized activations between the two
    input gradients:

    ``ga = g * (b_hat - c * a_hat) / ||a||``,
    ``gb = g * (a_hat - c * b_hat) / ||b||``.
    """

    name = "cosine_rows"

    @staticmethod
    def forward(ctx: Context, a, b, *, axis: int = -1, eps: float = 1e-12):
        na = np.sqrt((a * a).sum(axis=axis, keepdims=True) + eps)
        nb = np.sqrt((b * b).sum(axis=axis, keepdims=True) + eps)
        ah = a / na
        bh = b / nb
        cos = (ah * bh).sum(axis=axis)
        ctx.save(ah, bh, na, nb)
        ctx.cos_kept = np.expand_dims(cos, axis)
        ctx.axis = axis
        return cos

    @staticmethod
    def backward(ctx: Context, grad):
        ah, bh, na, nb = ctx.saved
        c = ctx.cos_kept
        g = np.expand_dims(grad, ctx.axis)
        ga = g * (bh - c * ah) / na if ctx.needs_input_grad[0] else None
        gb = g * (ah - c * bh) / nb if ctx.needs_input_grad[1] else None
        return ga, gb


@register
class NormalizedMseOp(Op):
    """Fused BYOL regression loss ``sum((l2n(p) - l2n(t))**2, axis)``.

    Reference composition: two ``l2_normalize`` chains + ``sub`` + ``mul``
    + ``sum``.  With ``d = p_hat - t_hat``:

    ``gp = 2 * (g*d - p_hat * sum(g*d*p_hat, axis)) / ||p||`` and the
    symmetric expression for ``gt``.
    """

    name = "normalized_mse"

    @staticmethod
    def forward(ctx: Context, p, t, *, axis: int = -1, eps: float = 1e-12):
        np_norm = np.sqrt((p * p).sum(axis=axis, keepdims=True) + eps)
        nt_norm = np.sqrt((t * t).sum(axis=axis, keepdims=True) + eps)
        ph = p / np_norm
        th = t / nt_norm
        diff = ph - th
        ctx.save(ph, th, diff, np_norm, nt_norm)
        ctx.axis = axis
        return (diff * diff).sum(axis=axis)

    @staticmethod
    def backward(ctx: Context, grad):
        ph, th, diff, np_norm, nt_norm = ctx.saved
        axis = ctx.axis
        g = np.expand_dims(grad, axis)
        gd = 2.0 * g * diff
        gp = gt = None
        if ctx.needs_input_grad[0]:
            gp = (gd - ph * (gd * ph).sum(axis=axis, keepdims=True)) / np_norm
        if ctx.needs_input_grad[1]:
            gt = (-gd + th * (gd * th).sum(axis=axis, keepdims=True)) / nt_norm
        return gp, gt


@register
class BatchNormOp(Op):
    """Fused train-mode batch normalization ``(x - mean) / sqrt(var + eps)``.

    Reference composition: ``mean``/``var``/``sqrt``/``div`` — roughly 15
    tape nodes per BatchNorm layer.  ``ctx.mean``/``ctx.var`` expose the
    batch statistics (keepdims) so the layer can update running stats
    without recomputing the reductions.  Backward is the standard analytic
    form with full gradient flow through mean and variance:

    ``dx = inv/m * (m*g - sum(g) - xhat * sum(g * xhat))``.
    """

    name = "batch_norm"

    @staticmethod
    def forward(ctx: Context, x, *, axes, eps: float):
        axes = tuple(axes)
        mean = x.mean(axis=axes, keepdims=True)
        centered = x - mean
        var = np.mean(centered * centered, axis=axes, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        xhat = centered * inv
        ctx.save(xhat, inv)
        ctx.axes = axes
        ctx.m = int(np.prod([x.shape[a] for a in axes]))
        ctx.mean = mean
        ctx.var = var
        return xhat

    @staticmethod
    def backward(ctx: Context, grad):
        xhat, inv = ctx.saved
        axes, m = ctx.axes, ctx.m
        sum_g = grad.sum(axis=axes, keepdims=True)
        sum_gx = (grad * xhat).sum(axis=axes, keepdims=True)
        return ((inv / m) * (m * grad - sum_g - xhat * sum_gx),)
