"""Tape-planned arena memory: static buffer lifetimes for replayed steps.

A captured :class:`~repro.tensor.tape.Tape` knows the entire instruction
list of a shape-stable step up front, so the storage of every intermediate
— forward activations, backward saves, op scratch — can be decided *once*
instead of being allocated per op on every replay.  This module is that
decision, split into the pieces the rest of the engine composes:

- :class:`Arena` — one backing byte allocation per planned step.  Views
  into it are created once at plan-bind time; a warm planned replay writes
  into the same slabs every step and performs no allocator calls for the
  planned buffers.  ``reset()`` is the bump-reset fired at the
  ``zero_grad`` step boundary (see :func:`on_step_boundary`); with
  :func:`set_debug_fill` it poisons the arena with NaN so any replay that
  *read* a stale byte would fail the bitwise parity gate instead of
  silently reusing last step's value.
- :func:`build_plan` — deterministic greedy interval coloring.  Each
  plannable buffer carries an inclusive ``[first_def, last_use]`` lifetime
  interval on the step's unified forward+backward timeline; buffers whose
  intervals do not overlap may share bytes.  The layout is a pure function
  of the plan inputs (no id()/hash ordering anywhere), so the same tape
  produces the identical plan — offsets, sizes and digest — in every
  process; :meth:`MemoryPlan.digest` is the cross-process witness.
- :func:`acquire`/:func:`release` — the op scratch mechanism that
  dissolves the old per-layer ``Conv2d._ColBufferPool``: under a planned
  replay, scratch declared via ``Op.plan_buffers`` is served from the
  arena (:func:`provide_scratch`); everywhere else a process-wide
  shape-keyed cache gives the same reuse the bespoke pool used to give
  eager conv, for every op.
- :func:`alloc`/:func:`zeros` — the single allocation helper used by
  planner-exempt buffers (``Tensor.zeros``-style constructors, fallback
  outputs) so the engine has one allocation idiom, not three.

Planner-exempt storage — leaf parameters, ``.grad`` accumulators, the
loss root that escapes the step, BatchNorm running stats and other method
buffers — is never placed in an arena: it must outlive the step, so it
stays individually owned exactly as before.

Everything here is process-local by design: workers plan their own tapes
against their own arenas (only losses/grads/buffers cross the pipe), so
the sharded regime's bit-for-bit contract is untouched.
"""

from __future__ import annotations

import contextlib
import hashlib
import weakref
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Arena",
    "MemoryPlan",
    "PlanInputs",
    "PlanItem",
    "acquire",
    "alloc",
    "build_plan",
    "clear_scratch_cache",
    "no_planning",
    "on_step_boundary",
    "planning_enabled",
    "provide_scratch",
    "release",
    "reset_process_state",
    "set_debug_fill",
    "set_planning",
    "stats",
    "stats_snapshot",
    "zeros",
]

#: Slab alignment in bytes; keeps every planned buffer cache-line aligned.
ALIGNMENT = 64

_PLANNING = True


def planning_enabled() -> bool:
    """Whether replays should build and execute against a memory plan."""
    return _PLANNING


def set_planning(enabled: bool) -> bool:
    """Enable/disable tape memory planning globally; returns the previous setting."""
    global _PLANNING
    previous = _PLANNING
    _PLANNING = bool(enabled)
    return previous


@contextlib.contextmanager
def no_planning():
    """Context manager forcing the allocate-per-op replay path.

    Used by the planned-vs-unplanned parity tests and the ``repro bench``
    memory section to measure exactly what the plan buys.
    """
    previous = set_planning(False)
    try:
        yield
    finally:
        set_planning(previous)


_DEBUG_FILL = False


def set_debug_fill(enabled: bool) -> bool:
    """Poison arenas with NaN on every reset; returns the previous setting.

    With the fill on, a planned replay that reads any byte it did not
    write *this* step produces NaN and fails the parity gate — the
    runtime proof that no state leaks across step (or restore) boundaries.
    """
    global _DEBUG_FILL
    previous = _DEBUG_FILL
    _DEBUG_FILL = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# Allocation accounting
# ----------------------------------------------------------------------
# Counters are process-local measurement state for the bench memory
# section and the zero-alloc regression tests; they never influence
# numerics and never cross the worker pipe.
_STATS = {  # repro-lint: disable=MP002
    "arena_outputs": 0,     # planned-replay outputs written into arena slabs
    "fallback_outputs": 0,  # replay outputs allocated per op (unplanned)
    "arena_scratch": 0,     # scratch served from the active plan's arena
    "cache_hits": 0,        # scratch served from the process-wide cache
    "cache_misses": 0,      # scratch that had to be freshly allocated
    "helper_allocs": 0,     # alloc()/zeros() calls that allocated
    "arena_resets": 0,      # step-boundary bump resets
}


def stats() -> dict:
    """The live counter dict (mutated in place by the engine)."""
    return _STATS


def stats_snapshot() -> dict:
    """A copy of the counters, for before/after deltas in tests and bench."""
    return dict(_STATS)


# ----------------------------------------------------------------------
# The single allocation helper (planner-exempt + fallback storage)
# ----------------------------------------------------------------------
def alloc(shape, dtype, out: np.ndarray | None = None) -> np.ndarray:
    """Return uninitialized storage of ``shape``/``dtype``.

    With ``out`` the caller-provided array is validated and returned
    instead of allocating — the one ``out=`` idiom shared by
    ``Tensor.zeros``-style constructors, fallback replay outputs, and
    planner-exempt buffers.
    """
    shape = tuple(shape)
    dtype = np.dtype(dtype)
    if out is not None:
        if out.shape != shape or out.dtype != dtype:
            raise ValueError(
                f"out= storage mismatch: need {shape}/{dtype.str}, "
                f"got {out.shape}/{out.dtype.str}")
        return out
    _STATS["helper_allocs"] += 1
    return np.empty(shape, dtype=dtype)


def zeros(shape, dtype, out: np.ndarray | None = None) -> np.ndarray:
    """Zero-filled storage of ``shape``/``dtype``; reuses ``out`` when given."""
    buf = alloc(shape, dtype, out=out)
    buf.fill(0)
    return buf


# ----------------------------------------------------------------------
# Scratch: the generalized (ex-``_ColBufferPool``) mechanism
# ----------------------------------------------------------------------
class _ScratchCache:
    """Process-wide reusable scratch buffers, keyed by (shape, dtype)."""

    def __init__(self):
        self._free: dict[tuple, list[np.ndarray]] = {}

    def acquire(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype).str)
        bucket = self._free.get(key)
        if bucket:
            _STATS["cache_hits"] += 1
            return bucket.pop()
        _STATS["cache_misses"] += 1
        return np.empty(key[0], dtype=dtype)

    def release(self, buf: np.ndarray) -> None:
        key = (buf.shape, buf.dtype.str)
        self._free.setdefault(key, []).append(buf)

    def clear(self) -> None:
        self._free.clear()


# Per-process scratch state, deliberately: scratch is storage, not run
# state — workers reuse their own buffers and nothing here crosses the
# pipe or affects numerics.
_CACHE = _ScratchCache()  # repro-lint: disable=MP002
_PROVIDED: list[np.ndarray] = []  # repro-lint: disable=MP002
#: id() of every live arena backing buffer, so release() can recognize
#: arena-owned scratch through any chain of reshape/transpose views.
_ARENA_ROOTS: set[int] = set()  # repro-lint: disable=MP002


def _is_arena_backed(arr: np.ndarray) -> bool:
    root = arr
    while root.base is not None:
        root = root.base
    return id(root) in _ARENA_ROOTS


def provide_scratch(views) -> None:
    """Stage planned arena slabs for the next op's :func:`acquire` calls.

    The tape's planned replay calls this immediately before an
    instruction's ``forward`` with the slabs the plan reserved for it, and
    clears it (``provide_scratch(())``) right after.
    """
    global _PROVIDED
    _PROVIDED = list(views)  # repro-lint: disable=MP002


def acquire(shape, dtype) -> np.ndarray:
    """Scratch storage for an op kernel (e.g. conv's im2col patch matrix).

    Under a planned replay the matching staged arena slab is consumed;
    otherwise the process-wide cache provides the same buffer reuse the
    old per-layer conv pool did.  The caller must :func:`release` the
    buffer once backward no longer needs it.
    """
    shape = tuple(shape)
    dtype = np.dtype(dtype)
    for idx, view in enumerate(_PROVIDED):
        if view.shape == shape and view.dtype == dtype:
            # Per-process staging area: a worker's planned scratch never
            # crosses the pipe, so fork divergence is the intended design.
            _PROVIDED.pop(idx)  # repro-lint: disable=MP002
            _STATS["arena_scratch"] += 1
            return view
    return _CACHE.acquire(shape, dtype)


def release(buf: np.ndarray) -> None:
    """Return scratch to the cache; arena-owned slabs are a no-op.

    Arena slabs live and die with the plan's lifetime intervals — handing
    them to the cache would let a *different* shape-matching acquire steal
    bytes the plan has promised elsewhere.
    """
    if _is_arena_backed(buf):
        return
    _CACHE.release(buf)


def clear_scratch_cache() -> None:
    """Drop every cached scratch buffer (tests, worker hygiene)."""
    _CACHE.clear()


def reset_process_state() -> None:
    """Fresh scratch cache and counters — called in forked workers.

    A fork inherits the parent's cache contents and counter values;
    resetting keeps per-worker accounting honest and releases buffers the
    child will never use.
    """
    clear_scratch_cache()
    provide_scratch(())
    for key in _STATS:
        # Counters are process-local diagnostics; workers reset their own.
        _STATS[key] = 0  # repro-lint: disable=MP002


# ----------------------------------------------------------------------
# Arena
# ----------------------------------------------------------------------
class Arena:
    """One backing byte allocation serving every planned buffer of a step."""

    def __init__(self, nbytes: int):
        self.nbytes = int(nbytes)
        self.generation = 0
        # max(1, ...) keeps zero-item plans harmless (a real backing array
        # still exists for view bookkeeping).
        self._backing = np.empty(max(1, self.nbytes), dtype=np.uint8)
        # Arena identity is per-process by construction (an arena is never
        # pickled or shipped to a worker); the id registry follows it.
        _ARENA_ROOTS.add(id(self._backing))  # repro-lint: disable=MP002
        weakref.finalize(self._backing, _ARENA_ROOTS.discard, id(self._backing))
        _register_arena(self)

    def view(self, offset: int, shape: tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        raw = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if offset + raw > self.nbytes:
            raise ValueError(f"arena view [{offset}, {offset + raw}) exceeds "
                             f"arena of {self.nbytes} bytes")
        return self._backing[offset:offset + raw].view(dtype).reshape(shape)

    def reset(self) -> None:
        """Bump-reset at the step boundary: contents become undefined."""
        self.generation += 1
        _STATS["arena_resets"] += 1
        if _DEBUG_FILL:
            self._backing.fill(0xFF)  # float32/float64 NaN bit pattern

    def owns(self, arr: np.ndarray) -> bool:
        root = arr
        while root.base is not None:
            root = root.base
        return root is self._backing


# Live arenas, so the optimizer's zero_grad can bump-reset them at the
# step boundary without holding them alive.  Per-process measurement/
# storage state (same contract as the scratch cache above).
_LIVE_ARENAS: "weakref.WeakSet[Arena]" = weakref.WeakSet()  # repro-lint: disable=MP002


def _register_arena(arena: Arena) -> None:
    _LIVE_ARENAS.add(arena)


def on_step_boundary() -> None:
    """Bump-reset every live arena; called from ``Optimizer.zero_grad``.

    The reset is accounting plus (in debug mode) poisoning — planned
    offsets are static, so there is no free pointer to rewind.  Resetting
    at ``zero_grad`` pins the arena lifecycle to the same boundary the
    stable-``.grad`` contract uses.
    """
    for arena in _LIVE_ARENAS:
        arena.reset()


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------
@dataclass
class PlanItem:
    """One planned buffer: an instruction output or a scratch slab."""

    kind: str                    # "out" | "scratch"
    inst: int                    # defining instruction index
    key: int                     # out: slot id; scratch: index within the inst
    shape: tuple[int, ...]
    dtype: str                   # numpy dtype .str
    start: int                   # inclusive timeline position of first def
    stop: int                    # inclusive timeline position of last use
    nbytes: int = 0              # exact payload bytes
    offset: int = -1             # byte offset in the arena (set by coloring)

    @property
    def aligned(self) -> int:
        return (self.nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass
class PlanInputs:
    """Everything :func:`build_plan` needs, extracted from one observed replay.

    Timeline convention (all positions inclusive): forward instruction
    ``i`` runs at time ``i``; stat hooks fire at ``n_inst``; the ``k``-th
    backward-schedule entry runs at ``n_inst + 1 + k``.
    """

    n_inst: int
    #: per instruction: output slot id
    out_slots: list[int]
    #: per instruction: input slot ids (slots read at time i)
    input_slots: list[tuple[int, ...]]
    #: per instruction: declared + validated output spec (shape, dtype str),
    #: or None when the output must stay on the fallback allocator
    out_specs: list[tuple[tuple[int, ...], str] | None]
    #: per instruction: declared scratch specs (shape, dtype str, lifetime)
    #: with lifetime in {"fwd", "bwd"}
    scratch_specs: list[tuple[tuple[tuple[int, ...], str, str], ...]]
    #: per instruction: slot ids retained on the op context for backward
    saved_slots: list[tuple[int, ...]]
    #: per instruction: backward timeline position (absent: no backward)
    backward_time: dict[int, int]
    #: slot ids read by replayed stat hooks (at time n_inst)
    stat_slots: tuple[int, ...]
    #: out slot -> the slot whose storage it aliases (views)
    alias_of: dict[int, int]
    #: the root slot whose value escapes the step (planner-exempt)
    seed_slot: int
    #: the owning tape's validity fingerprint, pinned into the plan
    tape_fingerprint: tuple = ()


class MemoryPlan:
    """A bound memory plan: layout, arena, and per-instruction views."""

    def __init__(self, items: list[PlanItem], total_bytes: int,
                 n_inst: int, tape_fingerprint: tuple):
        self.items = items
        self.total_bytes = total_bytes
        self.tape_fingerprint = tape_fingerprint
        self.arena = Arena(total_bytes)
        #: per instruction: arena view for the output, or None (fallback)
        self.out_views: list[np.ndarray | None] = [None] * n_inst
        #: per instruction: staged scratch views, in declaration order
        self.scratch_views: list[tuple[np.ndarray, ...]] = [()] * n_inst
        scratch_acc: dict[int, list] = {}
        for item in items:
            view = self.arena.view(item.offset, item.shape, item.dtype)
            if item.kind == "out":
                self.out_views[item.inst] = view
            else:
                scratch_acc.setdefault(item.inst, []).append((item.key, view))
        for inst, pairs in scratch_acc.items():
            pairs.sort(key=lambda pair: pair[0])
            self.scratch_views[inst] = tuple(view for _k, view in pairs)
        self.planned_outputs = sum(1 for v in self.out_views if v is not None)
        self.planned_scratch = sum(len(v) for v in self.scratch_views)

    def digest(self) -> str:
        """Content hash of the layout — equal iff the plan bytes are equal."""
        parts = [f"total={self.total_bytes}"]
        for item in sorted(self.items, key=lambda it: (it.kind, it.inst, it.key)):
            parts.append(f"{item.kind}:{item.inst}:{item.key}:{item.shape}:"
                         f"{item.dtype}:{item.start}:{item.stop}:"
                         f"{item.offset}:{item.nbytes}")
        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    def describe(self) -> dict:
        """JSON-friendly summary (bench reporting, tests)."""
        return {
            "total_bytes": self.total_bytes,
            "planned_outputs": self.planned_outputs,
            "planned_scratch": self.planned_scratch,
            "items": len(self.items),
            "digest": self.digest(),
        }


def _lifetimes(inputs: PlanInputs) -> tuple[dict[int, int], dict[int, int], int]:
    """Per-slot inclusive [def, last_use] intervals on the unified timeline."""
    end_of_step = inputs.n_inst + 1 + (max(inputs.backward_time.values(), default=-1)
                                       - inputs.n_inst if inputs.backward_time else 0)
    # A retained save whose backward position is unknown pins the slot to
    # the end of the step (conservative: never free early).
    horizon = max(end_of_step, inputs.n_inst + 1)

    def_of: dict[int, int] = {}
    last: dict[int, int] = {}
    for i in range(inputs.n_inst):
        def_of[inputs.out_slots[i]] = i
        for s in inputs.input_slots[i]:
            last[s] = max(last.get(s, -1), i)
    for s in inputs.stat_slots:
        last[s] = max(last.get(s, -1), inputs.n_inst)
    for i in range(inputs.n_inst):
        t = inputs.backward_time.get(i, horizon)
        for s in inputs.saved_slots[i]:
            last[s] = max(last.get(s, -1), t)
    return def_of, last, horizon


def _resolve_alias_roots(alias_of: dict[int, int]) -> dict[int, int]:
    roots: dict[int, int] = {}
    for slot in sorted(alias_of):
        root = alias_of[slot]
        seen = {slot}
        while root in alias_of and root not in seen:
            seen.add(root)
            root = alias_of[root]
        roots[slot] = root
    return roots


def build_plan(inputs: PlanInputs) -> MemoryPlan:
    """Greedy interval coloring over one byte arena; fully deterministic.

    Buffers are placed largest-first (ties broken by timeline position and
    identity), each at the lowest offset whose byte range is free for the
    buffer's whole lifetime.  Two buffers share bytes only if their
    inclusive lifetime intervals are disjoint, which the planner can prove
    from the tape alone.
    """
    def_of, last, horizon = _lifetimes(inputs)
    alias_root = _resolve_alias_roots(inputs.alias_of)

    # An alias output (reshape/transpose view) owns no storage; its uses
    # extend the lifetime of the slot whose bytes it shares.
    for slot in sorted(alias_root):
        root = alias_root[slot]
        if root in def_of:
            last[root] = max(last.get(root, -1), last.get(slot, -1))

    items: list[PlanItem] = []
    for i in range(inputs.n_inst):
        slot = inputs.out_slots[i]
        spec = inputs.out_specs[i]
        if (spec is not None and slot != inputs.seed_slot
                and slot not in alias_root):
            shape, dtype = spec
            nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            if nbytes > 0:
                items.append(PlanItem(
                    kind="out", inst=i, key=slot, shape=tuple(shape),
                    dtype=dtype, start=i, stop=max(last.get(slot, i), i),
                    nbytes=nbytes))
        for k, (shape, dtype, lifetime) in enumerate(inputs.scratch_specs[i]):
            nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            if nbytes <= 0:
                continue
            stop = i if lifetime == "fwd" else inputs.backward_time.get(i, horizon)
            items.append(PlanItem(
                kind="scratch", inst=i, key=k, shape=tuple(shape),
                dtype=dtype, start=i, stop=max(stop, i), nbytes=nbytes))

    order = sorted(items, key=lambda it: (-it.aligned, it.start, it.kind, it.key))
    placed: list[PlanItem] = []
    total = 0
    for item in order:
        busy = sorted(
            (p.offset, p.offset + p.aligned)
            for p in placed
            if p.start <= item.stop and item.start <= p.stop)
        offset = 0
        for lo, hi in busy:
            if offset + item.aligned <= lo:
                break
            offset = max(offset, hi)
        item.offset = offset
        placed.append(item)
        total = max(total, offset + item.aligned)

    return MemoryPlan(items, total, inputs.n_inst, inputs.tape_fingerprint)
