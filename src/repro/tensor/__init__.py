"""Reverse-mode automatic differentiation on numpy arrays.

This package is the computational substrate of the reproduction: a small but
complete autograd engine in the spirit of PyTorch's eager autograd.  The
:class:`~repro.tensor.tensor.Tensor` class wraps a ``numpy.ndarray`` and
records the operations applied to it; :meth:`Tensor.backward` replays the
recorded graph in reverse topological order and accumulates gradients.

Design notes
------------
- Broadcasting follows numpy semantics; gradients of broadcast operands are
  reduced back to the operand shape (see ``_unbroadcast``).
- ``Tensor.detach()`` implements the paper's stop-gradient ``sg(.)`` operator
  (Eq. 3 of the paper) exactly: it returns a view of the same data with the
  tape cut.
- ``no_grad()`` disables tape recording for inference-only code paths
  (evaluation, data selection, memory snapshots).
- ``detect_anomaly()`` enables the runtime sanitizer: every forward output
  and backward gradient is checked for NaN/Inf and errors name the
  offending op (see :mod:`repro.tensor.anomaly`).
"""

from repro.tensor.anomaly import AnomalyError, detect_anomaly, is_anomaly_enabled
from repro.tensor.engine import (
    Context,
    Op,
    apply,
    apply_ctx,
    fusion_enabled,
    get_op,
    no_fusion,
    register,
    registered_ops,
    set_fusion,
)
from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.tensor.tape import Tape, TapedFunction, capture
from repro.tensor import memplan, ops
from repro.tensor.memplan import no_planning, planning_enabled, set_planning
from repro.tensor.ops import (
    concatenate,
    stack,
    where,
    maximum,
    minimum,
    exp,
    log,
    sqrt,
    tanh,
    sigmoid,
    relu,
    softmax,
    log_softmax,
    l2_normalize,
)
from repro.tensor.gradcheck import numerical_gradient, check_gradients

__all__ = [
    "Tensor",
    "tensor",
    "no_grad",
    "is_grad_enabled",
    "Context",
    "Op",
    "Tape",
    "TapedFunction",
    "apply",
    "apply_ctx",
    "capture",
    "fusion_enabled",
    "get_op",
    "no_fusion",
    "register",
    "registered_ops",
    "set_fusion",
    "memplan",
    "no_planning",
    "planning_enabled",
    "set_planning",
    "ops",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "sigmoid",
    "relu",
    "softmax",
    "log_softmax",
    "l2_normalize",
    "numerical_gradient",
    "check_gradients",
    "AnomalyError",
    "detect_anomaly",
    "is_anomaly_enabled",
]
