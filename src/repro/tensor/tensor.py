"""The :class:`Tensor` class: a numpy array with a gradient tape.

The engine is deliberately simple: every differentiable operation creates a
new :class:`Tensor` whose ``_parents`` holds ``(parent, grad_fn)`` pairs.
``grad_fn`` maps the gradient of the output to the gradient contribution for
that parent.  ``backward()`` walks the graph once in reverse topological
order, so each node's backward function runs exactly once even for diamond-
shaped graphs.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.tensor import anomaly

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded on the tape."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used for evaluation, representation extraction for data selection, and
    snapshotting the old model's outputs during distillation.
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Sums over the leading axes that were added by broadcasting, then over
    axes whose original extent was 1.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, np.ndarray):
        # Preserve floating dtypes (float64 graphs are used by gradcheck);
        # promote anything else (ints, bools) to the default float dtype.
        if np.issubdtype(value.dtype, np.floating):
            return value
        return value.astype(dtype)
    if isinstance(value, np.floating):
        return np.asarray(value)
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor that records operations for reverse-mode AD.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless already a numpy
        array of the requested dtype.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.

    Notes
    -----
    ``data`` is a property backed by the ``_data`` slot.  Rebinding it
    (``t.data = arr``) bumps the tensor's ``_version`` counter; ops record
    their parents' versions at tape time and :meth:`backward` raises if a
    tensor saved for backward was rebound afterwards (stale-closure
    protection, the analog of torch's in-place version counters).  In-place
    writes through the array itself (``t.data[...] = x``) bypass the
    counter and are instead forbidden statically by lint rule AD001.
    """

    __slots__ = ("_data", "requires_grad", "grad", "_parents", "_parent_versions",
                 "_op", "_version", "_created_at")

    def __init__(self, data, requires_grad: bool = False, *, _parents=(), _op: str = ""):
        self._data = _as_array(data)
        self._version = 0
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents: tuple = _parents if self.requires_grad or _parents else ()
        self._parent_versions: tuple = ()
        self._op = _op
        self._created_at = anomaly.capture_stack() if anomaly.is_anomaly_enabled() else None

    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value) -> None:
        self._data = value if isinstance(value, np.ndarray) else _as_array(value)
        self._version += 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(data: np.ndarray, parents: Sequence[tuple["Tensor", Callable]], op: str = "") -> "Tensor":
        """Create the result of a differentiable primitive.

        ``parents`` is a sequence of ``(tensor, grad_fn)`` pairs where
        ``grad_fn(output_grad) -> parent_grad``.  The result requires grad iff
        recording is enabled and any parent requires grad; otherwise the tape
        is not extended.
        """
        if anomaly.is_anomaly_enabled():
            anomaly.check_forward(np.asarray(data), op)
        if _GRAD_ENABLED and any(p.requires_grad for p, _fn in parents):
            out = Tensor(data, requires_grad=True,
                         _parents=tuple((p, fn) for p, fn in parents if p.requires_grad),
                         _op=op)
            out._parent_versions = tuple(p._version for p, _fn in out._parents)
        else:
            out = Tensor(data, requires_grad=False)
        return out

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing this data but cut from the tape.

        This is the paper's stop-gradient operator ``sg(.)``.
        """
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op or 'leaf'}{grad_tag})"

    # ------------------------------------------------------------------
    # Autodiff driver
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar outputs; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self.data)
        grad = _as_array(grad, self.data.dtype)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent, _fn in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        check_anomaly = anomaly.is_anomaly_enabled()
        if check_anomaly:
            anomaly.check_backward(grad, self._op, self._created_at)

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._parents:
                # Leaf: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            for (parent, _fn), saved in zip(node._parents, node._parent_versions):
                if parent._version != saved:
                    raise RuntimeError(
                        f"a tensor saved for the backward of op '{node._op or 'unknown'}' "
                        f"(a {parent._op or 'leaf'} tensor, shape {parent.shape}) was "
                        f"modified after the forward pass: its .data was rebound "
                        f"{parent._version - saved} time(s) since the op was taped. "
                        f"Run backward() before mutating parameters, or detach() the "
                        f"tensor if the mutation is intentional."
                    )
            for parent, fn in node._parents:
                contribution = fn(node_grad)
                if contribution is None:
                    continue
                if check_anomaly:
                    anomaly.check_backward(np.asarray(contribution), node._op,
                                           node._created_at)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contribution
                else:
                    grads[key] = contribution
            # interior nodes may also be leaves of interest (rare); keep grads only for leaves

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data
        return Tensor.from_op(data, [
            (self, lambda g: _unbroadcast(g, self.shape)),
            (other, lambda g: _unbroadcast(g, other.shape)),
        ], op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor.from_op(-self.data, [(self, lambda g: -g)], op="neg")

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data
        return Tensor.from_op(data, [
            (self, lambda g: _unbroadcast(g, self.shape)),
            (other, lambda g: _unbroadcast(-g, other.shape)),
        ], op="sub")

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data
        return Tensor.from_op(data, [
            (self, lambda g: _unbroadcast(g * other.data, self.shape)),
            (other, lambda g: _unbroadcast(g * self.data, other.shape)),
        ], op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data
        return Tensor.from_op(data, [
            (self, lambda g: _unbroadcast(g / other.data, self.shape)),
            (other, lambda g: _unbroadcast(-g * self.data / (other.data ** 2), other.shape)),
        ], op="div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        data = self.data ** exponent
        return Tensor.from_op(data, [
            (self, lambda g: g * exponent * self.data ** (exponent - 1)),
        ], op="pow")

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def grad_left(g: np.ndarray) -> np.ndarray:
            if other.data.ndim == 1:
                return np.outer(g, other.data) if self.data.ndim == 2 else g * other.data
            return _unbroadcast(g @ np.swapaxes(other.data, -1, -2), self.shape)

        def grad_right(g: np.ndarray) -> np.ndarray:
            if self.data.ndim == 1:
                return np.outer(self.data, g) if other.data.ndim == 2 else g * self.data
            return _unbroadcast(np.swapaxes(self.data, -1, -2) @ g, other.shape)

        return Tensor.from_op(data, [(self, grad_left), (other, grad_right)], op="matmul")

    # Comparisons produce plain numpy bool arrays (non-differentiable).
    def __gt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data > other_data

    def __lt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data < other_data

    def __ge__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data >= other_data

    def __le__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self.data <= other_data

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)
        return Tensor.from_op(data, [(self, lambda g: g.reshape(original))], op="reshape")

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        data = self.data.transpose(axes)
        return Tensor.from_op(data, [(self, lambda g: g.transpose(inverse))], op="transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]
        shape = self.shape
        dtype = self.data.dtype

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full = np.zeros(shape, dtype=dtype)
            np.add.at(full, index, g)
            return full

        return Tensor.from_op(data, [(self, grad_fn)], op="getitem")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).astype(g.dtype)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, shape).astype(g.dtype)

        return Tensor.from_op(data, [(self, grad_fn)], op="sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        shape = self.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = (self.data == data).astype(g.dtype)
                mask /= mask.sum()
                return mask * g
            expanded = data if keepdims else np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(g.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return mask * g_expanded

        return Tensor.from_op(data, [(self, grad_fn)], op="max")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        return Tensor.from_op(data, [(self, lambda g: g * np.sign(self.data))], op="abs")

    def trace(self) -> "Tensor":
        """Trace of the trailing 2-D matrix (used by the Barlow loss)."""
        if self.ndim != 2:
            raise ValueError("trace() expects a 2-D tensor")
        data = np.trace(self.data)
        n = self.shape[0]

        def grad_fn(g: np.ndarray) -> np.ndarray:
            return np.eye(n, self.shape[1], dtype=self.data.dtype) * g

        return Tensor.from_op(np.asarray(data, dtype=self.data.dtype), [(self, grad_fn)], op="trace")


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
