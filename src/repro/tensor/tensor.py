"""The :class:`Tensor` class: a numpy array with a gradient tape.

Every differentiable operation dispatches through the op registry's single
:func:`repro.tensor.engine.apply` choke point: the op's ``forward`` runs on
the raw arrays, the result :class:`Tensor` records the op class, a
:class:`~repro.tensor.engine.Context` of eagerly-saved arrays, and its
parent tensors.  ``backward()`` walks the graph once in reverse topological
order and calls each op's ``backward(ctx, grad)`` exactly once — even for
diamond-shaped graphs — distributing the returned per-input gradients.

Gradient accumulation reuses buffers: the first contribution to a node may
be borrowed from the op that produced it, but as soon as a second
contribution arrives the engine owns the accumulator and every further
contribution is added in place via ``np.add(..., out=...)``.  Leaf ``.grad``
arrays behave the same way, so ``zero_grad(set_to_none=False)`` makes the
``.grad`` identity stable across steps (see DESIGN.md for the contract).

:meth:`Tensor.from_op` remains as the legacy closure-taping API used by
tests and quick experiments; library primitives are registered ops.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor import anomaly, engine, memplan
from repro.tensor.engine import DEFAULT_DTYPE, is_grad_enabled, no_grad  # noqa: F401  (re-exported API)

_apply = engine.apply


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Sums over the leading axes that were added by broadcasting, then over
    axes whose original extent was 1.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, np.ndarray):
        # Preserve floating dtypes (float64 graphs are used by gradcheck);
        # promote anything else (ints, bools) to the default float dtype.
        if np.issubdtype(value.dtype, np.floating):
            return value
        return value.astype(dtype)
    if isinstance(value, np.floating):
        return np.asarray(value)
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy-backed tensor that records operations for reverse-mode AD.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float32`` unless already a numpy
        array of the requested dtype.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad`` during
        :meth:`backward`.

    Notes
    -----
    ``data`` is a property backed by the ``_data`` slot.  Rebinding it
    (``t.data = arr``) bumps the tensor's ``_version`` counter; the engine
    records its parents' versions at tape time and :meth:`backward` raises
    if a tensor saved for backward was rebound afterwards (stale-graph
    protection, the analog of torch's in-place version counters).  In-place
    writes through the array itself (``t.data[...] = x``) bypass the
    counter and are instead forbidden statically by lint rule AD001.

    Tensors built from Python/numpy scalars are *weak* for dtype promotion
    (``engine.result_dtype``): a float64 scalar constant cannot upcast a
    float32 graph.
    """

    __slots__ = ("_data", "requires_grad", "grad", "_parents", "_parent_versions",
                 "_op", "_op_cls", "_ctx", "_inputs", "_grad_fns", "_weak",
                 "_version", "_created_at")

    def __init__(self, data, requires_grad: bool = False, *, _op: str = ""):
        self._data = _as_array(data)
        self._weak = not isinstance(data, (np.ndarray, Tensor)) and self._data.ndim == 0
        self._version = 0
        self.requires_grad = bool(requires_grad) and engine._GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents: tuple = ()
        self._parent_versions: tuple = ()
        self._op = _op
        self._op_cls = None
        self._ctx = None
        self._inputs: tuple = ()
        self._grad_fns: tuple = ()
        self._created_at = anomaly.capture_stack() if anomaly.is_anomaly_enabled() else None

    @property
    def data(self) -> np.ndarray:
        return self._data

    @data.setter
    def data(self, value) -> None:
        self._data = value if isinstance(value, np.ndarray) else _as_array(value)
        self._version += 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(data: np.ndarray, parents: Sequence[tuple["Tensor", Callable]], op: str = "") -> "Tensor":
        """Create the result of a differentiable primitive (legacy closure API).

        ``parents`` is a sequence of ``(tensor, grad_fn)`` pairs where
        ``grad_fn(output_grad) -> parent_grad``.  The result requires grad iff
        recording is enabled and any parent requires grad; otherwise the tape
        is not extended.  Library code registers :class:`~repro.tensor.engine.Op`
        classes and dispatches through ``engine.apply`` instead; this remains
        for tests and one-off experiments (lint rule AD002 polices the
        late-binding-closure hazard that comes with it).
        """
        if anomaly.is_anomaly_enabled():
            anomaly.check_forward(np.asarray(data), op)
        if engine._GRAD_ENABLED and any(p.requires_grad for p, _fn in parents):
            out = Tensor(data, requires_grad=True, _op=op)
            kept = [(p, fn) for p, fn in parents if p.requires_grad]
            out._parents = tuple(p for p, _fn in kept)
            out._grad_fns = tuple(fn for _p, fn in kept)
            out._parent_versions = tuple(p._version for p in out._parents)
        else:
            out = Tensor(data, requires_grad=False)
        return out

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False,
              out: np.ndarray | None = None) -> "Tensor":
        """Zero tensor; ``out=`` reuses caller storage via the shared helper.

        Constructors route through :func:`repro.tensor.memplan.zeros` so
        planner-exempt buffers, the replay fallback path, and ad-hoc
        callers share one allocation idiom (``out`` must match shape and
        the default dtype exactly).
        """
        return Tensor(memplan.zeros(shape, DEFAULT_DTYPE, out=out),
                      requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False,
             out: np.ndarray | None = None) -> "Tensor":
        """One-filled tensor; ``out=`` reuses caller storage (see ``zeros``)."""
        buf = memplan.alloc(shape, DEFAULT_DTYPE, out=out)
        buf.fill(1)
        return Tensor(buf, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def dtype(self):
        return self._data.dtype

    def __len__(self) -> int:
        return len(self._data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self._data

    def item(self) -> float:
        return float(self._data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing this data but cut from the tape.

        This is the paper's stop-gradient operator ``sg(.)``.
        """
        return Tensor(self._data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self._data.copy(), requires_grad=False)

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear the gradient; ``set_to_none=False`` keeps the buffer.

        With ``set_to_none=False`` the existing ``.grad`` array is zero-filled
        in place, so the next backward accumulates into the same buffer with
        no allocation and the ``.grad`` identity stays stable across steps.
        """
        if set_to_none or self.grad is None:
            self.grad = None
        else:
            self.grad.fill(0.0)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op or 'leaf'}{grad_tag})"

    # ------------------------------------------------------------------
    # Autodiff driver
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar outputs; required for
            non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() on a non-scalar tensor requires an explicit gradient")
            grad = np.ones_like(self._data)
        grad = _as_array(grad, self._data.dtype)

        capture = engine._ACTIVE_CAPTURE
        if capture is not None:
            capture.record_backward(self, grad)

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        check_anomaly = anomaly.is_anomaly_enabled()
        if check_anomaly:
            anomaly.check_backward(grad, self._op, self._created_at)

        # ``grads`` accumulates per-node gradients; ``owned`` marks the ids
        # whose accumulator array this walk allocated itself, so further
        # contributions may be added in place (buffer reuse) without risking
        # corruption of an array an op's backward returned by reference.
        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: set[int] = set()
        for node in reversed(order):
            key = id(node)
            node_grad = grads.pop(key, None)
            if node_grad is None:
                continue
            if not node._parents:
                # Leaf: accumulate into .grad, reusing the buffer in place
                # once it exists (the identity-stability contract).  .grad
                # always carries the leaf's own dtype — a float64 scalar
                # upstream cannot upcast a float32 parameter's gradient.
                if node_grad.dtype != node._data.dtype:
                    node_grad = node_grad.astype(node._data.dtype)
                    owned.add(key)
                buf = node.grad
                if buf is None:
                    node.grad = node_grad if key in owned else node_grad.copy()
                elif buf.shape == node_grad.shape and buf.dtype == node_grad.dtype:
                    np.add(buf, node_grad, out=buf)
                else:
                    node.grad = buf + node_grad
                continue
            for parent, saved in zip(node._parents, node._parent_versions):
                if parent._version != saved:
                    raise RuntimeError(
                        f"a tensor saved for the backward of op '{node._op or 'unknown'}' "
                        f"(a {parent._op or 'leaf'} tensor, shape {parent.shape}) was "
                        f"modified after the forward pass: its .data was rebound "
                        f"{parent._version - saved} time(s) since the op was taped. "
                        f"Run backward() before mutating parameters, or detach() the "
                        f"tensor if the mutation is intentional."
                    )
            if node._op_cls is not None:
                contributions = node._op_cls.backward(node._ctx, node_grad)
                pairs = zip(node._inputs, contributions)
            else:
                pairs = zip(node._parents, (fn(node_grad) for fn in node._grad_fns))
            for parent, contribution in pairs:
                if contribution is None or not parent.requires_grad:
                    continue
                contribution = np.asarray(contribution)
                if check_anomaly:
                    anomaly.check_backward(contribution, node._op,
                                           node._created_at)
                pkey = id(parent)
                accumulated = grads.get(pkey)
                if accumulated is None:
                    grads[pkey] = contribution
                elif (pkey in owned and accumulated.shape == contribution.shape
                      and accumulated.dtype == contribution.dtype):
                    np.add(accumulated, contribution, out=accumulated)
                else:
                    grads[pkey] = accumulated + contribution
                    owned.add(pkey)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        return _apply("add", self, other)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return _apply("neg", self)

    def __sub__(self, other) -> "Tensor":
        return _apply("sub", self, other)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        return _apply("mul", self, other)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        return _apply("div", self, other)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        return _apply("pow", self, exponent=float(exponent))

    def __matmul__(self, other) -> "Tensor":
        return _apply("matmul", self, other)

    # Comparisons produce plain numpy bool arrays (non-differentiable).
    def __gt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self._data > other_data

    def __lt__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self._data < other_data

    def __ge__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self._data >= other_data

    def __le__(self, other):
        other_data = other.data if isinstance(other, Tensor) else other
        return self._data <= other_data

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _apply("reshape", self, shape=shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return _apply("transpose", self, axes=axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        return _apply("getitem", self, index=index)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _apply("sum", self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _apply("max", self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def abs(self) -> "Tensor":
        return _apply("abs", self)

    def trace(self) -> "Tensor":
        """Trace of the trailing 2-D matrix (used by the Barlow loss)."""
        if self.ndim != 2:
            raise ValueError("trace() expects a 2-D tensor")
        return _apply("trace", self)


engine._bind_tensor_class(Tensor)

# Populate the op registry; core_ops depends only on engine, so this import
# cannot cycle back here.
from repro.tensor import core_ops  # noqa: E402,F401


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
