"""Streaming closed-form linear probe via mergeable ridge sufficient statistics.

The SGD :class:`~repro.eval.linear_probe.LinearProbe` re-optimizes a softmax
head for every cell of the accuracy matrix — 50 epochs of Adam per cell —
which makes re-probing every seen increment after each task the slowest part
of a continual run.  Ridge regression onto one-hot targets needs none of
that: everything the solver requires is contained in the sufficient
statistics

    ``A = YᵀX``  (classes × features)    ``B = XᵀX``  (features × features)

accumulated in a single streaming pass over frozen representations (``X`` is
bias-augmented, ``Y`` is the one-hot label matrix).  From the same ``(A, B)``
pair the closed-form weights ``W(λ) = A(B + λI)⁻¹`` are solved for a *whole
grid* of ridge strengths at the cost of one eigendecomposition, and the best
``λ`` is picked by validation accuracy.  State is O(d²), independent of the
number of samples.

Merge contract (the PR-5 reduction contract, applied to statistics)
-------------------------------------------------------------------
Float addition is not associative, so "just add the partial sums" would make
the statistics depend on how the pass was split across workers.  Instead the
accumulation is defined over an ordered sequence of *blocks* (one
:meth:`RidgeStatistics.update` call = one block, the analogue of PR-5's
micro-shards), and partial sums are only ever combined along the **fixed
binary reduction tree** over block indices — the exact tree
:func:`repro.parallel.reduce.tree_reduce` walks.  Internally each statistics
object holds the maximal aligned complete subtrees of its block range (a
binary-counter decomposition, O(log n_blocks) nodes of O(d²) each); two
nodes fuse only when they are sibling children of the same tree node.
Because every aligned node has a unique parent, the set of additions — and
their operand order — is a pure function of the block decomposition:
:meth:`merge` of shard-partial statistics is bit-for-bit identical for any
worker count and any merge order, and equals the single-pass accumulation
over the same blocks.
"""

from __future__ import annotations

import numpy as np

#: Default ridge-strength grid (log-spaced; validation accuracy picks).
DEFAULT_LAMBDAS = tuple(float(v) for v in np.logspace(-4.0, 2.0, 13))

#: Every ``stride``-th sample is held out for λ selection (deterministic,
#: RNG-free; interleaved so class-ordered data still lands in both splits).
VALIDATION_STRIDE = 5


class _Node:
    """One aligned complete subtree of the block reduction tree.

    Covers blocks ``[start, start + 2**height)``; payload is the tree-ordered
    sum of those blocks' statistics contributions.
    """

    __slots__ = ("start", "height", "a", "b", "count")

    def __init__(self, start: int, height: int, a: np.ndarray, b: np.ndarray,
                 count: int):
        self.start = start
        self.height = height
        self.a = a
        self.b = b
        self.count = count

    @property
    def span(self) -> int:
        return 1 << self.height

    @property
    def stop(self) -> int:
        return self.start + self.span


class RidgeStatistics:
    """Mergeable ``A = YᵀX`` / ``B = XᵀX`` accumulator for one block range.

    Parameters
    ----------
    dim:
        Representation width ``d`` (features, before bias augmentation).
    classes:
        The full class universe, as an array of labels.  Fixed up front so
        every shard allocates identically-shaped accumulators; stored
        sorted.  Labels outside this set are an error at :meth:`update`.
    start_block:
        Index of this object's first block in the *global* block sequence.
        A shard worker accumulating blocks ``[k, m)`` passes ``k`` so its
        nodes slot into the shared reduction tree (mirroring how PR-5 slots
        gradients by shard id before reducing).
    """

    def __init__(self, dim: int, classes: np.ndarray, start_block: int = 0):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if start_block < 0:
            raise ValueError("start_block must be >= 0")
        classes = np.unique(np.asarray(classes))
        if classes.size == 0:
            raise ValueError("classes must be non-empty")
        self.dim = int(dim)
        self.classes = classes
        self._next_block = int(start_block)
        #: Aligned subtree nodes keyed by start block, fused eagerly.
        self._nodes: dict[int, _Node] = {}

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return sum(node.count for node in self._nodes.values())

    @property
    def n_blocks(self) -> int:
        return sum(node.span for node in self._nodes.values())

    def blocks_covered(self) -> list[tuple[int, int]]:
        """Sorted ``(start, stop)`` block ranges this object has absorbed."""
        return sorted((node.start, node.stop) for node in self._nodes.values())

    def update(self, representations: np.ndarray, labels: np.ndarray) -> None:
        """Absorb one block of ``(x, y)`` pairs as the next leaf of the tree.

        The block decomposition is part of the numerical contract: two
        passes agree bit-for-bit only when they feed the same sample ranges
        as the same block indices (exactly as PR-5's shard plan is a pure
        function of the batch size, never of the worker count).
        """
        x = np.asarray(representations, dtype=np.float64)
        y = np.asarray(labels)
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"expected representations of shape (n, {self.dim}), "
                             f"got {x.shape}")
        if len(x) != len(y):
            raise ValueError("representations and labels length mismatch")
        if len(x) == 0:
            raise ValueError("a statistics block must contain at least one sample")
        class_index = np.searchsorted(self.classes, y)
        class_index = np.clip(class_index, 0, self.classes.size - 1)
        if not np.array_equal(self.classes[class_index], y):
            unknown = sorted(set(np.asarray(y).tolist())
                             - set(self.classes.tolist()))
            raise ValueError(f"labels {unknown} not in the declared class "
                             f"universe {self.classes.tolist()}")
        x_aug = np.concatenate(
            [x, np.ones((len(x), 1), dtype=np.float64)], axis=1)
        onehot = np.zeros((len(x), self.classes.size), dtype=np.float64)
        onehot[np.arange(len(x)), class_index] = 1.0
        leaf = _Node(self._next_block, 0, onehot.T @ x_aug, x_aug.T @ x_aug,
                     len(x))
        self._next_block += 1
        self._insert(leaf)

    # ------------------------------------------------------------------
    # The fixed-tree merge
    # ------------------------------------------------------------------
    def _insert(self, node: _Node) -> None:
        """Add a node, fusing sibling pairs up the aligned tree."""
        while True:
            if node.start % (2 * node.span) == 0:
                sibling = self._nodes.get(node.start + node.span)
                left, right = node, sibling
            else:
                sibling = self._nodes.get(node.start - node.span)
                left, right = sibling, node
            if sibling is None or sibling.height != node.height:
                self._nodes[node.start] = node
                return
            del self._nodes[sibling.start]
            # Left operand first — the same operand order as tree_reduce's
            # ``level[i] + level[i + 1]``.
            node = _Node(left.start, left.height + 1, left.a + right.a,
                         left.b + right.b, left.count + right.count)

    def merge(self, other: "RidgeStatistics") -> "RidgeStatistics":
        """Combine two shard-partial statistics objects (pure; inputs kept).

        Block ranges must be disjoint.  The result is bit-for-bit identical
        for every way of partitioning the blocks among workers and every
        association order of the merges, because nodes only ever fuse along
        the fixed tree.
        """
        if not isinstance(other, RidgeStatistics):
            raise TypeError(f"cannot merge RidgeStatistics with {type(other).__name__}")
        if other.dim != self.dim:
            raise ValueError(f"dim mismatch: {self.dim} vs {other.dim}")
        if not np.array_equal(other.classes, self.classes):
            raise ValueError("class universe mismatch between statistics")
        mine = self.blocks_covered()
        for start, stop in other.blocks_covered():
            for m_start, m_stop in mine:
                if start < m_stop and m_start < stop:
                    raise ValueError(
                        f"overlapping block ranges: [{start}, {stop}) vs "
                        f"[{m_start}, {m_stop})")
        merged = RidgeStatistics(self.dim, self.classes)
        merged._next_block = max(self._next_block, other._next_block)
        for source in (self, other):
            for node in sorted(source._nodes.values(), key=lambda n: n.start):
                merged._insert(_Node(node.start, node.height, node.a.copy(),
                                     node.b.copy(), node.count))
        return merged

    def reduced(self) -> tuple[np.ndarray, np.ndarray]:
        """The tree-reduced ``(A, B)`` over the covered block range.

        Requires contiguous coverage (no missing shard, mirroring
        ``reduce_gradients``' every-shard-present check).  The remaining
        aligned nodes are folded right-to-left, which reproduces exactly the
        value ``tree_reduce`` computes over the per-block contributions.
        """
        if not self._nodes:
            raise ValueError("no blocks accumulated")
        nodes = sorted(self._nodes.values(), key=lambda n: n.start)
        for prev, node in zip(nodes, nodes[1:]):
            if prev.stop != node.start:
                raise ValueError(
                    f"block range has a gap: [{prev.start}, {prev.stop}) then "
                    f"[{node.start}, {node.stop}); merge the missing shard "
                    f"partials first")
        a = nodes[-1].a
        b = nodes[-1].b
        for node in reversed(nodes[:-1]):
            a = node.a + a
            b = node.b + b
        return a.copy(), b.copy()

    # ------------------------------------------------------------------
    # Closed-form solves
    # ------------------------------------------------------------------
    def class_counts(self) -> np.ndarray:
        """Per-class sample counts (the bias column of ``A``)."""
        a, _ = self.reduced()
        return a[:, -1].astype(np.int64)

    def _standardizer(self, b: np.ndarray) -> np.ndarray:
        """The (d+1)×(d+1) map ``M`` with ``[x, 1] @ M = [(x - μ)/σ, 1]``.

        Mean and variance are recovered from ``B`` itself (the bias column
        holds ``Σx`` and ``n``), so standardization costs nothing extra and
        matches the SGD probe's preprocessing exactly.
        """
        n = b[-1, -1]
        mean = b[-1, :-1] / n
        var = np.diag(b)[:-1] / n - mean ** 2
        sigma = np.sqrt(np.maximum(var, 0.0)) + 1e-6
        m = np.zeros_like(b)
        m[np.arange(self.dim), np.arange(self.dim)] = 1.0 / sigma
        m[-1, :-1] = -mean / sigma
        m[-1, -1] = 1.0
        return m

    def solve_grid(self, lambdas) -> list[np.ndarray]:
        """``W(λ) = A_std(B_std + λI)⁻¹ Mᵀ`` for every λ, from one ``eigh``.

        ``B_std`` is symmetric PSD, so ``B_std = QΛQᵀ`` diagonalizes every
        shifted system at once: each λ costs two small matmuls instead of a
        fresh O(d³) factorization.  Returned weights act on raw
        bias-augmented inputs (the standardizing map is folded in).
        """
        lambdas = [float(lam) for lam in lambdas]
        if not lambdas:
            raise ValueError("lambdas must be non-empty")
        if any(lam < 0 for lam in lambdas):
            raise ValueError("ridge strengths must be >= 0")
        a, b = self.reduced()
        m = self._standardizer(b)
        a_std = a @ m
        b_std = m.T @ b @ m
        eigenvalues, q = np.linalg.eigh(b_std)
        eigenvalues = np.maximum(eigenvalues, 0.0)
        a_q = a_std @ q
        weights = []
        for lam in lambdas:
            w_std = (a_q / (eigenvalues + lam)) @ q.T
            weights.append(w_std @ m.T)
        return weights

    def solve(self, lam: float) -> np.ndarray:
        """Closed-form weights for a single ridge strength."""
        return self.solve_grid([lam])[0]


class RidgeProbe:
    """Closed-form linear probe on frozen representations.

    Drop-in for :class:`~repro.eval.linear_probe.LinearProbe` (``fit`` /
    ``predict`` / ``accuracy``) but solved from streaming sufficient
    statistics: one pass over the data, one eigendecomposition for the whole
    λ grid, λ picked on a deterministic held-out split, final weights
    re-solved from the *full* statistics (the validation blocks are simply
    streamed in after selection — nothing is recomputed).

    Parameters
    ----------
    lambdas:
        Ridge-strength grid; validation accuracy picks (ties favour the
        smallest λ).
    block_size:
        Samples per statistics block.  Part of the numerical contract: runs
        agree bit-for-bit only under the same block decomposition.
    """

    def __init__(self, lambdas=DEFAULT_LAMBDAS, block_size: int = 256):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.lambdas = [float(lam) for lam in lambdas]
        if not self.lambdas:
            raise ValueError("lambdas must be non-empty")
        self.block_size = int(block_size)
        self._weights: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self.lambda_: float | None = None

    # ------------------------------------------------------------------
    def _stream(self, stats: RidgeStatistics, x: np.ndarray,
                y: np.ndarray) -> None:
        for start in range(0, len(x), self.block_size):
            stats.update(x[start:start + self.block_size],
                         y[start:start + self.block_size])

    def fit(self, representations: np.ndarray, labels: np.ndarray) -> "RidgeProbe":
        x = np.asarray(representations, dtype=np.float64)
        y = np.asarray(labels)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D representations, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError("representations and labels length mismatch")
        if len(x) == 0:
            raise ValueError("cannot fit a probe on an empty set")
        classes = np.unique(y)

        val_mask = np.arange(len(x)) % VALIDATION_STRIDE == 0
        train_mask = ~val_mask
        # λ selection needs a non-trivial split on both sides *and* every
        # class present in the training part; tiny or single-class inputs
        # skip selection and take the grid's smallest λ.
        selectable = (len(self.lambdas) > 1 and train_mask.any() and val_mask.any()
                      and np.array_equal(np.unique(y[train_mask]), classes))

        stats = RidgeStatistics(x.shape[1], classes)
        if selectable:
            self._stream(stats, x[train_mask], y[train_mask])
            grid = stats.solve_grid(self.lambdas)
            x_val = np.concatenate(
                [x[val_mask], np.ones((int(val_mask.sum()), 1))], axis=1)
            y_val = y[val_mask]
            best_lam, best_score = self.lambdas[0], -1.0
            for lam, w in zip(self.lambdas, grid):
                score = float(
                    (classes[(x_val @ w.T).argmax(axis=1)] == y_val).mean())
                if score > best_score:
                    best_lam, best_score = lam, score
            # Fold the held-out blocks into the same statistics and re-solve
            # at the chosen λ — the full-data fit costs one more solve, not
            # another pass over the training part.
            self._stream(stats, x[val_mask], y[val_mask])
        else:
            best_lam = self.lambdas[0]
            self._stream(stats, x, y)
        self._finalize(stats, best_lam)
        return self

    def fit_statistics(self, stats: RidgeStatistics,
                       lam: float | None = None) -> "RidgeProbe":
        """Fit directly from (possibly shard-merged) statistics.

        No validation data lives inside a statistics object, so ``lam``
        must be given explicitly (default: the grid's smallest λ).
        """
        self._finalize(stats, self.lambdas[0] if lam is None else float(lam))
        return self

    def _finalize(self, stats: RidgeStatistics, lam: float) -> None:
        self._weights = stats.solve(lam)
        self._classes = stats.classes
        self.lambda_ = lam

    # ------------------------------------------------------------------
    def predict(self, representations: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("predict() before fit()")
        x = np.asarray(representations, dtype=np.float64)
        x_aug = np.concatenate(
            [x, np.ones((len(x), 1), dtype=np.float64)], axis=1)
        return self._classes[(x_aug @ self._weights.T).argmax(axis=1)]

    def accuracy(self, representations: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(representations)
        return float((predictions == np.asarray(labels)).mean())
