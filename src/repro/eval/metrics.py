"""Continual-learning metrics: the matrices and averages of Fig. 3.

``A[i, j]`` is the test accuracy on increment ``j`` after learning increment
``i`` (entries with ``j > i`` are undefined and stored as NaN).  From it:

- ``Acc_i = mean_j<=i A[i, j]``                      (Eq. 17)
- ``F[i, j] = max_{i' <= i} A[i', j] - A[i, j]``     (forgetting matrix)
- ``Fgt_i = mean_{j < i} F[i, j]``                   (Eq. 18)
"""

from __future__ import annotations

import numpy as np


def forgetting_matrix(accuracy_matrix: np.ndarray) -> np.ndarray:
    """Compute ``F`` from ``A`` (NaN above the diagonal, 0 on it)."""
    a = np.asarray(accuracy_matrix, dtype=np.float64)
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("accuracy matrix must be square")
    f = np.full_like(a, np.nan)
    for i in range(n):
        for j in range(i + 1):
            best_so_far = np.nanmax(a[j:i + 1, j])
            f[i, j] = best_so_far - a[i, j]
    return f


class ContinualResult:
    """Accumulates the accuracy matrix over a continual run.

    Build it row by row with :meth:`record_row` after each increment, then
    read the paper's metrics: :meth:`acc`, :meth:`fgt`, per-increment
    :meth:`acc_at` / :meth:`fgt_at`, and the plasticity series
    :meth:`new_task_accuracies` (Fig. 5's ``A_ii``).
    """

    def __init__(self, n_tasks: int, name: str = "run", probe: str = "knn"):
        if n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        self.n_tasks = n_tasks
        self.name = name
        #: Which evaluation probe produced the accuracy matrix (registry
        #: name) — accuracies from different probes are not comparable, so
        #: the choice travels with the result through checkpoints and JSON.
        self.probe = probe
        self.accuracy_matrix = np.full((n_tasks, n_tasks), np.nan)
        self._rows_recorded = 0
        self.elapsed_seconds = 0.0

    def record_row(self, accuracies: list[float]) -> None:
        """Record accuracies on increments ``1..i`` after learning increment ``i``."""
        i = self._rows_recorded
        if i >= self.n_tasks:
            raise RuntimeError("all rows already recorded")
        if len(accuracies) != i + 1:
            raise ValueError(f"row {i} expects {i + 1} accuracies, got {len(accuracies)}")
        self.accuracy_matrix[i, :i + 1] = accuracies
        self._rows_recorded += 1

    @property
    def complete(self) -> bool:
        return self._rows_recorded == self.n_tasks

    @property
    def rows_recorded(self) -> int:
        """Number of increments recorded so far (< ``n_tasks`` if interrupted)."""
        return self._rows_recorded

    # ------------------------------------------------------------------
    # Serialization (checkpoint/resume)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot the partially filled matrix and timing for a checkpoint."""
        return {
            "name": self.name,
            "probe": self.probe,
            "n_tasks": self.n_tasks,
            "rows_recorded": self._rows_recorded,
            "accuracy_matrix": self.accuracy_matrix.copy(),
            "elapsed_seconds": float(self.elapsed_seconds),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`state_dict`."""
        if int(state["n_tasks"]) != self.n_tasks:
            raise ValueError(f"result state holds {state['n_tasks']} tasks, "
                             f"this result expects {self.n_tasks}")
        matrix = np.asarray(state["accuracy_matrix"], dtype=np.float64)
        if matrix.shape != self.accuracy_matrix.shape:
            raise ValueError(f"accuracy matrix shape {matrix.shape} != "
                             f"{self.accuracy_matrix.shape}")
        self.name = state["name"]
        # Pre-PR-9 checkpoints carry no probe field; those runs were KNN.
        self.probe = str(state.get("probe", "knn"))
        self.accuracy_matrix = matrix.copy()
        self._rows_recorded = int(state["rows_recorded"])
        self.elapsed_seconds = float(state["elapsed_seconds"])

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------
    def acc_at(self, i: int) -> float:
        """``Acc_i`` (Eq. 17), 0-indexed increment ``i``."""
        return float(np.nanmean(self.accuracy_matrix[i, :i + 1]))

    def fgt_at(self, i: int) -> float:
        """``Fgt_i`` (Eq. 18); 0 for the first increment."""
        if i == 0:
            return 0.0
        f = forgetting_matrix(self.accuracy_matrix[:i + 1, :i + 1])
        return float(np.nanmean(f[i, :i]))

    def acc(self) -> float:
        """Final average accuracy ``Acc = Acc_n``."""
        return self.acc_at(self._rows_recorded - 1)

    def fgt(self) -> float:
        """Final average forgetting ``Fgt = Fgt_n``."""
        return self.fgt_at(self._rows_recorded - 1)

    def forgetting(self) -> np.ndarray:
        """The full forgetting matrix ``F`` (Fig. 4)."""
        return forgetting_matrix(self.accuracy_matrix[:self._rows_recorded, :self._rows_recorded])

    def new_task_accuracies(self) -> np.ndarray:
        """``A_ii`` per increment — the plasticity series of Fig. 5."""
        return np.diagonal(self.accuracy_matrix)[:self._rows_recorded].copy()

    def acc_series(self) -> np.ndarray:
        """``Acc_i`` for every recorded increment (the Fig. 7 curves)."""
        return np.array([self.acc_at(i) for i in range(self._rows_recorded)])

    def __repr__(self) -> str:
        if self._rows_recorded == 0:
            return f"ContinualResult({self.name}, empty)"
        return (f"ContinualResult({self.name}, tasks={self._rows_recorded}/{self.n_tasks}, "
                f"Acc={self.acc():.4f}, Fgt={self.fgt():.4f})")
