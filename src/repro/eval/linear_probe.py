"""Linear evaluation protocol — the other standard CSSL probe.

The paper evaluates with KNN "to avoid introducing extra parameters"
(Sec. IV-A5); the linear probe is the complementary protocol used across
the CSSL literature (SimCLR, SimSiam): train a single linear softmax
classifier on frozen representations and report its test accuracy.  Having
both probes lets users check that conclusions are protocol-independent.
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.optim.adam import Adam
from repro.tensor import ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import fallback_rng


class LinearProbe:
    """Multinomial logistic regression on frozen representations.

    Parameters
    ----------
    epochs, lr, batch_size, weight_decay:
        Optimization of the probe head (Adam).
    rng:
        Seed source for init and shuffling.  Consumed **once** at
        construction: a single draw keys an isolated child generator that
        every ``fit`` call recreates from scratch.  Fitting therefore never
        advances the caller's stream (probing mid-run cannot perturb
        downstream randomness) and back-to-back fits on the same data are
        bit-for-bit identical.
    """

    def __init__(self, epochs: int = 50, lr: float = 1e-2, batch_size: int = 64,
                 weight_decay: float = 1e-4, rng: np.random.Generator | None = None):
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.weight_decay = weight_decay
        self._fit_seed = int((rng or fallback_rng()).integers(2 ** 63))
        self._head: Linear | None = None
        self._classes: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, representations: np.ndarray, labels: np.ndarray) -> "LinearProbe":
        x = np.asarray(representations, dtype=np.float32)
        y = np.asarray(labels, dtype=np.int64)
        if len(x) != len(y):
            raise ValueError("representations and labels length mismatch")
        if len(x) == 0:
            raise ValueError("cannot fit a probe on an empty set")
        self._classes = np.unique(y)
        class_index = {int(c): i for i, c in enumerate(self._classes)}
        targets = np.array([class_index[int(label)] for label in y])

        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0) + 1e-6
        x = (x - self._mean) / self._std

        # Isolated per-fit generator: init and shuffle order are a pure
        # function of the construction-time seed, never of how often (or
        # when) the probe has been fitted before.
        rng = fallback_rng(self._fit_seed)
        self._head = Linear(x.shape[1], len(self._classes), rng=rng)
        optimizer = Adam(self._head.parameters(), lr=self.lr,
                         weight_decay=self.weight_decay)
        n = len(x)
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                optimizer.zero_grad()
                logits = self._head(Tensor(x[idx]))
                log_probs = ops.log_softmax(logits, axis=1)
                rows = np.arange(len(idx))
                loss = -(log_probs[rows, targets[idx]]).mean()
                loss.backward()
                optimizer.step()
        return self

    def predict(self, representations: np.ndarray) -> np.ndarray:
        if self._head is None:
            raise RuntimeError("predict() before fit()")
        x = (np.asarray(representations, dtype=np.float32) - self._mean) / self._std
        logits = self._head(Tensor(x)).numpy()
        return self._classes[logits.argmax(axis=1)]

    def accuracy(self, representations: np.ndarray, labels: np.ndarray) -> float:
        return float((self.predict(representations) == np.asarray(labels)).mean())
