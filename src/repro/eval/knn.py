"""Weighted KNN classifier on frozen representations.

The standard CSSL evaluation protocol (Wu et al. 2018, used by SimSiam,
LUMP, and CaSSLe — Sec. IV-A5): representations are L2-normalized, the k
nearest training representations vote with weight ``exp(cos / tau)``, and
the highest-scoring class wins.  No parameters are trained, so the probe
measures representation quality only.
"""

from __future__ import annotations

import numpy as np


class KNNClassifier:
    """Cosine-similarity weighted k-nearest-neighbour classifier.

    Parameters
    ----------
    k:
        Number of neighbours (clipped to the index size at predict time).
    temperature:
        Softmax temperature for the similarity weights.
    chunk_size:
        Queries scored per similarity block.  Bounds predict-time memory to
        ``chunk_size × N`` instead of materializing the full ``Q × N``
        similarity matrix; per-query results are independent, so chunking
        never changes a prediction.
    """

    def __init__(self, k: int = 20, temperature: float = 0.1,
                 chunk_size: int = 256):
        if k < 1:
            raise ValueError("k must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.k = k
        self.temperature = temperature
        self.chunk_size = chunk_size
        self._index: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._classes: np.ndarray | None = None
        self._label_index: np.ndarray | None = None

    @staticmethod
    def _normalize(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return x / (np.linalg.norm(x, axis=1, keepdims=True) + 1e-12)

    def fit(self, representations: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        if len(representations) != len(labels):
            raise ValueError("representations and labels length mismatch")
        if len(representations) == 0:
            raise ValueError("cannot fit on an empty index")
        self._index = self._normalize(representations)
        self._labels = np.asarray(labels, dtype=np.int64)
        self._classes = np.unique(self._labels)
        # Index labels as positions in the sorted class list, so voting is a
        # single scatter-add instead of one masked pass per class.
        self._label_index = np.searchsorted(self._classes, self._labels)
        return self

    def predict(self, representations: np.ndarray) -> np.ndarray:
        if self._index is None:
            raise RuntimeError("predict() before fit()")
        queries = self._normalize(representations)
        k = min(self.k, self._index.shape[0])
        predictions = np.empty(len(queries), dtype=self._classes.dtype)
        for start in range(0, len(queries), self.chunk_size):
            chunk = queries[start:start + self.chunk_size]
            sims = chunk @ self._index.T                        # (<=C, N)
            top = np.argpartition(-sims, k - 1, axis=1)[:, :k]  # (<=C, k)
            rows = np.arange(len(chunk))[:, None]
            weights = np.exp(sims[rows, top] / self.temperature)
            scores = np.zeros((len(chunk), len(self._classes)))
            np.add.at(scores, (rows, self._label_index[top]), weights)
            predictions[start:start + self.chunk_size] = \
                self._classes[scores.argmax(axis=1)]
        return predictions

    def accuracy(self, representations: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(representations)
        return float((predictions == np.asarray(labels)).mean())
