"""Weighted KNN classifier on frozen representations.

The standard CSSL evaluation protocol (Wu et al. 2018, used by SimSiam,
LUMP, and CaSSLe — Sec. IV-A5): representations are L2-normalized, the k
nearest training representations vote with weight ``exp(cos / tau)``, and
the highest-scoring class wins.  No parameters are trained, so the probe
measures representation quality only.
"""

from __future__ import annotations

import numpy as np


class KNNClassifier:
    """Cosine-similarity weighted k-nearest-neighbour classifier.

    Parameters
    ----------
    k:
        Number of neighbours (clipped to the index size at predict time).
    temperature:
        Softmax temperature for the similarity weights.
    """

    def __init__(self, k: int = 20, temperature: float = 0.1):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.temperature = temperature
        self._index: np.ndarray | None = None
        self._labels: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    @staticmethod
    def _normalize(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return x / (np.linalg.norm(x, axis=1, keepdims=True) + 1e-12)

    def fit(self, representations: np.ndarray, labels: np.ndarray) -> "KNNClassifier":
        if len(representations) != len(labels):
            raise ValueError("representations and labels length mismatch")
        if len(representations) == 0:
            raise ValueError("cannot fit on an empty index")
        self._index = self._normalize(representations)
        self._labels = np.asarray(labels, dtype=np.int64)
        self._classes = np.unique(self._labels)
        return self

    def predict(self, representations: np.ndarray) -> np.ndarray:
        if self._index is None:
            raise RuntimeError("predict() before fit()")
        queries = self._normalize(representations)
        sims = queries @ self._index.T                      # (Q, N)
        k = min(self.k, self._index.shape[0])
        top = np.argpartition(-sims, k - 1, axis=1)[:, :k]  # (Q, k)
        rows = np.arange(len(queries))[:, None]
        weights = np.exp(sims[rows, top] / self.temperature)
        neighbour_labels = self._labels[top]
        scores = np.zeros((len(queries), len(self._classes)))
        for ci, cls in enumerate(self._classes):
            scores[:, ci] = (weights * (neighbour_labels == cls)).sum(axis=1)
        return self._classes[scores.argmax(axis=1)]

    def accuracy(self, representations: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(representations)
        return float((predictions == np.asarray(labels)).mean())
