"""First-class transfer-matrix results for scenario runs.

A scenario run (``repro.scenarios``) trains on a *stream* of segments and
evaluates against a fixed panel of *eval tasks*.  The
:class:`TransferMatrix` holds two dense ``(n_rows, n_eval)`` matrices:

- ``online[i, j]`` — accuracy on eval task ``j`` measured **before**
  training on stream segment ``i`` (the online/zero-shot view: row 0 is
  the untrained model, row ``i`` is the model after ``i`` segments);
- ``final[i, j]`` — accuracy on eval task ``j`` measured **after**
  training on segment ``i``.

Unlike the triangular :class:`~repro.eval.metrics.ContinualResult`, every
cell is defined: future tasks are probed too, which is what makes forward
transfer measurable.  From the two matrices:

- ``forgetting``  — ``mean_j ( max_i final[i, j] - final[last, j] )``
  over eval tasks that were actually trained on (GEM's backward-transfer
  magnitude, sign-flipped so that positive means forgetting);
- ``forward_transfer`` — ``mean_j ( online[r_j, j] - chance_j )`` over
  eval tasks first trained at row ``r_j > 0``: the accuracy the stream
  had *already* bought on task ``j`` before any training on it, relative
  to chance (GEM Eq. for FWT).

Rows are append-only and recomputable, so a matrix interrupted at row
``k`` resumes by truncating to ``k`` rows and re-recording — the property
the trainer's bit-for-bit resume path relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TransferMatrix"]


def _cell(value: float) -> float | None:
    return None if np.isnan(value) else float(value)


class TransferMatrix:
    """Online + final accuracy per (stream row, eval task) cell.

    Parameters
    ----------
    n_rows:
        Number of stream segments (one recorded row per segment).
    eval_names:
        One display name per eval-panel task; fixes the column count.
    name, scenario, probe:
        Run identity: method name, scenario registry name, and which
        probe produced the accuracies (cells from different probes are
        not comparable).
    row_sources:
        For each row, the eval-task index its training data primarily
        came from (``None`` when unknown).  Drives the forgetting /
        forward-transfer column selection.
    chance:
        Per-eval-task chance accuracy (``1 / n_classes``); the forward
        transfer baseline.  NaN disables the column's FWT term.
    """

    def __init__(self, n_rows: int, eval_names: list[str], *,
                 name: str = "run", scenario: str = "class_incremental",
                 probe: str = "knn",
                 row_sources: list[int | None] | None = None,
                 chance: list[float] | None = None):
        if n_rows < 1:
            raise ValueError("n_rows must be >= 1")
        if not eval_names:
            raise ValueError("eval_names must not be empty")
        self.n_rows = int(n_rows)
        self.eval_names = [str(n) for n in eval_names]
        self.name = name
        self.scenario = scenario
        self.probe = probe
        n_eval = len(self.eval_names)
        if row_sources is None:
            row_sources = [None] * n_rows
        if len(row_sources) != n_rows:
            raise ValueError(f"row_sources needs {n_rows} entries, "
                             f"got {len(row_sources)}")
        self.row_sources = [None if s is None else int(s) for s in row_sources]
        if chance is None:
            chance = [np.nan] * n_eval
        if len(chance) != n_eval:
            raise ValueError(f"chance needs {n_eval} entries, got {len(chance)}")
        self.chance = [float(c) for c in chance]
        self.online = np.full((n_rows, n_eval), np.nan)
        self.final = np.full((n_rows, n_eval), np.nan)
        self._rows_recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def n_eval(self) -> int:
        return len(self.eval_names)

    @property
    def rows_recorded(self) -> int:
        return self._rows_recorded

    @property
    def complete(self) -> bool:
        return self._rows_recorded == self.n_rows

    def record_row(self, online_row: list[float], final_row: list[float]) -> None:
        """Record segment ``rows_recorded``'s pre- and post-training panel."""
        i = self._rows_recorded
        if i >= self.n_rows:
            raise RuntimeError("all rows already recorded")
        for label, row in (("online", online_row), ("final", final_row)):
            if len(row) != self.n_eval:
                raise ValueError(f"{label} row expects {self.n_eval} "
                                 f"accuracies, got {len(row)}")
        self.online[i] = online_row
        self.final[i] = final_row
        self._rows_recorded += 1

    def truncate(self, rows: int) -> None:
        """Drop recorded rows beyond ``rows`` (resume re-records them)."""
        if not 0 <= rows <= self._rows_recorded:
            raise ValueError(f"cannot truncate to {rows} rows, "
                             f"{self._rows_recorded} recorded")
        self.online[rows:] = np.nan
        self.final[rows:] = np.nan
        self._rows_recorded = rows

    def backfill(self, rows: int) -> None:
        """Advance the row cursor to ``rows`` leaving missing rows NaN.

        The degraded-resume path: when the matrix file for an interrupted
        run is lost (its best-effort save failed), the already-trained
        segments cannot be re-probed — their model states are gone — so
        the rows stay NaN and recording continues at ``rows``.
        """
        if not 0 <= rows <= self.n_rows:
            raise ValueError(f"cannot backfill to {rows} of {self.n_rows} rows")
        self._rows_recorded = max(self._rows_recorded, rows)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _first_trained_row(self, column: int) -> int | None:
        for i in range(self._rows_recorded):
            if self.row_sources[i] == column:
                return i
        return None

    def final_accuracy(self) -> float:
        """Mean of the last recorded ``final`` row (NaN when empty)."""
        if self._rows_recorded == 0:
            return float("nan")
        return float(np.nanmean(self.final[self._rows_recorded - 1]))

    def online_accuracy(self) -> float:
        """Mean pre-training accuracy on each segment's own source task."""
        cells = [self.online[i, s]
                 for i, s in enumerate(self.row_sources[:self._rows_recorded])
                 if s is not None]
        if not cells:
            return float("nan")
        return float(np.nanmean(cells))

    def forgetting(self) -> float:
        """Mean peak-to-final drop over eval tasks trained before the end."""
        if self._rows_recorded == 0:
            return float("nan")
        last = self._rows_recorded - 1
        drops = []
        for j in range(self.n_eval):
            first = self._first_trained_row(j)
            if first is None or first >= last:
                continue
            peak = np.nanmax(self.final[:self._rows_recorded, j])
            drops.append(peak - self.final[last, j])
        if not drops:
            return 0.0
        return float(np.nanmean(drops))

    def forward_transfer(self) -> float:
        """Mean above-chance accuracy on tasks *before* first training on them."""
        gains = []
        for j in range(self.n_eval):
            first = self._first_trained_row(j)
            if first is None or first == 0 or np.isnan(self.chance[j]):
                continue
            cell = self.online[first, j]
            if not np.isnan(cell):
                gains.append(cell - self.chance[j])
        if not gains:
            return float("nan")
        return float(np.mean(gains))

    def summary(self) -> dict:
        """The scalar metrics as a JSON-safe dict (NaN becomes ``None``)."""
        return {
            "final_accuracy": _cell(self.final_accuracy()),
            "online_accuracy": _cell(self.online_accuracy()),
            "forgetting": _cell(self.forgetting()),
            "forward_transfer": _cell(self.forward_transfer()),
        }

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "probe": self.probe,
            "n_rows": self.n_rows,
            "eval_names": list(self.eval_names),
            "row_sources": list(self.row_sources),
            "chance": list(self.chance),
            "rows_recorded": self._rows_recorded,
            "online": self.online.copy(),
            "final": self.final.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        if int(state["n_rows"]) != self.n_rows:
            raise ValueError(f"state holds {state['n_rows']} rows, "
                             f"this matrix expects {self.n_rows}")
        online = np.asarray(state["online"], dtype=np.float64)
        final = np.asarray(state["final"], dtype=np.float64)
        if online.shape != self.online.shape or final.shape != self.final.shape:
            raise ValueError(f"matrix shapes {online.shape}/{final.shape} != "
                             f"{self.online.shape}")
        self.name = str(state["name"])
        self.scenario = str(state["scenario"])
        self.probe = str(state["probe"])
        self.eval_names = [str(n) for n in state["eval_names"]]
        self.row_sources = [None if s is None else int(s)
                            for s in state["row_sources"]]
        self.chance = [float(c) for c in state["chance"]]
        self.online = online.copy()
        self.final = final.copy()
        self._rows_recorded = int(state["rows_recorded"])

    def to_payload(self) -> dict:
        """JSON-safe payload (see :func:`repro.utils.serialization`)."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "probe": self.probe,
            "n_rows": self.n_rows,
            "eval_names": list(self.eval_names),
            "row_sources": list(self.row_sources),
            "chance": [_cell(c) for c in self.chance],
            "rows_recorded": self._rows_recorded,
            "online": [[_cell(v) for v in row] for row in self.online],
            "final": [[_cell(v) for v in row] for row in self.final],
            "summary": self.summary(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TransferMatrix":
        matrix = cls(
            int(payload["n_rows"]), [str(n) for n in payload["eval_names"]],
            name=payload["name"], scenario=payload["scenario"],
            probe=payload["probe"],
            row_sources=payload["row_sources"],
            chance=[np.nan if c is None else c for c in payload["chance"]])
        nan = float("nan")
        matrix.online = np.array(
            [[nan if v is None else v for v in row] for row in payload["online"]])
        matrix.final = np.array(
            [[nan if v is None else v for v in row] for row in payload["final"]])
        matrix._rows_recorded = int(payload["rows_recorded"])
        return matrix

    def __repr__(self) -> str:
        return (f"TransferMatrix({self.name}, scenario={self.scenario}, "
                f"rows={self._rows_recorded}/{self.n_rows}, "
                f"eval_tasks={self.n_eval})")
