"""The evaluation protocol: per-task KNN probing after each increment.

Following LUMP/CaSSLe, ``A[i, j]`` is measured by fitting the KNN classifier
on increment ``j``'s *training* representations (labels used here only) and
scoring increment ``j``'s test split — all representations extracted by the
current model with augmentation disabled.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.splits import Task
from repro.eval.knn import KNNClassifier
from repro.ssl.base import CSSLObjective
from repro.tensor.tensor import no_grad


def extract_representations(objective: CSSLObjective, x: np.ndarray,
                            batch_size: int = 128) -> np.ndarray:
    """Unaugmented representations of ``x`` under the current model (eval mode)."""
    was_training = objective.training
    objective.eval()
    chunks = []
    with no_grad():
        for start in range(0, len(x), batch_size):
            chunks.append(objective.representation(x[start:start + batch_size]).numpy())
    objective.train(was_training)
    return np.concatenate(chunks, axis=0)


def evaluate_task(objective: CSSLObjective, task: Task, knn_k: int = 20) -> float:
    """Accuracy of the KNN probe on one task."""
    train_reps = extract_representations(objective, task.train.x)
    test_reps = extract_representations(objective, task.test.x)
    probe = KNNClassifier(k=knn_k).fit(train_reps, task.train.y)
    return probe.accuracy(test_reps, task.test.y)


def evaluate_tasks(objective: CSSLObjective, tasks: list[Task], knn_k: int = 20) -> list[float]:
    """One accuracy per task — a row of the accuracy matrix."""
    return [evaluate_task(objective, task, knn_k) for task in tasks]
