"""The evaluation protocol: per-task probing after each increment.

Following LUMP/CaSSLe, ``A[i, j]`` is measured by fitting a probe on
increment ``j``'s *training* representations (labels used here only) and
scoring increment ``j``'s test split — all representations extracted by the
current model with augmentation disabled.

Three probes implement the same ``fit`` / ``accuracy`` contract and are
selected by name through :data:`PROBE_REGISTRY` (``ContinualConfig.probe``
and the ``--probe`` CLI flag thread the choice through a run):

- ``knn`` — the paper's parameter-free weighted-cosine KNN (Sec. IV-A5);
- ``linear`` — the SGD-trained softmax head (SimCLR/SimSiam protocol);
- ``ridge`` — the closed-form streaming probe (:mod:`repro.eval.ridge`),
  cheap enough to re-probe every seen increment at every task boundary.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.splits import Task
from repro.eval.knn import KNNClassifier
from repro.eval.linear_probe import LinearProbe
from repro.eval.ridge import RidgeProbe
from repro.ssl.base import CSSLObjective
from repro.tensor.tensor import no_grad

#: Probe factories by name.  Each factory accepts the protocol keywords
#: (``knn_k``, ``rng``) and returns an object with ``fit(x, y)`` and
#: ``accuracy(x, y)``; register new probes with :func:`register_probe`.
PROBE_REGISTRY: dict[str, Callable[..., object]] = {}


def register_probe(name: str, factory: Callable[..., object]) -> None:
    """Add a probe factory to the registry (names are unique)."""
    if name in PROBE_REGISTRY:
        raise ValueError(f"probe {name!r} is already registered")
    PROBE_REGISTRY[name] = factory


register_probe("knn", lambda knn_k=20, rng=None: KNNClassifier(k=knn_k))
register_probe("linear", lambda knn_k=20, rng=None: LinearProbe(rng=rng))
register_probe("ridge", lambda knn_k=20, rng=None: RidgeProbe())


def probe_names() -> list[str]:
    """Registered probe names, sorted."""
    return sorted(PROBE_REGISTRY)


def make_probe(name: str, *, knn_k: int = 20,
               rng: np.random.Generator | None = None):
    """Construct a probe by registry name."""
    try:
        factory = PROBE_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown probe {name!r}; registered: "
                         f"{', '.join(probe_names())}") from None
    return factory(knn_k=knn_k, rng=rng)


def extract_representations(objective: CSSLObjective, x: np.ndarray,
                            batch_size: int = 128) -> np.ndarray:
    """Unaugmented representations of ``x`` under the current model (eval mode).

    An empty input returns an empty ``(0, d)`` float32 array (``d`` from
    ``objective.representation_dim``) instead of tripping
    ``np.concatenate`` on an empty chunk list.
    """
    if len(x) == 0:
        return np.zeros((0, objective.representation_dim), dtype=np.float32)
    was_training = objective.training
    objective.eval()
    chunks = []
    with no_grad():
        for start in range(0, len(x), batch_size):
            chunks.append(objective.representation(x[start:start + batch_size]).numpy())
    objective.train(was_training)
    return np.concatenate(chunks, axis=0)


def evaluate_task(objective: CSSLObjective, task: Task, knn_k: int = 20,
                  probe: str = "knn") -> float:
    """Accuracy of the configured probe on one task."""
    train_reps = extract_representations(objective, task.train.x)
    test_reps = extract_representations(objective, task.test.x)
    fitted = make_probe(probe, knn_k=knn_k).fit(train_reps, task.train.y)
    return fitted.accuracy(test_reps, task.test.y)


def evaluate_tasks(objective: CSSLObjective, tasks: list[Task], knn_k: int = 20,
                   probe: str = "knn") -> list[float]:
    """One accuracy per task — a row of the accuracy matrix."""
    return [evaluate_task(objective, task, knn_k, probe=probe) for task in tasks]
