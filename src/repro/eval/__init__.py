"""Evaluation: KNN probing and the continual-learning metrics of Fig. 3."""

from repro.eval.knn import KNNClassifier
from repro.eval.linear_probe import LinearProbe
from repro.eval.metrics import ContinualResult, forgetting_matrix
from repro.eval.protocol import evaluate_tasks, extract_representations

__all__ = [
    "KNNClassifier",
    "LinearProbe",
    "ContinualResult",
    "forgetting_matrix",
    "evaluate_tasks",
    "extract_representations",
]
