"""Evaluation: probe registry (KNN/linear/ridge) and the Fig. 3 metrics."""

from repro.eval.knn import KNNClassifier
from repro.eval.linear_probe import LinearProbe
from repro.eval.metrics import ContinualResult, forgetting_matrix
from repro.eval.protocol import (PROBE_REGISTRY, evaluate_tasks,
                                 extract_representations, make_probe,
                                 probe_names, register_probe)
from repro.eval.ridge import RidgeProbe, RidgeStatistics
from repro.eval.transfer import TransferMatrix

__all__ = [
    "KNNClassifier",
    "LinearProbe",
    "RidgeProbe",
    "RidgeStatistics",
    "ContinualResult",
    "TransferMatrix",
    "forgetting_matrix",
    "evaluate_tasks",
    "extract_representations",
    "PROBE_REGISTRY",
    "make_probe",
    "probe_names",
    "register_probe",
]
