"""Saving and loading models and experiment results.

Model state dicts go to ``.npz`` (pure arrays); continual results go to
``.json`` with the accuracy matrix inlined, so downstream analysis does not
need this library installed.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.eval.metrics import ContinualResult
from repro.nn.module import Module


def save_model(module: Module, path: str | pathlib.Path) -> None:
    """Serialize a module's state dict to a compressed ``.npz`` archive."""
    state = module.state_dict()
    # npz keys may not contain '/'; state-dict names never do, but be safe.
    np.savez_compressed(str(path), **state)


def load_model(module: Module, path: str | pathlib.Path) -> Module:
    """Restore a module's parameters and buffers from :func:`save_model`."""
    with np.load(str(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def save_result(result: ContinualResult, path: str | pathlib.Path) -> None:
    """Write a continual run's metrics and matrix to JSON."""
    payload = {
        "name": result.name,
        "n_tasks": result.n_tasks,
        "acc": result.acc(),
        "fgt": result.fgt(),
        "elapsed_seconds": result.elapsed_seconds,
        "accuracy_matrix": [
            [None if np.isnan(v) else float(v) for v in row]
            for row in result.accuracy_matrix
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def load_result(path: str | pathlib.Path) -> ContinualResult:
    """Rebuild a :class:`ContinualResult` from :func:`save_result` output."""
    payload = json.loads(pathlib.Path(path).read_text())
    result = ContinualResult(payload["n_tasks"], name=payload["name"])
    matrix = payload["accuracy_matrix"]
    for i in range(payload["n_tasks"]):
        row = [matrix[i][j] for j in range(i + 1)]
        if any(v is None for v in row):
            break
        result.record_row(row)
    result.elapsed_seconds = payload["elapsed_seconds"]
    return result
