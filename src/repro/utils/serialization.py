"""Saving and loading models and experiment results.

Model state dicts go to ``.npz`` (pure arrays); continual results and
transfer matrices go to ``.json`` with the matrices inlined, so
downstream analysis does not need this library installed.

Interrupted runs are first-class: :func:`save_result` records how many rows
of the accuracy matrix were actually recorded, and :func:`load_result`
rebuilds exactly that partial state, so ``save → load`` round-trips both
complete and partial results (including ``elapsed_seconds``).

Transfer matrices additionally go through the checkpoint layer's atomic
writer (:func:`repro.runtime.checkpoint.atomic_write_bytes`): the trainer
rewrites the file on every stream boundary next to the checkpoints, so a
crash mid-write must leave either the old rows or the new rows — never a
torn file — for the bit-for-bit resume contract to hold.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.eval.metrics import ContinualResult
from repro.eval.transfer import TransferMatrix
from repro.nn.module import Module
from repro.runtime.checkpoint import atomic_write_bytes


def _npz_path(path: str | pathlib.Path) -> pathlib.Path:
    """Normalize a model path to the ``.npz`` file numpy actually writes.

    ``np.savez_compressed`` silently appends ``.npz`` when the given path
    lacks the suffix; applying the same normalization on both the save and
    load side keeps the two functions symmetric for any caller-supplied path.
    """
    path = pathlib.Path(path)
    if path.suffix == ".npz":
        return path
    return path.with_name(path.name + ".npz")


def save_model(module: Module, path: str | pathlib.Path) -> pathlib.Path:
    """Serialize a module's state dict to a compressed ``.npz`` archive.

    Returns the path actually written (with the ``.npz`` suffix applied).
    """
    state = module.state_dict()
    target = _npz_path(path)
    # npz keys may not contain '/'; state-dict names never do, but be safe.
    np.savez_compressed(str(target), **state)
    return target


def load_model(module: Module, path: str | pathlib.Path) -> Module:
    """Restore a module's parameters and buffers from :func:`save_model`.

    Accepts the same path the caller passed to :func:`save_model`, with or
    without the ``.npz`` suffix.
    """
    with np.load(str(_npz_path(path))) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def save_result(result: ContinualResult, path: str | pathlib.Path) -> None:
    """Write a continual run's metrics and matrix to JSON.

    Partial results (interrupted runs) are saved faithfully: the summary
    metrics are ``None`` when no row has been recorded, and the explicit
    ``rows_recorded`` count lets :func:`load_result` restore the exact
    partial state rather than guessing from ``None`` entries.
    """
    recorded = result.rows_recorded
    payload = {
        "name": result.name,
        "probe": result.probe,
        "n_tasks": result.n_tasks,
        "rows_recorded": recorded,
        "acc": result.acc() if recorded else None,
        "fgt": result.fgt() if recorded else None,
        "elapsed_seconds": result.elapsed_seconds,
        "accuracy_matrix": [
            [None if np.isnan(v) else float(v) for v in row]
            for row in result.accuracy_matrix
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2))


def _infer_rows_recorded(matrix: list[list[float | None]], n_tasks: int) -> int:
    """Row count for legacy files that predate the ``rows_recorded`` field."""
    for i in range(n_tasks):
        if any(matrix[i][j] is None for j in range(i + 1)):
            return i
    return n_tasks


def load_result(path: str | pathlib.Path) -> ContinualResult:
    """Rebuild a :class:`ContinualResult` from :func:`save_result` output.

    Round-trips partial matrices: exactly ``rows_recorded`` rows are
    restored, and a recorded row containing ``None`` (a corrupted file) is an
    error instead of a silent truncation.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    n_tasks = payload["n_tasks"]
    # Files from before the probe registry were all KNN-probed.
    result = ContinualResult(n_tasks, name=payload["name"],
                             probe=payload.get("probe", "knn"))
    matrix = payload["accuracy_matrix"]
    recorded = payload.get("rows_recorded")
    if recorded is None:
        recorded = _infer_rows_recorded(matrix, n_tasks)
    for i in range(recorded):
        row = [matrix[i][j] for j in range(i + 1)]
        if any(v is None for v in row):
            raise ValueError(
                f"{path}: row {i} is marked recorded but contains null entries")
        result.record_row(row)
    result.elapsed_seconds = payload["elapsed_seconds"]
    return result


def save_transfer_matrix(transfer: TransferMatrix,
                         path: str | pathlib.Path) -> None:
    """Atomically write a transfer matrix to JSON.

    Same inlined-matrix philosophy as :func:`save_result`, but through
    the atomic writer: the trainer overwrites this file on every stream
    boundary, and resume reads it back expecting either the previous or
    the new rows — partial writes would break the bit-for-bit contract.
    """
    data = json.dumps(transfer.to_payload(), indent=2).encode("utf-8")
    atomic_write_bytes(pathlib.Path(path), data, site="transfer.matrix")


def load_transfer_matrix(path: str | pathlib.Path) -> TransferMatrix:
    """Rebuild a :class:`TransferMatrix` from :func:`save_transfer_matrix`."""
    payload = json.loads(pathlib.Path(path).read_text())
    return TransferMatrix.from_payload(payload)
