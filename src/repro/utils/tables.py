"""Plain-text rendering of result tables, series, and heatmaps.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in CI
logs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 title: str | None = None) -> str:
    """Fixed-width ASCII table."""
    columns = [list(col) for col in zip(headers, *rows)]
    widths = [max(len(str(cell)) for cell in col) for col in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(label: str, xs: Sequence, ys: Sequence[float],
                  y_format: str = "{:.4f}") -> str:
    """One labelled series as ``label: x=y`` pairs (a figure's data line)."""
    pairs = ", ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"


def format_heatmap(matrix: np.ndarray, title: str = "", cell_format: str = "{:6.3f}",
                   nan_text: str = "   .  ") -> str:
    """Lower-triangular matrix as aligned text (the Fig. 4 heatmaps)."""
    lines = [title] if title else []
    for row in np.asarray(matrix):
        cells = [nan_text if np.isnan(v) else cell_format.format(v) for v in row]
        lines.append(" ".join(cells))
    return "\n".join(lines)
