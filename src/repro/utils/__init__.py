"""Shared utilities: seeding, multi-seed aggregation, table rendering.

Import layering
---------------
``repro.utils.rng`` and ``repro.utils.tables`` are leaf modules (numpy
only) and are imported eagerly, so low-level packages (``repro.nn``,
``repro.data``) can depend on the central seeded-RNG plumbing without
creating an import cycle.  The result/report/serialization helpers sit
*above* ``repro.nn`` and ``repro.eval`` in the layering and are loaded
lazily via module ``__getattr__`` (PEP 562) on first access; their names
stay part of the declared ``__all__`` surface.
"""

from __future__ import annotations

import importlib

from repro.utils.rng import (fallback_rng, get_rng_state, set_rng_state,
                             spawn_rngs, seed_everything)
from repro.utils.tables import format_table, format_series, format_heatmap

__all__ = [
    "fallback_rng",
    "get_rng_state",
    "set_rng_state",
    "spawn_rngs",
    "seed_everything",
    "AggregateResult",
    "aggregate_runs",
    "run_seeds",
    "save_model",
    "load_model",
    "save_result",
    "load_result",
    "save_transfer_matrix",
    "load_transfer_matrix",
    "collect_results",
    "build_report",
    "write_report",
    "format_table",
    "format_series",
    "format_heatmap",
]

_LAZY_EXPORTS = {
    "AggregateResult": "repro.utils.results",
    "aggregate_runs": "repro.utils.results",
    "run_seeds": "repro.utils.results",
    "save_model": "repro.utils.serialization",
    "load_model": "repro.utils.serialization",
    "save_result": "repro.utils.serialization",
    "load_result": "repro.utils.serialization",
    "save_transfer_matrix": "repro.utils.serialization",
    "load_transfer_matrix": "repro.utils.serialization",
    "collect_results": "repro.utils.report",
    "build_report": "repro.utils.report",
    "write_report": "repro.utils.report",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.utils' has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
