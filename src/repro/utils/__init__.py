"""Shared utilities: seeding, multi-seed aggregation, table rendering."""

from repro.utils.rng import spawn_rngs, seed_everything
from repro.utils.results import AggregateResult, aggregate_runs, run_seeds
from repro.utils.report import build_report, collect_results, write_report
from repro.utils.serialization import load_model, load_result, save_model, save_result
from repro.utils.tables import format_table, format_series, format_heatmap

__all__ = [
    "spawn_rngs",
    "seed_everything",
    "AggregateResult",
    "aggregate_runs",
    "run_seeds",
    "save_model",
    "load_model",
    "save_result",
    "load_result",
    "collect_results",
    "build_report",
    "write_report",
    "format_table",
    "format_series",
    "format_heatmap",
]
