"""Multi-seed experiment aggregation (the paper's "mean ± std over runs")."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.eval.metrics import ContinualResult


@dataclass(frozen=True)
class AggregateResult:
    """Mean ± std of Acc / Fgt over seeds, in percent as the paper reports."""

    name: str
    acc_mean: float
    acc_std: float
    fgt_mean: float
    fgt_std: float
    n_runs: int
    elapsed_mean: float = 0.0

    def acc_text(self) -> str:
        return f"{100 * self.acc_mean:.2f} ± {100 * self.acc_std:.2f}"

    def fgt_text(self) -> str:
        return f"{100 * self.fgt_mean:.2f} ± {100 * self.fgt_std:.2f}"


def aggregate_runs(name: str, results: Sequence[ContinualResult]) -> AggregateResult:
    """Aggregate completed continual runs of one method."""
    if not results:
        raise ValueError("no results to aggregate")
    accs = np.array([r.acc() for r in results])
    fgts = np.array([r.fgt() for r in results])
    elapsed = np.array([r.elapsed_seconds for r in results])
    return AggregateResult(
        name=name,
        acc_mean=float(accs.mean()),
        acc_std=float(accs.std()),
        fgt_mean=float(fgts.mean()),
        fgt_std=float(fgts.std()),
        n_runs=len(results),
        elapsed_mean=float(elapsed.mean()),
    )


def run_seeds(run_fn: Callable[[int], ContinualResult], seeds: Sequence[int],
              name: str | None = None) -> tuple[AggregateResult, list[ContinualResult]]:
    """Run ``run_fn(seed)`` for each seed and aggregate."""
    results = [run_fn(seed) for seed in seeds]
    return aggregate_runs(name or results[0].name, results), results
