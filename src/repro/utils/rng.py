"""Deterministic randomness plumbing.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``; these helpers fan a root seed out into
independent streams so adding a component never perturbs another's draws.
"""

from __future__ import annotations

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent generators from one root seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


def seed_everything(seed: int) -> np.random.Generator:
    """Root generator for a run (the library never touches global state)."""
    return np.random.default_rng(seed)


#: Seed used when a component is constructed without an explicit generator.
#: Experiments always pass one; this exists so throwaway models built at a
#: REPL are still reproducible instead of seeding from OS entropy.
FALLBACK_SEED = 0x5EED


def fallback_rng(seed: int | None = None) -> np.random.Generator:
    """Deterministic default generator for components built without one.

    This is the only sanctioned replacement for the seedless
    ``np.random.default_rng()`` fallback pattern (lint rule DET001): two
    processes that omit the ``rng`` argument now initialize identically.
    """
    return np.random.default_rng(FALLBACK_SEED if seed is None else seed)
