"""Deterministic randomness plumbing.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``; these helpers fan a root seed out into
independent streams so adding a component never perturbs another's draws.
"""

from __future__ import annotations

import copy

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent generators from one root seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


def seed_everything(seed: int) -> np.random.Generator:
    """Root generator for a run (the library never touches global state)."""
    return np.random.default_rng(seed)


#: Seed used when a component is constructed without an explicit generator.
#: Experiments always pass one; this exists so throwaway models built at a
#: REPL are still reproducible instead of seeding from OS entropy.
FALLBACK_SEED = 0x5EED


def fallback_rng(seed: int | None = None) -> np.random.Generator:
    """Deterministic default generator for components built without one.

    This is the only sanctioned replacement for the seedless
    ``np.random.default_rng()`` fallback pattern (lint rule DET001): two
    processes that omit the ``rng`` argument now initialize identically.
    """
    return np.random.default_rng(FALLBACK_SEED if seed is None else seed)


def get_rng_state(rng: np.random.Generator) -> dict:
    """Snapshot a generator's bit-generator state as a JSON-serializable dict.

    The returned mapping is exactly what numpy exposes as
    ``rng.bit_generator.state`` (plain ints and strings — PCG64 state words
    are arbitrary-precision Python ints, which JSON handles natively), deep
    copied so later draws do not mutate the snapshot.
    """
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a generator to a state captured by :func:`get_rng_state`.

    After this call the generator's draw sequence continues bit-for-bit from
    where the snapshot was taken — the keystone of checkpoint/resume
    determinism.
    """
    rng.bit_generator.state = copy.deepcopy(state)
