"""Deterministic randomness plumbing.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``; these helpers fan a root seed out into
independent streams so adding a component never perturbs another's draws.
"""

from __future__ import annotations

import numpy as np


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """``n`` statistically independent generators from one root seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]


def seed_everything(seed: int) -> np.random.Generator:
    """Root generator for a run (the library never touches global state)."""
    return np.random.default_rng(seed)
