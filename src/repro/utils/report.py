"""Markdown experiment reports from saved results.

Workflow: runs are saved with :func:`repro.utils.serialization.save_result`
(or the CLI's ``--output``); :func:`build_report` collects a directory of
those JSON files into one markdown document — comparison table, per-method
accuracy matrices, and forgetting summaries — so an experiment sweep turns
into a reviewable artifact without this library installed on the reader's
side.
"""

from __future__ import annotations

import pathlib
from collections import defaultdict

import numpy as np

from repro.eval.metrics import ContinualResult
from repro.utils.serialization import load_result


def collect_results(directory: str | pathlib.Path) -> dict[str, list[ContinualResult]]:
    """Load every ``*.json`` result in ``directory``, grouped by run name."""
    directory = pathlib.Path(directory)
    grouped: dict[str, list[ContinualResult]] = defaultdict(list)
    for path in sorted(directory.glob("*.json")):
        result = load_result(path)
        grouped[result.name].append(result)
    return dict(grouped)


def _matrix_markdown(result: ContinualResult) -> str:
    n = result.n_tasks
    header = "| after \\ on | " + " | ".join(str(j + 1) for j in range(n)) + " |"
    divider = "|" + "---|" * (n + 1)
    rows = []
    for i in range(n):
        cells = []
        for j in range(n):
            value = result.accuracy_matrix[i, j]
            cells.append("." if np.isnan(value) else f"{100 * value:.1f}")
        rows.append(f"| {i + 1} | " + " | ".join(cells) + " |")
    return "\n".join([header, divider] + rows)


def build_report(directory: str | pathlib.Path, title: str = "Experiment report") -> str:
    """Render all saved results in ``directory`` as one markdown document."""
    grouped = collect_results(directory)
    if not grouped:
        raise ValueError(f"no result JSON files found in {directory}")

    lines = [f"# {title}", ""]
    lines.append("## Summary")
    lines.append("")
    lines.append("| method | runs | Acc % (mean ± std) | Fgt % (mean ± std) | time s |")
    lines.append("|---|---|---|---|---|")
    for name in sorted(grouped, key=lambda n: -np.mean([r.acc() for r in grouped[n]])):
        results = grouped[name]
        accs = np.array([r.acc() for r in results])
        fgts = np.array([r.fgt() for r in results])
        seconds = np.mean([r.elapsed_seconds for r in results])
        lines.append(
            f"| {name} | {len(results)} "
            f"| {100 * accs.mean():.2f} ± {100 * accs.std():.2f} "
            f"| {100 * fgts.mean():.2f} ± {100 * fgts.std():.2f} "
            f"| {seconds:.1f} |")
    lines.append("")

    for name in sorted(grouped):
        representative = grouped[name][0]
        lines.append(f"## {name}")
        lines.append("")
        lines.append(f"Accuracy matrix of the first run (Acc {100 * representative.acc():.2f}%, "
                     f"Fgt {100 * representative.fgt():.2f}%):")
        lines.append("")
        lines.append(_matrix_markdown(representative))
        lines.append("")
    return "\n".join(lines)


def write_report(directory: str | pathlib.Path, output: str | pathlib.Path,
                 title: str = "Experiment report") -> pathlib.Path:
    """Build the report and write it to ``output``; returns the path."""
    output = pathlib.Path(output)
    output.write_text(build_report(directory, title))
    return output
