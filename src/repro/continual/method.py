"""The interface every continual method implements, plus the method factory.

A method wraps the live CSSL objective and contributes:

- per-increment setup/teardown (:meth:`begin_task` / :meth:`end_task`) —
  snapshotting the old model, building distillation heads, selecting memory;
- the per-batch training loss (:meth:`batch_loss`), which the trainer
  back-propagates;
- optional optimizer-step hooks (:meth:`before_step` / :meth:`after_step`)
  used by SI's path-integral importance tracking;
- full run-state serialization (:meth:`state_dict` / :meth:`load_state_dict`)
  so a checkpointed run resumes bit-for-bit: subclasses extend the base
  snapshot with their frozen old models, memory buffers, importance
  accumulators, and any other state the training trajectory depends on.
  Values must be JSON/ndarray-serializable (lint rule SER001).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.augment.base import TwoViewAugment
from repro.continual.config import ContinualConfig
from repro.data.splits import Task
from repro.nn.module import Parameter
from repro.ssl.base import CSSLObjective
from repro.tensor.tensor import Tensor


@dataclass(frozen=True)
class BoundaryEvent:
    """A stream-delivered task-boundary signal (see ``repro.scenarios``).

    The trainer no longer *assumes* sharp boundaries — it forwards
    whatever its boundary controller emits.  ``phase`` is ``"begin"`` or
    ``"end"``; ``task`` is the increment the event describes (for
    drift-detected boundaries, the merged data of every segment in the
    finished virtual task); ``index`` is the task index methods should
    attribute state to (the *virtual* index in task-free streams, which
    can lag the segment index).  ``n_tasks`` is an upper bound on the
    total task count (``"begin"`` only, 0 on ``"end"``), and ``kind``
    records what produced the event: ``"sharp"`` for an explicit stream
    boundary, ``"drift"`` for one the drift heuristic inferred.
    """

    phase: str
    task: Task
    index: int
    n_tasks: int = 0
    kind: str = "sharp"


class ContinualMethod:
    """Base class; the default behaviour is plain finetuning."""

    name = "base"
    uses_memory = False

    def __init__(self, objective: CSSLObjective, config: ContinualConfig,
                 rng: np.random.Generator):
        self.objective = objective
        self.config = config
        self.rng = rng
        # Set by the trainer per increment; transient by design.
        self.augment: TwoViewAugment | None = None  # repro-lint: disable=SER002

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        """Called before training on increment ``task_index`` starts."""

    def end_task(self, task: Task, task_index: int) -> None:
        """Called after training on increment ``task_index`` finishes."""

    def on_boundary(self, event: BoundaryEvent) -> None:
        """Dispatch a stream boundary event to the lifecycle hooks.

        The single entry point the trainer's boundary controllers drive:
        sharp streams emit one begin/end pair per segment, task-free
        streams emit them per drift-detected *virtual* task.  The default
        routes to :meth:`begin_task` / :meth:`end_task`, so every
        existing method works under every scenario unchanged; a method
        wanting drift-specific behaviour overrides this and keys on
        ``event.kind``.
        """
        if event.phase == "begin":
            self.begin_task(event.task, event.index, event.n_tasks)
        elif event.phase == "end":
            self.end_task(event.task, event.index)
        else:
            raise ValueError(f"unknown boundary phase {event.phase!r}")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def trainable_parameters(self) -> list[Parameter]:
        """Parameters the optimizer updates this increment."""
        return self.objective.parameters()

    @property
    def tape_safe(self) -> bool:
        """Whether the trainer may tape-replay this method's training step.

        Conservative default: only methods that keep the base
        :meth:`batch_loss` (a pure, shape-stable function of its array
        arguments) qualify.  Overriding methods typically sample replay
        batches, draw per-step noise, or snapshot old-model outputs — all
        things a recorded tape would freeze.  A second line of defence
        (Dropout, the VAE sampler, BYOL's momentum update poisoning the
        active capture) catches unsafe *objectives* under a safe method.
        """
        return type(self).batch_loss is ContinualMethod.batch_loss

    @property
    def shard_safe(self) -> bool:
        """Whether the trainer may data-parallel shard this method's step.

        Same conservative gate as :attr:`tape_safe`: only the base
        :meth:`batch_loss` — a pure function of the two view arrays — can
        be split across worker replicas, because the replicas rebuild the
        loss from the broadcast parameters alone.  Overriding methods
        carry per-step state the replicas do not have (replay buffers,
        old-model snapshots, method RNG draws); the trainer falls back to
        the single-process step for them and logs the reason.
        """
        return type(self).batch_loss is ContinualMethod.batch_loss

    def batch_loss(self, view1: np.ndarray, view2: np.ndarray,
                   raw: np.ndarray) -> Tensor:
        """Training loss for one batch: two augmented views plus the raw batch."""
        return self.objective.css_loss(view1, view2)

    def before_step(self) -> None:
        """Hook before ``optimizer.step()`` (after ``backward``)."""

    def after_step(self) -> None:
        """Hook after ``optimizer.step()``."""

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Everything the training trajectory depends on, as a nested dict.

        Leaves must be ndarrays, plain scalars, strings, ``None``, or
        lists/dicts thereof — the checkpoint layer flattens them into an
        ``.npz`` + JSON manifest (see :mod:`repro.runtime.checkpoint`).
        Subclasses call ``super().state_dict()`` and extend the mapping.
        """
        return {"objective": self.objective.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a freshly built method.

        The method (and its objective) must have been constructed with the
        same config/architecture; loading rebinds parameter values and
        rebuilds any auxiliary models in place.
        """
        self.objective.load_state_dict(state["objective"])


def make_method(name: str, objective: CSSLObjective, config: ContinualConfig,
                rng: np.random.Generator) -> ContinualMethod:
    """Factory mapping Table III row names to method instances."""
    from repro.continual.cassle import CaSSLe
    from repro.continual.der import DER
    from repro.continual.edsr import EDSR
    from repro.continual.finetune import Finetune
    from repro.continual.generative import GenerativeReplay
    from repro.continual.lin import LinContinual
    from repro.continual.lump import LUMP
    from repro.continual.pfr import PFR
    from repro.continual.si import SynapticIntelligence

    methods = {
        "finetune": Finetune,
        "si": SynapticIntelligence,
        "der": DER,
        "lump": LUMP,
        "cassle": CaSSLe,
        "edsr": EDSR,
        "lin": LinContinual,
        "pfr": PFR,
        "curl": GenerativeReplay,
    }
    try:
        cls = methods[name]
    except KeyError as exc:
        raise KeyError(f"unknown method {name!r}; available: {sorted(methods)}") from exc
    return cls(objective, config, rng)
