"""Experiment configuration and model construction.

One :class:`ContinualConfig` fully determines a run: model architecture,
optimization, memory/selection/replay hyper-parameters, and evaluation.
Defaults are CI scale (seconds per run on CPU); Sec. IV-A5 values are noted
per field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.ssl.barlow import BarlowTwins
from repro.ssl.base import CSSLObjective
from repro.ssl.byol import BYOL
from repro.ssl.encoder import Encoder, build_backbone
from repro.ssl.simsiam import SimSiam
from repro.ssl.vae import VAEObjective


@dataclass(frozen=True)
class ContinualConfig:
    """All hyper-parameters of a continual run.

    Attributes
    ----------
    epochs, batch_size, lr, momentum, weight_decay, optimizer, schedule:
        Optimization (paper: SGD for images, Adam for tabular, 150–1000
        epochs depending on the dataset; CI scale uses a handful).
    backbone, representation_dim, objective:
        Model: backbone name (see :func:`repro.ssl.encoder.build_backbone`),
        representation width ``d`` (paper: 2048 image / 128 tabular), and
        CSSL objective (``"simsiam"`` or ``"barlow"``, Table VI).
    memory_budget:
        Total stored samples ``s`` across all increments (paper: 256–960).
    replay_batch_size:
        Stored samples replayed per training step (Fig. 10's knob).
    selection:
        Table V strategy name (``"high-entropy"`` is EDSR's).
    replay_loss:
        Table IV loss name: ``"css"``, ``"dis"``, or ``"rpl"`` (EDSR's).
    noise_neighbors:
        ``k`` for the noise scale ``r(x)`` — the paper's only
        hyper-parameter (Fig. 6; paper uses 10 or 100).
    noise_mode:
        ``"vector"`` (default): ``r(x)`` is the per-dimension std of the
        kNN representations, so the noise follows the local manifold;
        ``"scalar"``: isotropic noise with the dimension-averaged std.
    replay_sampling:
        ``"uniform"`` (paper default) or ``"similarity"`` — the Sec. IV-F
        extension that replays stored samples most similar to the current
        new-data batch.
    distill_weight, replay_weight:
        Coefficients of the ``L_dis`` and ``L_rpl`` terms in the final
        objective of Sec. III-C (both 1/2 in the paper; the 1/2 on
        ``L_dis`` is applied by averaging the two views).
    si_lambda, der_alpha, lump_alpha, minvar_groups:
        Baseline hyper-parameters (SI regularization strength, DER
        distillation weight, LUMP mixup Beta parameter, Min-Var cluster
        count).
    augment_padding, tabular_corruption:
        Augmentation strengths for image / tabular pipelines.
    knn_k:
        Probe neighbourhood for evaluation (Sec. IV-A5's KNN classifier).
    probe:
        Evaluation probe fitted per accuracy-matrix cell, by registry name
        (:data:`repro.eval.protocol.PROBE_REGISTRY`): ``"knn"`` (paper
        default, parameter-free), ``"linear"`` (SGD softmax head), or
        ``"ridge"`` (closed-form streaming probe — cheap enough to re-probe
        every seen increment at every boundary).
    use_tape:
        Capture the training step once per batch shape and replay the
        recorded program on subsequent steps (``repro.tensor.tape``).
        Replay is bit-for-bit identical to eager dispatch and only engages
        for tape-safe methods; disable to force eager execution everywhere.
    workers:
        ``None`` (default) runs the classic single-process training step.
        Any integer ``>= 1`` enters the *sharded regime*
        (``repro.parallel``): each batch is split into a fixed set of
        micro-shards, forward+backward runs per shard from broadcast
        state, and gradients are tree-reduced in a fixed order.  The
        number only sets the process count — ``1`` executes the same
        shard program serially — so results and checkpoints are
        bit-for-bit identical for every worker count, and a checkpointed
        run may resume under a different one.  Only engages for
        shard-safe methods (see ``ContinualMethod.shard_safe``).
    scenario, scenario_seed:
        Stream shape by registry name
        (:data:`repro.scenarios.registry.SCENARIO_REGISTRY`):
        ``"class_incremental"`` (default; byte-identical to the classic
        trainer path), ``"task_free"``, ``"blurry"``,
        ``"domain_incremental"``, or ``"long_sequence"``.
        ``scenario_seed`` keys every stream builder's randomness —
        streams are pure functions of ``(scenario_seed, params)``,
        independent of the training seed.
    blur_ratio:
        Fraction of each task's training data donated to its neighbour
        tasks under the ``blurry`` scenario (``[0, 1)``).
    segments_per_task, drift_threshold:
        ``task_free`` knobs: how many unsignalled segments each base
        task is sliced into, and the
        :class:`~repro.scenarios.drift.DriftDetector` firing threshold
        for self-triggered boundaries.
    domain_count, domain_shift:
        ``domain_incremental`` knobs: number of domains and the
        nuisance-transform strength
        (:func:`repro.data.synthetic.apply_domain_shift`).
    long_cycles:
        ``long_sequence`` knob: how many times the base task order is
        cycled (5 base tasks × 4 cycles = the 20-segment stream).
    """

    epochs: int = 6
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    optimizer: str = "sgd"
    schedule: str = "cosine"

    backbone: str = "tiny-conv"
    representation_dim: int = 32
    objective: str = "simsiam"

    memory_budget: int = 20
    replay_batch_size: int = 16
    selection: str = "high-entropy"
    replay_loss: str = "rpl"
    noise_neighbors: int = 30
    noise_mode: str = "vector"
    replay_sampling: str = "uniform"

    distill_weight: float = 1.0
    replay_weight: float = 0.5

    si_lambda: float = 1.0
    der_alpha: float = 0.5
    lump_alpha: float = 1.0
    minvar_groups: int = 2

    augment_padding: int = 1
    tabular_corruption: float = 0.3
    knn_k: int = 20
    probe: str = "knn"

    use_tape: bool = True
    workers: int | None = None

    scenario: str = "class_incremental"
    scenario_seed: int = 0
    blur_ratio: float = 0.3
    segments_per_task: int = 3
    drift_threshold: float = 0.7
    domain_count: int = 4
    domain_shift: float = 0.75
    long_cycles: int = 4

    def __post_init__(self):
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for the classic "
                             "single-process step)")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 2:
            raise ValueError("batch_size must be >= 2 (BatchNorm needs a batch)")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.memory_budget < 0:
            raise ValueError("memory_budget must be >= 0")
        if self.replay_batch_size < 0:
            raise ValueError("replay_batch_size must be >= 0")
        if self.noise_neighbors < 0:
            raise ValueError("noise_neighbors must be >= 0")
        if self.representation_dim < 2:
            raise ValueError("representation_dim must be >= 2")
        if not 0.0 <= self.blur_ratio < 1.0:
            raise ValueError("blur_ratio must be in [0, 1)")
        if self.segments_per_task < 1:
            raise ValueError("segments_per_task must be >= 1")
        if self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if self.domain_count < 1:
            raise ValueError("domain_count must be >= 1")
        if self.domain_shift < 0:
            raise ValueError("domain_shift must be >= 0")
        if self.long_cycles < 1:
            raise ValueError("long_cycles must be >= 1")
        # Late import: repro.eval.protocol transitively builds on the nn
        # stack, which imports this module's package.
        from repro.eval.protocol import PROBE_REGISTRY
        if self.probe not in PROBE_REGISTRY:
            raise ValueError(f"unknown probe {self.probe!r}; registered: "
                             f"{', '.join(sorted(PROBE_REGISTRY))}")
        # Same late-import pattern for the scenario registry, which sits
        # above this package in the layering.
        from repro.scenarios.registry import SCENARIO_REGISTRY
        if self.scenario not in SCENARIO_REGISTRY:
            raise ValueError(f"unknown scenario {self.scenario!r}; "
                             f"registered: "
                             f"{', '.join(SCENARIO_REGISTRY)}")

    def with_overrides(self, **kwargs) -> "ContinualConfig":
        """Functional update — configs are frozen."""
        return replace(self, **kwargs)


def build_objective(config: ContinualConfig, sample_shape: tuple[int, ...],
                    rng: np.random.Generator) -> CSSLObjective:
    """Construct the CSSL objective for data of ``sample_shape`` (no batch dim).

    Image data (C, H, W) gets the configured conv backbone; tabular data
    (F,) always gets the MLP backbone regardless of ``config.backbone``.
    ``config.objective == "vae"`` builds the VAE objective (the pre-CSSL
    UCL substrate) on the flattened input instead.
    """
    if config.objective == "vae":
        input_dim = int(np.prod(sample_shape))
        return VAEObjective(input_dim, config.representation_dim, rng=rng)
    if len(sample_shape) == 3:
        channels, height, width = sample_shape
        if height != width:
            raise ValueError(f"images must be square, got {sample_shape}")
        backbone = build_backbone(config.backbone, rng, in_channels=channels,
                                  image_size=height)
    elif len(sample_shape) == 1:
        backbone = build_backbone("mlp", rng, input_dim=sample_shape[0],
                                  hidden_dim=max(config.representation_dim, 32))
    else:
        raise ValueError(f"unsupported sample shape {sample_shape}")

    encoder = Encoder(backbone, config.representation_dim, rng=rng)
    if config.objective == "simsiam":
        return SimSiam(encoder, rng=rng)
    if config.objective == "barlow":
        return BarlowTwins(encoder, rng=rng)
    if config.objective == "byol":
        return BYOL(encoder, rng=rng)
    raise ValueError(f"unknown objective {config.objective!r}")
