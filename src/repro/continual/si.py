"""Synaptic Intelligence (Zenke et al. 2017), adapted to the CSSL loss.

SI tracks a per-parameter importance through the path integral of the loss
gradient along the optimization trajectory (``omega_i += -g_i * delta_i``
per step), consolidates it at each task boundary into
``Omega_i += omega_i / ((theta_i - theta_i^start)^2 + xi)``, and penalizes
drift from the previous task's solution:

``L = L_css + lambda * sum_i Omega_i (theta_i - theta_i^*)^2``.

The paper selects SI as the label-free SCL representative because its
importance signal is the training-loss gradient, which exists in the
unsupervised setting too.
"""

from __future__ import annotations

import numpy as np

from repro.continual.config import ContinualConfig
from repro.continual.method import ContinualMethod
from repro.data.splits import Task
from repro.ssl.base import CSSLObjective
from repro.tensor.tensor import Tensor


class SynapticIntelligence(ContinualMethod):
    """Path-integral importance regularization (Zenke et al. 2017)."""

    name = "si"

    def __init__(self, objective: CSSLObjective, config: ContinualConfig,
                 rng: np.random.Generator, xi: float = 1e-3):
        super().__init__(objective, config, rng)
        self.xi = xi
        # Live references into the objective's parameters (checkpointed by
        # the objective); re-derived here, never serialized.
        self._params = objective.parameters()  # repro-lint: disable=SER002
        self._omega = [np.zeros_like(p.data) for p in self._params]      # running path integral
        self._big_omega = [np.zeros_like(p.data) for p in self._params]  # consolidated importance
        self._anchor = [p.data.copy() for p in self._params]             # theta^* (previous task end)
        self._task_start = [p.data.copy() for p in self._params]
        self._pre_step: list[np.ndarray] | None = None
        self._task_index = 0

    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        self._task_index = task_index
        self._task_start = [p.data.copy() for p in self._params]
        self._omega = [np.zeros_like(p.data) for p in self._params]

    def batch_loss(self, view1, view2, raw) -> Tensor:
        loss = self.objective.css_loss(view1, view2)
        if self._task_index == 0:
            return loss
        penalty = 0.0
        for p, omega, anchor in zip(self._params, self._big_omega, self._anchor):
            if omega.any():
                drift = p - Tensor(anchor)
                penalty = penalty + (Tensor(omega) * drift * drift).sum()
        if isinstance(penalty, Tensor):
            loss = loss + self.config.si_lambda * penalty
        return loss

    def before_step(self) -> None:
        self._pre_step = [p.data.copy() for p in self._params]

    def after_step(self) -> None:
        if self._pre_step is None:
            return
        for i, p in enumerate(self._params):
            if p.grad is None:
                continue
            delta = p.data - self._pre_step[i]
            self._omega[i] += -p.grad * delta
        self._pre_step = None

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            xi=self.xi,
            omega=[a.copy() for a in self._omega],
            big_omega=[a.copy() for a in self._big_omega],
            anchor=[a.copy() for a in self._anchor],
            task_start=[a.copy() for a in self._task_start],
            task_index=self._task_index,
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.xi = float(state["xi"])
        self._omega = [np.asarray(a).copy() for a in state["omega"]]
        self._big_omega = [np.asarray(a).copy() for a in state["big_omega"]]
        self._anchor = [np.asarray(a).copy() for a in state["anchor"]]
        self._task_start = [np.asarray(a).copy() for a in state["task_start"]]
        self._task_index = int(state["task_index"])
        self._pre_step = None  # transient within-step scratch, never persisted

    def end_task(self, task: Task, task_index: int) -> None:
        for i, p in enumerate(self._params):
            total_change = p.data - self._task_start[i]
            self._big_omega[i] += np.maximum(self._omega[i], 0.0) / (total_change ** 2 + self.xi)
        self._anchor = [p.data.copy() for p in self._params]
