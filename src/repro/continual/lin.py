"""Lin et al. (ICME 2022) — continual contrastive learning baseline.

Cited by the paper (Sec. II-B2) as the other memory-based UCL method:
it "stores data based on k-means and maintains the representation distances
between stored and new data to prevent forgetting".  Concretely, this
implementation:

- stores each increment's k-means cluster-center samples (the paper's
  Min-Var selection is this work's refinement; here we use the plain
  cluster-center storage), and
- adds a *distance-preservation* loss: the cosine-similarity structure
  between the stored samples and the current batch, as seen by the frozen
  old model, must be preserved by the live model:

  ``L = L_css(x1^n, x2^n) + w * || S_cur - S_old ||^2 / |S|``

  where ``S[a, b] = cos(f(x_a^m), f(x_b^n))``.
"""

from __future__ import annotations

import numpy as np

from repro.continual.config import ContinualConfig
from repro.continual.method import ContinualMethod
from repro.data.splits import Task
from repro.eval.protocol import extract_representations
from repro.memory.buffer import MemoryBuffer, MemoryRecord
from repro.selection.base import SelectionContext
from repro.selection.kmeans import KMeansSelection
from repro.ssl.base import CSSLObjective
from repro.tensor import ops
from repro.tensor.tensor import Tensor, no_grad


class LinContinual(ContinualMethod):
    name = "lin"
    uses_memory = True

    def __init__(self, objective: CSSLObjective, config: ContinualConfig,
                 rng: np.random.Generator, distance_weight: float = 1.0):
        super().__init__(objective, config, rng)
        self.buffer: MemoryBuffer | None = None
        self.old_objective: CSSLObjective | None = None
        self.distance_weight = distance_weight
        # Stateless selection policy, rebuilt fresh each construction.
        self._selector = KMeansSelection()  # repro-lint: disable=SER002

    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        if self.buffer is None:
            self.buffer = MemoryBuffer(self.config.memory_budget, n_tasks)
        self.old_objective = None
        if task_index > 0:
            self.old_objective = self.objective.copy()
            self.old_objective.eval()

    def _similarity(self, memory_reps: Tensor, batch_reps: Tensor) -> Tensor:
        return ops.l2_normalize(memory_reps, axis=1) @ ops.l2_normalize(batch_reps, axis=1).T

    def batch_loss(self, view1, view2, raw) -> Tensor:
        loss = self.objective.css_loss(view1, view2)
        if (self.buffer is None or self.buffer.is_empty
                or self.old_objective is None or self.config.replay_batch_size == 0):
            return loss
        idx = self.buffer.sample_batch(self.config.replay_batch_size, self.rng)
        memory = self.buffer.all_samples()[idx]
        with no_grad():
            old_memory = self.old_objective.representation(memory)
            old_batch = self.old_objective.representation(raw)
            target = self._similarity(old_memory, old_batch).numpy()
        current = self._similarity(self.objective.representation(memory),
                                   self.objective.representation(raw))
        diff = current - Tensor(target)
        preservation = (diff * diff).mean()
        return loss + self.distance_weight * preservation

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["buffer"] = None if self.buffer is None else self.buffer.state_dict()
        state["old_objective"] = (None if self.old_objective is None
                                  else self.old_objective.state_dict())
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.buffer = (None if state["buffer"] is None
                       else MemoryBuffer.from_state_dict(state["buffer"]))
        if state["old_objective"] is None:
            self.old_objective = None
        else:
            self.old_objective = self.objective.copy()
            self.old_objective.load_state_dict(state["old_objective"])
            self.old_objective.eval()

    def end_task(self, task: Task, task_index: int) -> None:
        quota = self.buffer.per_task_quota
        if quota == 0:
            return
        representations = extract_representations(self.objective, task.train.x)
        context = SelectionContext(representations=representations, budget=quota,
                                   rng=self.rng)
        chosen = self._selector.select(context)
        self.buffer.add(MemoryRecord(task_id=task_index,
                                     samples=task.train.x[chosen].copy(),
                                     labels=task.train.y[chosen].copy()))
