"""CaSSLe (Fini et al. 2022) — distillation-only forgetting prevention.

At each increment, the model from the previous increment is frozen and a
fresh distillation head ``p_dis`` is created.  Training minimizes

``L = L_css(x1, x2) + 1/2 (L_dis(x1) + L_dis(x2))``   (Eq. 9)

where ``L_dis`` aligns the current (projected) representation of each view
with the frozen model's representation of the same view.  No data is
stored: the old model alone carries the old knowledge, which the paper
identifies as CaSSLe's weakness over long sequences.
"""

from __future__ import annotations

import numpy as np

from repro.continual.config import ContinualConfig
from repro.continual.method import ContinualMethod
from repro.data.splits import Task
from repro.nn.module import Parameter
from repro.ssl.base import CSSLObjective
from repro.ssl.distill import DistillationHead
from repro.tensor.tensor import Tensor, no_grad


class CaSSLe(ContinualMethod):
    """Distillation-only forgetting prevention (Fini et al. 2022)."""

    name = "cassle"

    def __init__(self, objective: CSSLObjective, config: ContinualConfig,
                 rng: np.random.Generator):
        super().__init__(objective, config, rng)
        self.old_objective: CSSLObjective | None = None
        self.head: DistillationHead | None = None

    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        if task_index == 0:
            return
        self.old_objective = self.objective.copy()
        self.old_objective.eval()
        self.head = DistillationHead(self.objective, rng=self.rng)

    def trainable_parameters(self) -> list[Parameter]:
        params = self.objective.parameters()
        if self.head is not None:
            params = params + self.head.parameters()
        return params

    def _distill(self, view: np.ndarray) -> Tensor:
        with no_grad():
            target = self.old_objective.representation(view).numpy()
        return self.head.loss(view, target)

    def batch_loss(self, view1, view2, raw) -> Tensor:
        loss = self.objective.css_loss(view1, view2)
        if self.old_objective is None:
            return loss
        distill = (self._distill(view1) + self._distill(view2)) * 0.5
        return loss + self.config.distill_weight * distill

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["old_objective"] = (None if self.old_objective is None
                                  else self.old_objective.state_dict())
        state["head"] = None if self.head is None else self.head.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if state["old_objective"] is None:
            self.old_objective = None
        else:
            # Clone the live objective for structure, then overwrite with the
            # frozen weights the snapshot recorded.
            self.old_objective = self.objective.copy()
            self.old_objective.load_state_dict(state["old_objective"])
            self.old_objective.eval()
        if state["head"] is None:
            self.head = None
        else:
            self.head = DistillationHead(self.objective, rng=self.rng)
            self.head.load_state_dict(state["head"])
