"""The continual training loop (Fig. 2's training + selecting stages).

For each increment: fresh optimizer over the method's current parameter set
(heads change per increment), epochs of two-view CSSL batches, method hooks
around each optimizer step, then the method's ``end_task`` (selection /
consolidation) and a KNN evaluation over all increments seen so far — one
row of the accuracy matrix.

Fault tolerance (``repro.runtime``) threads through the same loop:

- with a ``checkpoint_dir``, the full run state (method, memory, RNG
  stream, partial accuracy matrix) is checkpointed atomically after every
  increment, and ``run(..., resume=True)`` continues a killed run
  bit-for-bit from the last good checkpoint;
- with a ``guardrails`` policy, every batch is screened for NaN/Inf loss,
  exploding gradients, and autograd anomalies, recovering by an escalating
  ladder: skip batch → restore the task-start state with LR backoff →
  abort with a structured failure report (:class:`TrainingDiverged`).

With ``config.workers`` set, shard-safe methods run each batch through the
sharded regime (``repro.parallel``): fixed micro-shards, broadcast state,
fixed-order tree all-reduce into the same leaf ``.grad`` buffers.  Results
are bit-for-bit identical for every worker count; a worker dying mid-step
surfaces as a ``WorkerFailure`` that enters the guardrail ladder like any
other poisoned batch.

The boundary signal is a *stream event*, not an assumption:
:meth:`ContinualTrainer.run` accepts either a plain ``TaskSequence``
(sharp boundaries, the classic path) or a
:class:`~repro.scenarios.streams.ScenarioStream`.  A boundary controller
turns the stream's shape into :class:`~repro.continual.method.BoundaryEvent`
begin/end pairs: sharp streams get one pair per segment (behaviour
identical to the pre-scenario trainer, pinned byte-for-byte by the parity
test), while ``task_free`` streams route every segment through a
:class:`~repro.scenarios.drift.DriftDetector` and emit boundaries only
when the input statistics drift — methods self-trigger selection and
consolidation.  Stream runs additionally record a
:class:`~repro.eval.transfer.TransferMatrix` (online + final accuracy on
the full eval panel per segment), rewritten atomically next to the
checkpoints *before* each checkpoint commit so resume restores it
bit-for-bit.
"""

from __future__ import annotations

import pathlib
import time

import numpy as np

from repro.augment.base import TwoViewAugment
from repro.augment.image import simsiam_image_pipeline
from repro.augment.tabular import tabular_pipeline
from repro.continual.config import ContinualConfig, build_objective
from repro.continual.method import (BoundaryEvent, ContinualMethod,
                                    make_method)
from repro.data.dataset import ArrayDataset
from repro.data.loader import DataLoader
from repro.data.splits import Task, TaskSequence
from repro.eval.metrics import ContinualResult
from repro.eval.protocol import evaluate_task, evaluate_tasks
from repro.eval.transfer import TransferMatrix
from repro.faults import plane as _faults
from repro.optim import SGD, Adam, ConstantLR, CosineLR
from repro.parallel import N_SHARDS, ShardedStep, WorkerFailure
from repro.runtime.checkpoint import CheckpointError, CheckpointManager
from repro.runtime.guardrail import (GuardrailPolicy, GuardrailViolation,
                                     RunLog, TrainingDiverged,
                                     build_failure_report, clip_detail,
                                     global_grad_norm)
from repro.scenarios.drift import DriftDetector
from repro.scenarios.streams import ScenarioStream
from repro.tensor.anomaly import AnomalyError, detect_anomaly
from repro.tensor.tape import TapedFunction
from repro.utils.rng import get_rng_state, set_rng_state
from repro.utils.serialization import (load_transfer_matrix,
                                       save_transfer_matrix)


def _build_optimizer(config: ContinualConfig, parameters):
    if config.optimizer == "sgd":
        return SGD(parameters, lr=config.lr, momentum=config.momentum,
                   weight_decay=config.weight_decay)
    if config.optimizer == "adam":
        return Adam(parameters, lr=config.lr, weight_decay=config.weight_decay)
    raise ValueError(f"unknown optimizer {config.optimizer!r}")


def _build_schedule(config: ContinualConfig, optimizer):
    if config.schedule == "cosine":
        return CosineLR(optimizer, total_epochs=config.epochs)
    if config.schedule == "constant":
        return ConstantLR(optimizer)
    raise ValueError(f"unknown schedule {config.schedule!r}")


def _build_augment(config: ContinualConfig, train_x: np.ndarray) -> TwoViewAugment:
    """Image pipeline for NCHW data, SCARF corruption for tabular rows."""
    if train_x.ndim == 4:
        return TwoViewAugment(simsiam_image_pipeline(padding=config.augment_padding))
    if train_x.ndim == 2:
        return TwoViewAugment(tabular_pipeline(train_x, config.tabular_corruption))
    raise ValueError(f"unsupported data shape {train_x.shape}")


class SharpBoundaryController:
    """Default boundary controller: every stream segment is its own task.

    Emits exactly the begin/end pair per segment the pre-scenario trainer
    hard-coded, routed through :meth:`ContinualMethod.on_boundary` — the
    behaviour-preserving half of the stream-event refactor.  Stateless,
    so its checkpoint contribution is ``None`` (sharp-stream checkpoint
    bytes stay identical to the legacy format).
    """

    def begin_segment(self, method: ContinualMethod, task: Task,
                      task_index: int, n_tasks: int) -> None:
        method.on_boundary(BoundaryEvent("begin", task, task_index, n_tasks))

    def end_segment(self, method: ContinualMethod, task: Task,
                    task_index: int, is_last: bool) -> None:
        method.on_boundary(BoundaryEvent("end", task, task_index))

    def state_dict(self) -> dict | None:
        return None

    def load_state_dict(self, state: dict | None) -> None:
        if state is not None:
            raise CheckpointError(
                "checkpoint carries task-free stream state but this run uses "
                "sharp boundaries — resume under the original scenario")


class TaskFreeBoundaryController:
    """Self-triggered boundaries for streams with no boundary signal.

    Routes every arriving segment's raw data through a
    :class:`~repro.scenarios.drift.DriftDetector`.  While the statistics
    hold steady, segments accumulate into the current *virtual task* and
    no method hook fires; when they drift, the previous virtual task ends
    — ``end`` is delivered with the merged data of all its segments, so
    selection methods (EDSR's boundary-triggered selection in particular)
    see one coherent increment — and a new one begins.  Virtual indices
    therefore lag segment indices; ``n_tasks`` passed at ``begin`` is the
    segment count, the upper bound on how many virtual tasks can exist
    (memory budgets split by it stay conservative).

    Fully serializable: the state (virtual index, open segment indices,
    detector statistics) joins the guardrail snapshot and the checkpoint
    run state, so restores and resumes replay the detection trajectory
    bit-for-bit.  The stream itself is not serialized — it is rebuilt as
    a pure function of the scenario config, and the open-segment indices
    re-reference it.
    """

    def __init__(self, stream: ScenarioStream, detector: DriftDetector):
        # Rebuilt deterministically from the scenario config on resume;
        # the serialized state references it by segment index only.
        self._stream = stream  # repro-lint: disable=SER002
        self.detector = detector
        self.virtual_index = -1
        self.open_segments: list[int] = []

    def begin_segment(self, method: ContinualMethod, task: Task,
                      task_index: int, n_tasks: int) -> None:
        drifted = self.detector.observe(task.train.x)
        if self.virtual_index < 0:
            self.virtual_index = 0
            self.open_segments = [task_index]
            method.on_boundary(BoundaryEvent("begin", task, 0, n_tasks,
                                             kind="drift"))
        elif drifted:
            method.on_boundary(BoundaryEvent("end", self._merged_task(),
                                             self.virtual_index, kind="drift"))
            self.virtual_index += 1
            self.open_segments = [task_index]
            method.on_boundary(BoundaryEvent("begin", task, self.virtual_index,
                                             n_tasks, kind="drift"))
        else:
            self.open_segments.append(task_index)

    def end_segment(self, method: ContinualMethod, task: Task,
                    task_index: int, is_last: bool) -> None:
        if is_last:
            method.on_boundary(BoundaryEvent("end", self._merged_task(),
                                             self.virtual_index, kind="drift"))

    def _merged_task(self) -> Task:
        """The finished virtual task: its open segments merged into one."""
        segments = [self._stream.segments[i].task for i in self.open_segments]
        train = ArrayDataset.concatenate(
            [s.train for s in segments],
            name=f"virtual-task-{self.virtual_index}")
        classes = tuple(int(c) for c in train.classes)
        return Task(task_id=self.virtual_index, classes=classes, train=train,
                    test=segments[-1].test)

    def state_dict(self) -> dict:
        return {
            "virtual_index": self.virtual_index,
            "open_segments": list(self.open_segments),
            "detector": self.detector.state_dict(),
        }

    def load_state_dict(self, state: dict | None) -> None:
        if state is None:
            raise CheckpointError(
                "checkpoint carries no task-free stream state — it was "
                "written by a sharp-boundary run; resume under the original "
                "scenario")
        self.virtual_index = int(state["virtual_index"])
        self.open_segments = [int(i) for i in state["open_segments"]]
        self.detector.load_state_dict(state["detector"])


class ContinualTrainer:
    """Runs one method over one task sequence.

    Parameters
    ----------
    method:
        A constructed :class:`ContinualMethod` wrapping the live objective.
    config:
        The run configuration.
    rng:
        Generator for loader shuffling and augmentation.
    verbose:
        Print one line per increment.
    checkpoint_dir:
        Directory for per-task atomic checkpoints and the event log; the
        run becomes resumable via ``run(..., resume=True)``.  ``None``
        disables checkpointing.
    guardrails:
        A :class:`GuardrailPolicy` enabling divergence detection and
        recovery.  ``None`` (default) trains unguarded, exactly as before.
    keep_checkpoints:
        Retain only the newest N checkpoints (``None`` keeps all).
    """

    def __init__(self, method: ContinualMethod, config: ContinualConfig,
                 rng: np.random.Generator, verbose: bool = False,
                 checkpoint_dir: str | pathlib.Path | None = None,
                 guardrails: GuardrailPolicy | None = None,
                 keep_checkpoints: int | None = None):
        self.method = method
        self.config = config
        self.rng = rng
        self.verbose = verbose
        self.guardrails = guardrails
        self._taped_step: TapedFunction | None = None
        self._sharded_step: ShardedStep | None = None
        self._shard_active = False
        self._task_index = 0
        self._controller = SharpBoundaryController()
        #: The stream run's TransferMatrix (``None`` for plain sequences);
        #: populated by :meth:`run` and kept current row by row.
        self.transfer_matrix: TransferMatrix | None = None
        self.checkpoints = None
        log_path = None
        if checkpoint_dir is not None:
            self.checkpoints = CheckpointManager(checkpoint_dir, keep=keep_checkpoints)
            log_path = self.checkpoints.directory / "events.jsonl"
        self.log = RunLog(log_path)

    # ------------------------------------------------------------------
    # Run state
    # ------------------------------------------------------------------
    def _run_state(self, task_index: int, n_tasks: int,
                   result: ContinualResult) -> dict:
        """The full serializable state of the run after ``task_index``."""
        state = {
            "method_name": self.method.name,
            "n_tasks": n_tasks,
            "task_index": task_index,
            "method": self.method.state_dict(),
            "rng": get_rng_state(self.rng),
            "result": result.state_dict(),
        }
        # Only stateful controllers (task-free streams) contribute; sharp
        # runs omit the key so their checkpoint bytes stay identical to
        # the pre-scenario format.
        stream_state = self._controller.state_dict()
        if stream_state is not None:
            state["stream"] = stream_state
        return state

    def _restore_run_state(self, state: dict, n_tasks: int,
                           result: ContinualResult) -> int:
        """Load a checkpoint state; returns the first task still to run."""
        if state["method_name"] != self.method.name:
            raise CheckpointError(
                f"checkpoint was written by method {state['method_name']!r}, "
                f"this trainer runs {self.method.name!r}")
        if int(state["n_tasks"]) != n_tasks:
            raise CheckpointError(
                f"checkpoint covers a {state['n_tasks']}-task sequence, "
                f"this run has {n_tasks} tasks")
        self.method.load_state_dict(state["method"])
        set_rng_state(self.rng, state["rng"])
        result.load_state_dict(state["result"])
        self._controller.load_state_dict(state.get("stream"))
        return int(state["task_index"]) + 1

    def _save_checkpoint(self, task_index: int, n_tasks: int,
                         result: ContinualResult) -> None:
        if self.checkpoints is None:
            return
        # Informational only: the probe choice also lives in the result
        # state, and the sharded regime's results are worker-count
        # independent, so resume never reads this.
        meta = {"probe": self.config.probe}
        if self.config.workers is not None:
            meta.update(workers=self.config.workers, n_shards=N_SHARDS)
        try:
            path = self.checkpoints.save(
                task_index, self._run_state(task_index, n_tasks, result),
                meta=meta)
        except (OSError, CheckpointError) as exc:
            # Checkpointing is best-effort: a full disk or torn write must
            # not kill a run that is otherwise training fine.  The failure
            # is logged, the previous checkpoint stays the resume point
            # (resume re-runs the lost tasks bit-for-bit), and the swept
            # tmp residue is cleared on the next manager init.
            self.log.append("checkpoint-failed", task_index=task_index,
                            detail=clip_detail(exc))
            return
        self.log.append("checkpoint", task_index=task_index, path=str(path))

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, sequence: TaskSequence | ScenarioStream,
            resume: bool = False) -> ContinualResult:
        """Train over a task sequence or a scenario stream.

        A plain :class:`TaskSequence` runs the classic sharp-boundary
        loop.  A :class:`~repro.scenarios.streams.ScenarioStream` runs
        segment by segment under the stream's boundary controller and
        additionally fills :attr:`transfer_matrix` — one online row
        (probed *before* the segment trains) and one final row (after)
        over the stream's full eval panel per segment.
        """
        config = self.config
        method = self.method
        stream = sequence if isinstance(sequence, ScenarioStream) else None
        n_tasks = len(sequence)
        result = ContinualResult(n_tasks, name=method.name, probe=config.probe)
        self._controller = self._make_controller(stream)
        transfer = None if stream is None else self._make_transfer(stream)
        self.transfer_matrix = transfer
        start_task = 0
        prior_elapsed = 0.0

        if resume:
            if self.checkpoints is None:
                raise ValueError("resume=True requires a checkpoint_dir")
            loaded = self.checkpoints.load_latest()
            if loaded is not None:
                for reason in loaded.skipped:
                    self.log.append("corrupt-checkpoint", detail=reason)
                start_task = self._restore_run_state(loaded.state, n_tasks, result)
                prior_elapsed = result.elapsed_seconds
                if transfer is not None:
                    self._restore_transfer(transfer, start_task)
                self.log.append("resume", task_index=start_task,
                                checkpoint=str(loaded.path))
                if self.verbose:
                    print(f"[{method.name}] resumed after task "
                          f"{start_task}/{n_tasks} from {loaded.path.name}")

        start = time.perf_counter()
        try:
            for task_index in range(n_tasks):
                if task_index < start_task:
                    continue
                task = (sequence[task_index] if stream is None
                        else stream.segments[task_index].task)
                if transfer is not None:
                    online_row = evaluate_tasks(method.objective,
                                                list(stream.eval_tasks),
                                                knn_k=config.knn_k,
                                                probe=config.probe)
                self._run_task(task, task_index, n_tasks)
                if stream is None:
                    accuracies = evaluate_tasks(method.objective,
                                                list(sequence)[:task_index + 1],
                                                knn_k=config.knn_k,
                                                probe=config.probe)
                else:
                    final_row = evaluate_tasks(method.objective,
                                               list(stream.eval_tasks),
                                               knn_k=config.knn_k,
                                               probe=config.probe)
                    accuracies = self._segment_accuracies(stream, task_index,
                                                          final_row)
                result.record_row(accuracies)
                result.elapsed_seconds = prior_elapsed + (time.perf_counter() - start)
                if transfer is not None:
                    # Matrix first, checkpoint second: a crash between the
                    # two leaves the matrix one row ahead, which resume
                    # truncates back to the checkpoint's row count — the
                    # reverse order would lose a row it cannot recompute.
                    transfer.record_row(online_row, final_row)
                    self._save_transfer(transfer)
                self._save_checkpoint(task_index, n_tasks, result)
                # Whole-process crash site (chaos scenarios): fires between
                # the checkpoint commit and the next task, the window a
                # SIGKILL would most likely land in on a long run.
                _faults.fault_point("trainer.task.boundary")
                if self.verbose:
                    print(f"[{method.name}] task {task_index + 1}/{n_tasks}: "
                          f"Acc={result.acc_at(task_index):.4f} Fgt={result.fgt_at(task_index):.4f}")
        finally:
            if self._sharded_step is not None:
                self._sharded_step.close()
                self._sharded_step = None
            self._shard_active = False

        result.elapsed_seconds = prior_elapsed + (time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------
    # Stream plumbing (boundary controllers and the transfer matrix)
    # ------------------------------------------------------------------
    def _make_controller(self, stream: ScenarioStream | None):
        if stream is not None and stream.boundary_mode == "task_free":
            return TaskFreeBoundaryController(
                stream, DriftDetector(stream.drift_threshold))
        return SharpBoundaryController()

    def _make_transfer(self, stream: ScenarioStream) -> TransferMatrix:
        eval_names = [f"task-{task.task_id}" for task in stream.eval_tasks]
        chance = [1.0 / max(1, len(task.classes))
                  for task in stream.eval_tasks]
        return TransferMatrix(
            len(stream), eval_names, name=self.method.name,
            scenario=stream.scenario, probe=self.config.probe,
            row_sources=[segment.source_task for segment in stream.segments],
            chance=chance)

    def _segment_accuracies(self, stream: ScenarioStream, task_index: int,
                            final_row: list[float]) -> list[float]:
        """The classic result row over segments seen so far.

        Segments whose test split *is* an eval-panel task (``eval_alias``)
        reuse the panel row — for sharp streams that makes the result
        matrix provably equal to the classic path's; alias-free segments
        are probed directly.
        """
        accuracies = []
        for segment in stream.segments[:task_index + 1]:
            if segment.eval_alias is not None:
                accuracies.append(final_row[segment.eval_alias])
            else:
                accuracies.append(evaluate_task(
                    self.method.objective, segment.task, self.config.knn_k,
                    probe=self.config.probe))
        return accuracies

    def _transfer_path(self) -> pathlib.Path | None:
        if self.checkpoints is None:
            return None
        return self.checkpoints.directory / "transfer-matrix.json"

    def _save_transfer(self, transfer: TransferMatrix) -> None:
        path = self._transfer_path()
        if path is None:
            return
        try:
            save_transfer_matrix(transfer, path)
        except OSError as exc:
            # Best-effort, like checkpoints: a failed matrix write must
            # not kill a training run.  Resume backfills what it cannot
            # recover (see _restore_transfer).
            self.log.append("transfer-save-failed", detail=clip_detail(exc))

    def _restore_transfer(self, transfer: TransferMatrix,
                          start_task: int) -> None:
        """Reload the on-disk matrix and align it with the checkpoint.

        The matrix is written *before* each checkpoint, so it is normally
        at or ahead of the checkpoint's row count: ahead gets truncated
        (the re-run segments re-record identical rows).  Behind means an
        earlier save failed — those model states are gone, so the lost
        rows are backfilled as NaN and logged rather than silently
        misaligned.
        """
        path = self._transfer_path()
        loaded = None
        if path is not None and path.exists():
            try:
                loaded = load_transfer_matrix(path)
            except (OSError, ValueError, KeyError) as exc:
                self.log.append("transfer-load-failed",
                                detail=clip_detail(exc))
        if loaded is not None and (loaded.n_rows != transfer.n_rows
                                   or loaded.n_eval != transfer.n_eval):
            self.log.append(
                "transfer-load-failed",
                detail=f"matrix shape {loaded.n_rows}x{loaded.n_eval} does "
                       f"not match stream {transfer.n_rows}x{transfer.n_eval}")
            loaded = None
        if loaded is not None:
            transfer.load_state_dict(loaded.state_dict())
        if transfer.rows_recorded > start_task:
            transfer.truncate(start_task)
        elif transfer.rows_recorded < start_task:
            self.log.append("transfer-backfilled",
                            rows=start_task - transfer.rows_recorded)
            transfer.backfill(start_task)

    def _log_step_event(self, kind: str, **fields) -> None:
        """Operational events from the sharded step (e.g. pool-degraded)."""
        self.log.append(kind, task_index=self._task_index, **fields)

    # ------------------------------------------------------------------
    # One task, with the guardrail escalation ladder
    # ------------------------------------------------------------------
    def _run_task(self, task, task_index: int, n_tasks: int) -> None:
        config = self.config
        method = self.method
        policy = self.guardrails
        self._task_index = task_index
        method.augment = _build_augment(config, task.train.x)

        # Sharded regime: engages only when the config asks for it, the
        # method is shard-safe, and guardrails don't require per-op anomaly
        # inspection (the shards run out of process, beyond its reach).
        # Ineligibility falls back to the classic step with a logged reason,
        # never an error — semantics stay identical either way.
        self._shard_active = False
        if config.workers is not None:
            reason = None
            if not method.shard_safe:
                reason = f"method {method.name!r} is not shard-safe"
            elif policy is not None and policy.anomaly_mode:
                reason = "guardrail anomaly mode requires eager in-process dispatch"
            if reason is not None:
                self.log.append("shard-fallback", task_index=task_index,
                                detail=reason)
            else:
                if self._sharded_step is None:
                    self._sharded_step = ShardedStep(
                        method.objective, config, task.train.x.shape[1:],
                        workers=config.workers, use_tape=config.use_tape,
                        on_event=self._log_step_event)
                self._shard_active = True

        # Fresh tape per task: the trainable parameter set (heads, frozen
        # backbones) can change at task boundaries, and a stale tape would
        # fail its validity check every batch anyway.  The sharded step
        # tapes per shard shape inside its executors instead.
        self._taped_step = None
        if config.use_tape and method.tape_safe and not self._shard_active:
            self._taped_step = TapedFunction(self._eager_loss_backward,
                                             name=f"{method.name}-step")

        # Task-start snapshot: equivalent to the last good checkpoint (same
        # boundary), held in memory so a restore never touches disk.  The
        # boundary controller's state joins it: begin_segment can fire
        # method hooks and advance the drift detector, and a restore must
        # replay both identically.
        snapshot = None
        if policy is not None:
            snapshot = {"method": method.state_dict(),
                        "rng": get_rng_state(self.rng),
                        "stream": self._controller.state_dict()}

        restores = 0
        while True:
            self._controller.begin_segment(method, task, task_index, n_tasks)
            optimizer = _build_optimizer(config, method.trainable_parameters())
            if restores:
                optimizer.lr *= policy.lr_backoff ** restores
            schedule = _build_schedule(config, optimizer)
            # One draw keys every epoch's shuffle: the order becomes a pure
            # function of (seed, epoch) instead of the trainer RNG's rolling
            # state, so iteration order can never drift with worker count or
            # with how much RNG the steps in between consumed.
            loader_seed = int(self.rng.integers(2 ** 63))
            loader = DataLoader(task.train, config.batch_size, shuffle=True,
                                seed=loader_seed)
            method.objective.train()

            if self._train_task_epochs(loader, schedule, optimizer, task_index):
                self._controller.end_segment(method, task, task_index,
                                             task_index == n_tasks - 1)
                return

            # Too many poisoned batches: escalate to restore + LR backoff.
            if restores >= policy.max_restores_per_task:
                self._abort(task_index, restores)
            restores += 1
            method.load_state_dict(snapshot["method"])
            set_rng_state(self.rng, snapshot["rng"])
            self._controller.load_state_dict(snapshot["stream"])
            self.log.append("restore", task_index=task_index, restores=restores,
                            lr_scale=policy.lr_backoff ** restores)
            if self.verbose:
                print(f"[{method.name}] task {task_index + 1}: diverged, "
                      f"restored task-start state (retry {restores}, "
                      f"lr x{policy.lr_backoff ** restores:g})")

        # unreachable

    def _train_task_epochs(self, loader, schedule, optimizer,
                           task_index: int) -> bool:
        """Run the epoch loop; ``False`` means the skip budget was exhausted."""
        config = self.config
        policy = self.guardrails
        skips = 0
        for epoch in range(config.epochs):
            schedule.step(epoch)
            loader.set_epoch(epoch)
            try:
                for batch_index, (x_batch, _y_batch) in enumerate(loader):
                    event = self._guarded_step(x_batch, optimizer, task_index,
                                               epoch, batch_index)
                    if event is None:
                        continue
                    skips += 1
                    if skips > policy.max_skips_per_task:
                        self.log.append("skip-budget-exhausted",
                                        task_index=task_index,
                                        epoch=epoch, skips=skips)
                        return False
            except OSError as exc:
                # A persistent read fault survived the loader's bounded
                # retries: the rest of this epoch is unreadable.  Under a
                # guardrail policy it enters the ladder like a poisoned
                # batch (skip the epoch, charge the skip budget); unguarded
                # runs propagate it — data loss is not silently ignorable.
                if policy is None:
                    raise
                skips += 1
                self.log.append("loader-fault", action="skip-epoch",
                                task_index=task_index, epoch=epoch,
                                detail=clip_detail(exc))
                if skips > policy.max_skips_per_task:
                    self.log.append("skip-budget-exhausted",
                                    task_index=task_index,
                                    epoch=epoch, skips=skips)
                    return False
        return True

    def _eager_loss_backward(self, view1, view2, x_batch):
        """The raw step body: loss forward + backward, eager dispatch."""
        loss = self.method.batch_loss(view1, view2, x_batch)
        loss.backward()
        return loss

    def _loss_backward(self, view1, view2, x_batch):
        """Forward + backward, sharded or tape-replayed when eligible.

        All three dispatch targets land gradients in the same leaf
        ``.grad`` buffers.  The sharded step only engages for shard-safe
        methods, whose ``batch_loss`` ignores ``x_batch`` by definition.
        For the taped path all three batch arrays are declared as tape
        inputs so the validity check covers them even when ``batch_loss``
        ignores ``x_batch``.
        """
        if self._shard_active:
            return self._sharded_step.loss_backward(view1, view2)
        if self._taped_step is not None:
            return self._taped_step(view1, view2, x_batch)
        return self._eager_loss_backward(view1, view2, x_batch)

    def _guarded_step(self, x_batch, optimizer, task_index: int, epoch: int,
                      batch_index: int) -> dict | None:
        """One optimizer step; returns the logged event if the batch was skipped."""
        method = self.method
        policy = self.guardrails
        view1, view2 = method.augment(x_batch, self.rng)
        optimizer.zero_grad()

        if policy is None:
            self._loss_backward(view1, view2, x_batch)
            method.before_step()
            optimizer.step()
            method.after_step()
            return None

        try:
            if policy.anomaly_mode:
                # Anomaly mode inspects every eager dispatch, so this path
                # never tapes (a capture under anomaly marks itself unsafe).
                with detect_anomaly():
                    loss = method.batch_loss(view1, view2, x_batch)
                    self._check_loss(loss, policy)
                    loss.backward()
            else:
                # The taped step runs forward and backward as one unit, so
                # the loss screen moves after backward; a violation still
                # skips the batch and zero_grad discards the gradients, so
                # the resulting state is identical.
                loss = self._loss_backward(view1, view2, x_batch)
                self._check_loss(loss, policy)
        except AnomalyError as exc:
            optimizer.zero_grad()
            return self._skip_event("anomaly", exc, task_index, epoch, batch_index)
        except GuardrailViolation as exc:
            optimizer.zero_grad()
            return self._skip_event(exc.kind, exc, task_index, epoch, batch_index)
        except WorkerFailure as exc:
            # A worker died/hung/raised mid-step.  The pool has already
            # respawned dead workers; the gradients are unusable, so this
            # batch enters the ladder like any other poisoned batch:
            # skip → (budget exhausted) restore → abort.
            optimizer.zero_grad()
            return self._skip_event("worker-failure", exc, task_index, epoch,
                                    batch_index)

        norm = global_grad_norm(optimizer.parameters)
        if not np.isfinite(norm) or (policy.max_grad_norm is not None
                                     and norm > policy.max_grad_norm):
            optimizer.zero_grad()
            return self._skip_event(
                "grad-explosion",
                f"global gradient norm {norm:.3e} exceeds "
                f"{policy.max_grad_norm:.3e}" if np.isfinite(norm)
                else f"global gradient norm is {norm}",
                task_index, epoch, batch_index)

        method.before_step()
        optimizer.step()
        method.after_step()
        return None

    @staticmethod
    def _check_loss(loss, policy: GuardrailPolicy) -> None:
        value = float(loss.data)
        if not np.isfinite(value):
            raise GuardrailViolation("nonfinite-loss", f"batch loss is {value}")
        if policy.max_loss is not None and abs(value) > policy.max_loss:
            raise GuardrailViolation(
                "loss-explosion",
                f"batch loss {value:.3e} exceeds {policy.max_loss:.3e}")

    def _skip_event(self, kind: str, detail, task_index: int, epoch: int,
                    batch_index: int) -> dict:
        return self.log.append(kind, action="skip-batch", task_index=task_index,
                               epoch=epoch, batch=batch_index,
                               detail=clip_detail(detail))

    def _abort(self, task_index: int, restores: int) -> None:
        report = build_failure_report(self.method.name, task_index, restores,
                                      self.guardrails, self.log)
        report_path = self.log.write_failure_report(report)
        self.log.append("abort", task_index=task_index, restores=restores,
                        report=None if report_path is None else str(report_path))
        raise TrainingDiverged(report["message"], report=report,
                               report_path=report_path)


def run_method(name: str, sequence: TaskSequence, config: ContinualConfig,
               seed: int = 0, verbose: bool = False,
               checkpoint_dir: str | pathlib.Path | None = None,
               resume: bool = False,
               guardrails: GuardrailPolicy | None = None) -> ContinualResult:
    """One-call convenience: build objective + method, train, return result.

    ``checkpoint_dir``/``resume``/``guardrails`` are forwarded to
    :class:`ContinualTrainer`; a resumed run rebuilds the objective and
    method from the same seed, then the checkpoint overwrites every piece of
    state (including the RNG stream), so the continuation is bit-for-bit
    identical to the uninterrupted run.
    """
    rng = np.random.default_rng(seed)
    sample_shape = sequence[0].train.x.shape[1:]
    objective = build_objective(config, sample_shape, rng)
    method = make_method(name, objective, config, rng)
    trainer = ContinualTrainer(method, config, rng, verbose=verbose,
                               checkpoint_dir=checkpoint_dir,
                               guardrails=guardrails)
    return trainer.run(sequence, resume=resume)
