"""The continual training loop (Fig. 2's training + selecting stages).

For each increment: fresh optimizer over the method's current parameter set
(heads change per increment), epochs of two-view CSSL batches, method hooks
around each optimizer step, then the method's ``end_task`` (selection /
consolidation) and a KNN evaluation over all increments seen so far — one
row of the accuracy matrix.
"""

from __future__ import annotations

import time

import numpy as np

from repro.augment.base import TwoViewAugment
from repro.augment.image import simsiam_image_pipeline
from repro.augment.tabular import tabular_pipeline
from repro.continual.config import ContinualConfig, build_objective
from repro.continual.method import ContinualMethod, make_method
from repro.data.loader import DataLoader
from repro.data.splits import TaskSequence
from repro.eval.metrics import ContinualResult
from repro.eval.protocol import evaluate_tasks
from repro.optim import SGD, Adam, ConstantLR, CosineLR


def _build_optimizer(config: ContinualConfig, parameters):
    if config.optimizer == "sgd":
        return SGD(parameters, lr=config.lr, momentum=config.momentum,
                   weight_decay=config.weight_decay)
    if config.optimizer == "adam":
        return Adam(parameters, lr=config.lr, weight_decay=config.weight_decay)
    raise ValueError(f"unknown optimizer {config.optimizer!r}")


def _build_schedule(config: ContinualConfig, optimizer):
    if config.schedule == "cosine":
        return CosineLR(optimizer, total_epochs=config.epochs)
    if config.schedule == "constant":
        return ConstantLR(optimizer)
    raise ValueError(f"unknown schedule {config.schedule!r}")


def _build_augment(config: ContinualConfig, train_x: np.ndarray) -> TwoViewAugment:
    """Image pipeline for NCHW data, SCARF corruption for tabular rows."""
    if train_x.ndim == 4:
        return TwoViewAugment(simsiam_image_pipeline(padding=config.augment_padding))
    if train_x.ndim == 2:
        return TwoViewAugment(tabular_pipeline(train_x, config.tabular_corruption))
    raise ValueError(f"unsupported data shape {train_x.shape}")


class ContinualTrainer:
    """Runs one method over one task sequence.

    Parameters
    ----------
    method:
        A constructed :class:`ContinualMethod` wrapping the live objective.
    config:
        The run configuration.
    rng:
        Generator for loader shuffling and augmentation.
    verbose:
        Print one line per increment.
    """

    def __init__(self, method: ContinualMethod, config: ContinualConfig,
                 rng: np.random.Generator, verbose: bool = False):
        self.method = method
        self.config = config
        self.rng = rng
        self.verbose = verbose

    def run(self, sequence: TaskSequence) -> ContinualResult:
        config = self.config
        method = self.method
        result = ContinualResult(len(sequence), name=method.name)
        start = time.perf_counter()

        for task_index, task in enumerate(sequence):
            method.augment = _build_augment(config, task.train.x)
            method.begin_task(task, task_index, len(sequence))
            optimizer = _build_optimizer(config, method.trainable_parameters())
            schedule = _build_schedule(config, optimizer)
            loader = DataLoader(task.train, config.batch_size, shuffle=True, rng=self.rng)

            method.objective.train()
            for epoch in range(config.epochs):
                schedule.step(epoch)
                for x_batch, _y_batch in loader:
                    view1, view2 = method.augment(x_batch, self.rng)
                    optimizer.zero_grad()
                    loss = method.batch_loss(view1, view2, x_batch)
                    loss.backward()
                    method.before_step()
                    optimizer.step()
                    method.after_step()

            method.end_task(task, task_index)
            accuracies = evaluate_tasks(method.objective, list(sequence)[:task_index + 1],
                                        knn_k=config.knn_k)
            result.record_row(accuracies)
            if self.verbose:
                print(f"[{method.name}] task {task_index + 1}/{len(sequence)}: "
                      f"Acc={result.acc_at(task_index):.4f} Fgt={result.fgt_at(task_index):.4f}")

        result.elapsed_seconds = time.perf_counter() - start
        return result


def run_method(name: str, sequence: TaskSequence, config: ContinualConfig,
               seed: int = 0, verbose: bool = False) -> ContinualResult:
    """One-call convenience: build objective + method, train, return result."""
    rng = np.random.default_rng(seed)
    sample_shape = sequence[0].train.x.shape[1:]
    objective = build_objective(config, sample_shape, rng)
    method = make_method(name, objective, config, rng)
    trainer = ContinualTrainer(method, config, rng, verbose=verbose)
    return trainer.run(sequence)
