"""EDSR — Effective Data Selection and Replay (the paper's method, Sec. III).

EDSR extends CaSSLe's distillation with an episodic memory chosen by
high-entropy selection and replayed through noise-enhanced distillation.
The final objective (Sec. III-C) is

``L = sum L_css(x1^n, x2^n)
    + sum 1/2 (L_dis(x1^n) + L_dis(x2^n))
    + sum 1/2 L_rpl(x1^m | r(x^m))``

Training stage: every batch combines the new-data terms with a replay term
on a memory batch.  Selecting stage (``end_task``): representations of the
just-learned increment are extracted *without augmentation* by the
optimized model; the configured strategy picks the quota (high-entropy by
default, Eq. 15); the kNN noise scales ``r(x)`` are computed against the
full increment and stored alongside the samples (Sec. III-B).

The ``selection`` and ``replay_loss`` config fields swap in every Table IV /
Table V variant without touching this class.
"""

from __future__ import annotations

import numpy as np

from repro.continual.cassle import CaSSLe
from repro.continual.config import ContinualConfig
from repro.data.splits import Task
from repro.eval.protocol import extract_representations
from repro.memory.buffer import MemoryBuffer, MemoryRecord
from repro.replay.losses import make_replay
from repro.replay.noise import noise_scales
from repro.replay.sampling import batch_similarities, make_sampling
from repro.selection.base import SelectionContext, make_strategy
from repro.ssl.base import CSSLObjective
from repro.tensor.tensor import Tensor


class EDSR(CaSSLe):
    """The paper's method: entropy-based selection + noise-enhanced replay."""

    name = "edsr"
    uses_memory = True

    def __init__(self, objective: CSSLObjective, config: ContinualConfig,
                 rng: np.random.Generator):
        super().__init__(objective, config, rng)
        self.buffer: MemoryBuffer | None = None
        # Stateless policy objects, rebuilt from config at construction;
        # nothing in them drifts during training, so the checkpoint skips
        # them.  The buffer itself is covered by state_dict.
        self.strategy = make_strategy(config.selection)  # repro-lint: disable=SER002
        self.replay = make_replay(config.replay_loss)  # repro-lint: disable=SER002
        self.sampling = make_sampling(config.replay_sampling)  # repro-lint: disable=SER002
        self._memory_old_reps: np.ndarray | None = None

    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        super().begin_task(task, task_index, n_tasks)
        if self.buffer is None:
            self.buffer = MemoryBuffer(self.config.memory_budget, n_tasks)
        # Cache the frozen old model's view of the memory once per increment
        # (used by similarity-based replay sampling, the Sec. IV-F extension).
        self._memory_old_reps = None
        if (self.sampling.needs_batch_context and self.old_objective is not None
                and not self.buffer.is_empty):
            self._memory_old_reps = extract_representations(
                self.old_objective, self.buffer.all_samples())

    def _replay_loss(self, raw: np.ndarray | None = None) -> Tensor | None:
        if self.buffer is None or self.buffer.is_empty or self.config.replay_batch_size == 0:
            return None
        if self.replay.needs_old_model and self.old_objective is None:
            return None
        similarities = None
        if self.sampling.needs_batch_context and raw is not None \
                and self._memory_old_reps is not None:
            batch_reps = extract_representations(self.objective, raw)
            similarities = batch_similarities(self._memory_old_reps, batch_reps)
        idx = self.sampling.sample(len(self.buffer), self.config.replay_batch_size,
                                   self.rng, similarities=similarities)
        batch = self.buffer.all_samples()[idx]
        noise = self.buffer.all_noise_scales()[idx] if self.replay.needs_noise_scales else None
        return self.replay.loss(
            batch,
            objective=self.objective,
            old_objective=self.old_objective,
            head=self.head,
            augment=self.augment.pipeline,
            noise=noise,
            rng=self.rng,
        )

    def batch_loss(self, view1, view2, raw) -> Tensor:
        loss = super().batch_loss(view1, view2, raw)  # L_css + distillation on new data
        replay = self._replay_loss(raw)
        if replay is not None:
            loss = loss + self.config.replay_weight * replay
        return loss

    def _view_variances(self, x: np.ndarray, n_views: int = 4) -> np.ndarray:
        """Per-sample variance of augmented-view representations (Min-Var)."""
        reps = np.stack([
            extract_representations(self.objective, self.augment.pipeline(x, self.rng))
            for _ in range(n_views)
        ])  # (V, N, d)
        return reps.var(axis=0).mean(axis=1)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["buffer"] = None if self.buffer is None else self.buffer.state_dict()
        state["memory_old_reps"] = (None if self._memory_old_reps is None
                                    else self._memory_old_reps.copy())
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.buffer = (None if state["buffer"] is None
                       else MemoryBuffer.from_state_dict(state["buffer"]))
        reps = state["memory_old_reps"]
        self._memory_old_reps = None if reps is None else np.asarray(reps)

    def end_task(self, task: Task, task_index: int) -> None:
        quota = self.buffer.per_task_quota
        if quota == 0:
            return
        representations = extract_representations(self.objective, task.train.x)
        view_variances = None
        if self.strategy.requires_view_variance:
            view_variances = self._view_variances(task.train.x)
        context = SelectionContext(
            representations=representations,
            budget=quota,
            rng=self.rng,
            view_variances=view_variances,
            n_groups=self.config.minvar_groups,
        )
        chosen = self.strategy.select(context)
        scales = noise_scales(representations[chosen], representations,
                              self.config.noise_neighbors, mode=self.config.noise_mode)
        self.buffer.add(MemoryRecord(
            task_id=task_index,
            samples=task.train.x[chosen].copy(),
            noise_scales=scales,
            labels=task.train.y[chosen].copy(),
        ))
