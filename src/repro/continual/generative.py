"""CURL-style generative replay on a VAE objective.

The VAE-based UCL lineage (VASE, CURL — Sec. I of the paper) prevents
forgetting by *generating* old data from a snapshot of the previous model
instead of storing real samples.  This simplified CURL implements exactly
that mechanism:

``L = ELBO(x^n) + w * ELBO(x_gen),  x_gen ~ decoder_old(z), z ~ N(0, I)``

It requires the objective to be a :class:`~repro.ssl.vae.VAEObjective`.
The paper's claim this method exists to test: VAE-based UCL trails
CSSL-based UCL on image benchmarks (reproduced in
``benchmarks/test_ext3_vae_lineage.py``).
"""

from __future__ import annotations

import numpy as np

from repro.continual.config import ContinualConfig
from repro.continual.method import ContinualMethod
from repro.data.splits import Task
from repro.ssl.vae import VAEObjective
from repro.tensor.tensor import Tensor


class GenerativeReplay(ContinualMethod):
    """Generative (pseudo-)replay from the previous increment's decoder."""

    name = "curl"

    def __init__(self, objective: VAEObjective, config: ContinualConfig,
                 rng: np.random.Generator, replay_weight: float | None = None):
        if not isinstance(objective, VAEObjective):
            raise TypeError("GenerativeReplay requires a VAEObjective "
                            "(ContinualConfig(objective='vae'))")
        super().__init__(objective, config, rng)
        # Immutable hyperparameter derived from the constructor arguments;
        # the caller rebuilds the method with the same config before loading.
        self.replay_weight = config.replay_weight if replay_weight is None else replay_weight  # repro-lint: disable=SER002
        self.old_objective: VAEObjective | None = None

    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        self.old_objective = None
        if task_index > 0:
            self.old_objective = self.objective.copy()
            self.old_objective.eval()

    def batch_loss(self, view1, view2, raw) -> Tensor:
        loss = self.objective.css_loss(view1, view2)
        if self.old_objective is None or self.config.replay_batch_size == 0:
            return loss
        generated = self.old_objective.generate(self.config.replay_batch_size)
        replay = self.objective.vae.elbo_loss(Tensor(generated), self.rng,
                                              self.objective.kl_weight)
        return loss + self.replay_weight * replay

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["old_objective"] = (None if self.old_objective is None
                                  else self.old_objective.state_dict())
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if state["old_objective"] is None:
            self.old_objective = None
        else:
            self.old_objective = self.objective.copy()
            self.old_objective.load_state_dict(state["old_objective"])
            self.old_objective.eval()
