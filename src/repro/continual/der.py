"""DER — Dark Experience Replay (Buzzega et al. 2020), unsupervised variant.

DER stores randomly chosen samples together with the *backbone output* the
model produced for them, and replays an MSE distillation term pulling the
current backbone output toward the stored one:

``L = L_css(x1^n, x2^n) + alpha * MSE(backbone(x^m), stored(x^m))``.

As the paper notes (Sec. IV-A4), DER distils "based on the output from the
CNN backbone model instead of representations", which neglects the
projector's representation space — one reason it trails the UCL methods.
"""

from __future__ import annotations

import numpy as np

from repro.continual.config import ContinualConfig
from repro.continual.method import ContinualMethod
from repro.data.splits import Task
from repro.memory.buffer import MemoryBuffer, MemoryRecord
from repro.ssl.base import CSSLObjective
from repro.tensor import ops
from repro.tensor.tensor import Tensor, no_grad


class DER(ContinualMethod):
    """Dark Experience Replay adapted to the unsupervised setting."""

    name = "der"
    uses_memory = True

    def __init__(self, objective: CSSLObjective, config: ContinualConfig,
                 rng: np.random.Generator):
        super().__init__(objective, config, rng)
        self.buffer: MemoryBuffer | None = None

    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        if self.buffer is None:
            self.buffer = MemoryBuffer(self.config.memory_budget, n_tasks)

    def batch_loss(self, view1, view2, raw) -> Tensor:
        loss = self.objective.css_loss(view1, view2)
        if self.buffer is None or self.buffer.is_empty:
            return loss
        idx = self.buffer.sample_batch(self.config.replay_batch_size, self.rng)
        samples = self.buffer.all_samples()[idx]
        targets = self.buffer.all_targets()[idx]
        current = self.objective.encoder.features(samples)
        replay = ops.mse(current, Tensor(targets))
        return loss + self.config.der_alpha * replay

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["buffer"] = None if self.buffer is None else self.buffer.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.buffer = (None if state["buffer"] is None
                       else MemoryBuffer.from_state_dict(state["buffer"]))

    def end_task(self, task: Task, task_index: int) -> None:
        quota = self.buffer.per_task_quota
        if quota == 0:
            return
        chosen = self.rng.choice(len(task.train), size=min(quota, len(task.train)),
                                 replace=False)
        samples = task.train.x[chosen]
        was_training = self.objective.training
        self.objective.eval()
        with no_grad():
            targets = self.objective.encoder.features(samples).numpy().copy()
        self.objective.train(was_training)
        self.buffer.add(MemoryRecord(task_id=task_index, samples=samples.copy(),
                                     targets=targets, labels=task.train.y[chosen].copy()))
