"""Finetune — the vanilla baseline (Sec. IV-A4).

Trains ``L_css`` on each increment with no forgetting prevention; the
behaviour is exactly the :class:`ContinualMethod` default.
"""

from __future__ import annotations

from repro.continual.method import ContinualMethod


class Finetune(ContinualMethod):
    """No forgetting prevention: the vanilla lower-bound baseline."""

    name = "finetune"
