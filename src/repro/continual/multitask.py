"""Multitask upper bound (Sec. IV-A4).

Trains one model jointly on the union of all increments with ``L_css`` —
i.e. outside the continual protocol — and evaluates per increment.  Its
``Acc`` upper-bounds continual methods; forgetting is undefined.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.continual.config import ContinualConfig, build_objective
from repro.continual.trainer import _build_augment, _build_optimizer, _build_schedule
from repro.data.loader import DataLoader
from repro.data.splits import TaskSequence
from repro.eval.protocol import evaluate_tasks


@dataclass
class MultitaskResult:
    """Final per-increment accuracies of the jointly trained model."""

    per_task: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    name: str = "multitask"

    def acc(self) -> float:
        return float(np.mean(self.per_task))

    def __repr__(self) -> str:
        return f"MultitaskResult(Acc={self.acc():.4f}, tasks={len(self.per_task)})"


def run_multitask(sequence: TaskSequence, config: ContinualConfig,
                  seed: int = 0, verbose: bool = False) -> MultitaskResult:
    """Joint training on all increments at once."""
    rng = np.random.default_rng(seed)
    merged = sequence.merged_train
    objective = build_objective(config, merged.x.shape[1:], rng)
    augment = _build_augment(config, merged.x)
    optimizer = _build_optimizer(config, objective.parameters())
    schedule = _build_schedule(config, optimizer)
    loader = DataLoader(merged, config.batch_size, shuffle=True, rng=rng)

    start = time.perf_counter()
    objective.train()
    for epoch in range(config.epochs):
        schedule.step(epoch)
        for x_batch, _y_batch in loader:
            view1, view2 = augment(x_batch, rng)
            optimizer.zero_grad()
            loss = objective.css_loss(view1, view2)
            loss.backward()
            optimizer.step()
        if verbose:
            print(f"[multitask] epoch {epoch + 1}/{config.epochs} loss={loss.item():.4f}")

    per_task = evaluate_tasks(objective, list(sequence), knn_k=config.knn_k,
                              probe=config.probe)
    return MultitaskResult(per_task=per_task, elapsed_seconds=time.perf_counter() - start)
