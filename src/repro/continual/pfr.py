"""PFR — Projected Functional Regularization (Gomez-Villa et al., CVPRW 2022).

Cited by the paper (Sec. II-B2) alongside CaSSLe as the other regularization-
based UCL method.  Like CaSSLe it distils the frozen previous model through a
learned projector (Eq. 9); unlike CaSSLe the alignment is a *plain* negative
cosine between the projected current representation and the old one — the
objective-specific predictor machinery is not reused.  That makes PFR
slightly weaker than CaSSLe under SimSiam (whose predictor-based alignment
matches the training geometry) but insensitive to the choice of objective.
"""

from __future__ import annotations

import numpy as np

from repro.continual.cassle import CaSSLe
from repro.ssl.base import CSSLObjective
from repro.tensor import ops
from repro.tensor.tensor import Tensor, no_grad


class PFR(CaSSLe):
    name = "pfr"

    def _distill(self, view: np.ndarray) -> Tensor:
        with no_grad():
            target = self.old_objective.representation(view).numpy()
        current = self.objective.representation(view)
        projected = self.head.projector(current)
        return -(ops.cosine_similarity(projected, Tensor(target))).mean()
