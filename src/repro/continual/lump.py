"""LUMP (Madaan et al. 2022) — mixup replay of random memory.

LUMP keeps a buffer of randomly stored old samples and, while learning the
new increment, replaces each training input with a mixup of new and stored
data (Sec. II-B2):

``x_bar = omega * x^n + (1 - omega) * x^m,  omega ~ Beta(alpha, alpha)``

and optimizes ``L_css(x_bar_1, x_bar_2)`` on the mixed views.  Both views of
a sample share the same ``omega`` and memory partner, as in the original.
"""

from __future__ import annotations

import numpy as np

from repro.continual.config import ContinualConfig
from repro.continual.method import ContinualMethod
from repro.data.splits import Task
from repro.memory.buffer import MemoryBuffer, MemoryRecord
from repro.ssl.base import CSSLObjective
from repro.tensor.tensor import Tensor


class LUMP(ContinualMethod):
    """Mixup replay of a random memory (Madaan et al. 2022)."""

    name = "lump"
    uses_memory = True

    def __init__(self, objective: CSSLObjective, config: ContinualConfig,
                 rng: np.random.Generator):
        super().__init__(objective, config, rng)
        self.buffer: MemoryBuffer | None = None

    def begin_task(self, task: Task, task_index: int, n_tasks: int) -> None:
        if self.buffer is None:
            self.buffer = MemoryBuffer(self.config.memory_budget, n_tasks)

    def batch_loss(self, view1, view2, raw) -> Tensor:
        if self.buffer is None or self.buffer.is_empty:
            return self.objective.css_loss(view1, view2)
        n = len(view1)
        memory = self.buffer.all_samples()
        partners = self.rng.choice(len(memory), size=n, replace=len(memory) < n)
        alpha = self.config.lump_alpha
        omega = self.rng.beta(alpha, alpha, size=n).astype(view1.dtype)
        shape = (n,) + (1,) * (view1.ndim - 1)
        omega = omega.reshape(shape)
        # Memory partners get the same augmentation pipeline as new data.
        mem1 = self.augment.pipeline(memory[partners], self.rng)
        mem2 = self.augment.pipeline(memory[partners], self.rng)
        mixed1 = omega * view1 + (1.0 - omega) * mem1
        mixed2 = omega * view2 + (1.0 - omega) * mem2
        return self.objective.css_loss(mixed1, mixed2)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["buffer"] = None if self.buffer is None else self.buffer.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.buffer = (None if state["buffer"] is None
                       else MemoryBuffer.from_state_dict(state["buffer"]))

    def end_task(self, task: Task, task_index: int) -> None:
        quota = self.buffer.per_task_quota
        if quota == 0:
            return
        chosen = self.rng.choice(len(task.train), size=min(quota, len(task.train)),
                                 replace=False)
        self.buffer.add(MemoryRecord(task_id=task_index,
                                     samples=task.train.x[chosen].copy(),
                                     labels=task.train.y[chosen].copy()))
