"""Continual-learning methods and the training loop.

Implements the paper's method (EDSR) and every baseline of Table III:
Finetune, SI, DER, LUMP, CaSSLe, plus the Multitask upper bound.  All
methods share the :class:`~repro.continual.method.ContinualMethod`
interface and are driven by :class:`~repro.continual.trainer.ContinualTrainer`.
"""

from repro.continual.config import ContinualConfig, build_objective
from repro.continual.method import (BoundaryEvent, ContinualMethod,
                                    make_method)
from repro.continual.finetune import Finetune
from repro.continual.si import SynapticIntelligence
from repro.continual.der import DER
from repro.continual.lump import LUMP
from repro.continual.cassle import CaSSLe
from repro.continual.edsr import EDSR
from repro.continual.lin import LinContinual
from repro.continual.pfr import PFR
from repro.continual.generative import GenerativeReplay
from repro.continual.multitask import run_multitask, MultitaskResult
from repro.continual.trainer import ContinualTrainer, run_method

__all__ = [
    "ContinualConfig",
    "build_objective",
    "BoundaryEvent",
    "ContinualMethod",
    "make_method",
    "Finetune",
    "SynapticIntelligence",
    "DER",
    "LUMP",
    "CaSSLe",
    "EDSR",
    "LinContinual",
    "PFR",
    "GenerativeReplay",
    "run_multitask",
    "MultitaskResult",
    "ContinualTrainer",
    "run_method",
]
