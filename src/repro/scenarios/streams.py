"""Scenario stream builders: the trainer's generalized stream contract.

A :class:`ScenarioStream` is what the trainer actually iterates: an
ordered tuple of :class:`StreamSegment` training increments plus a fixed
*eval panel* — the tasks every transfer-matrix row is probed against.
Sharp class-incremental training is the degenerate case (one segment per
task, the panel is the task list itself); the other builders reshape the
same base :class:`~repro.data.splits.TaskSequence` into streams the paper
never sees:

- :func:`blurry_stream` — each task donates a ``ratio`` fraction of its
  training data to its neighbours, so class distributions overlap across
  adjacent increments while test splits stay sharp;
- :func:`task_free_stream` — tasks are shuffled internally, concatenated,
  and re-sliced into many small segments with no boundary signal; the
  trainer's drift controller must *discover* the task changes;
- :func:`domain_incremental_stream` — one class set, per-domain nuisance
  transforms (:func:`repro.data.synthetic.apply_domain_shift`);
- :func:`long_sequence_stream` — the base task order cycled into a 20+
  segment stream, stressing guardrail/resume machinery at length.

Every builder is a **pure function of (seed, params)**: all randomness
comes from ``np.random.default_rng([seed, tag, index])`` streams keyed
per segment, so the same arguments rebuild bit-for-bit identical streams
in any process — the property the resume path and the sharded loader
contract both depend on (property-tested in ``tests/scenarios``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.splits import Task, TaskSequence
from repro.data.synthetic import apply_domain_shift

__all__ = [
    "ScenarioStream",
    "StreamSegment",
    "blurry_stream",
    "class_incremental_stream",
    "domain_incremental_stream",
    "long_sequence_stream",
    "task_free_stream",
]

#: Per-builder RNG namespace tags: a builder's draws can never collide
#: with another builder's (or any other consumer's) under the same seed.
_BLUR_TAG = 0x424C5552   # "BLUR"
_FREE_TAG = 0x46524545   # "FREE"
_DOMAIN_TAG = 0x444F4D41  # "DOMA"

_BOUNDARY_MODES = ("sharp", "task_free")


@dataclass(frozen=True)
class StreamSegment:
    """One training increment of a scenario stream.

    ``source_task`` is the eval-panel index the segment's training data
    primarily comes from (transfer-matrix row labeling).  ``eval_alias``
    names the panel column whose evaluation is *identical* to evaluating
    this segment's own test split — when set, the trainer reuses the
    panel row instead of re-probing (for sharp streams this is what makes
    the scenario path bit-identical to the classic path).
    """

    index: int
    task: Task
    source_task: int | None = None
    eval_alias: int | None = None


@dataclass(frozen=True)
class ScenarioStream:
    """An ordered segment stream plus the fixed evaluation panel."""

    scenario: str
    segments: tuple[StreamSegment, ...]
    eval_tasks: tuple[Task, ...]
    boundary_mode: str = "sharp"
    drift_threshold: float = 0.7
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.segments:
            raise ValueError("a stream needs at least one segment")
        if not self.eval_tasks:
            raise ValueError("a stream needs at least one eval task")
        if self.boundary_mode not in _BOUNDARY_MODES:
            raise ValueError(f"unknown boundary mode {self.boundary_mode!r}; "
                             f"one of {_BOUNDARY_MODES}")
        for segment in self.segments:
            if (segment.eval_alias is not None
                    and not 0 <= segment.eval_alias < len(self.eval_tasks)):
                raise ValueError(f"segment {segment.index} aliases eval task "
                                 f"{segment.eval_alias}, panel has "
                                 f"{len(self.eval_tasks)}")

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    @property
    def sample_shape(self) -> tuple[int, ...]:
        """Per-sample shape (no batch dim), for objective construction."""
        return self.segments[0].task.train.x.shape[1:]

    def __repr__(self) -> str:
        return (f"ScenarioStream({self.scenario}, segments={len(self.segments)}, "
                f"eval_tasks={len(self.eval_tasks)}, "
                f"boundary={self.boundary_mode})")


def _classes_of(y: np.ndarray) -> tuple[int, ...]:
    return tuple(int(c) for c in np.unique(y))


def class_incremental_stream(sequence: TaskSequence) -> ScenarioStream:
    """The identity stream: the task sequence itself, one segment per task.

    Shares the *same* :class:`Task` objects with ``sequence`` — no copies,
    no re-randomization — so running it through the trainer is provably
    the classic class-incremental run (pinned byte-for-byte by the parity
    regression test).
    """
    segments = tuple(StreamSegment(i, task, source_task=i, eval_alias=i)
                     for i, task in enumerate(sequence))
    return ScenarioStream("class_incremental", segments, tuple(sequence),
                          params={})


def blurry_stream(sequence: TaskSequence, ratio: float = 0.3,
                  seed: int = 0) -> ScenarioStream:
    """Overlapping class distributions: tasks donate data to neighbours.

    Each task draws a ``ratio`` fraction of its training samples (keyed
    rng per task) and donates half to the previous task and half to the
    next (edge tasks donate everything to their single neighbour).  Test
    splits stay sharp — evaluation still asks "how well is task ``j``'s
    class set represented" — only the *training* distributions blur.
    """
    if not 0.0 <= ratio < 1.0:
        raise ValueError("blur ratio must be in [0, 1)")
    n_tasks = len(sequence)
    donated_to: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in range(n_tasks)]
    kept: list[np.ndarray] = []
    for i, task in enumerate(sequence):
        n = len(task.train)
        rng = np.random.default_rng([seed, _BLUR_TAG, i])
        quota = int(round(ratio * n)) if n_tasks > 1 else 0
        donors = rng.permutation(n)[:quota]
        if i == 0:
            to_prev, to_next = donors[:0], donors
        elif i == n_tasks - 1:
            to_prev, to_next = donors, donors[:0]
        else:
            half = len(donors) // 2
            to_prev, to_next = donors[:half], donors[half:]
        if i > 0 and len(to_prev):
            donated_to[i - 1].append((task.train.x[to_prev],
                                      task.train.y[to_prev]))
        if i < n_tasks - 1 and len(to_next):
            donated_to[i + 1].append((task.train.x[to_next],
                                      task.train.y[to_next]))
        kept.append(np.setdiff1d(np.arange(n), donors))

    segments = []
    for i, task in enumerate(sequence):
        xs = [task.train.x[kept[i]]] + [x for x, _ in donated_to[i]]
        ys = [task.train.y[kept[i]]] + [y for _, y in donated_to[i]]
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys, axis=0)
        train = ArrayDataset(x, y, name=f"{task.train.name}-blurry")
        blurred = Task(task_id=i, classes=_classes_of(y), train=train,
                       test=task.test)
        segments.append(StreamSegment(i, blurred, source_task=i, eval_alias=i))
    return ScenarioStream("blurry", tuple(segments), tuple(sequence),
                          params={"ratio": float(ratio), "seed": int(seed)})


def task_free_stream(sequence: TaskSequence, segments_per_task: int = 3,
                     seed: int = 0,
                     drift_threshold: float = 0.7) -> ScenarioStream:
    """No boundary signal: tasks shuffled internally, re-sliced small.

    Each task's training data is shuffled with a keyed rng, the tasks are
    concatenated in order, and the whole stream is cut into
    ``segments_per_task * n_tasks`` contiguous chunks.  Task identity is
    *not* delivered to the trainer — segments carry it only as metadata
    (majority source, for result rows) — so methods must self-trigger
    selection/consolidation through the drift controller
    (``boundary_mode="task_free"``).
    """
    if segments_per_task < 1:
        raise ValueError("segments_per_task must be >= 1")
    n_tasks = len(sequence)
    xs, ys, sources = [], [], []
    for i, task in enumerate(sequence):
        perm = np.random.default_rng([seed, _FREE_TAG, i]).permutation(
            len(task.train))
        xs.append(task.train.x[perm])
        ys.append(task.train.y[perm])
        sources.append(np.full(len(task.train), i, dtype=np.int64))
    x = np.concatenate(xs, axis=0)
    y = np.concatenate(ys, axis=0)
    source = np.concatenate(sources, axis=0)

    n_segments = segments_per_task * n_tasks
    total = len(x)
    if total < n_segments:
        raise ValueError(f"{total} samples cannot fill {n_segments} segments")
    edges = np.linspace(0, total, n_segments + 1).round().astype(int)

    segments = []
    for k in range(n_segments):
        lo, hi = edges[k], edges[k + 1]
        majority = int(np.bincount(source[lo:hi]).argmax())
        train = ArrayDataset(x[lo:hi], y[lo:hi],
                             name=f"{sequence.name}-free-seg{k}")
        chunk = Task(task_id=k, classes=_classes_of(y[lo:hi]), train=train,
                     test=sequence[majority].test)
        segments.append(StreamSegment(k, chunk, source_task=majority,
                                      eval_alias=majority))
    return ScenarioStream(
        "task_free", tuple(segments), tuple(sequence),
        boundary_mode="task_free", drift_threshold=float(drift_threshold),
        params={"segments_per_task": int(segments_per_task),
                "seed": int(seed),
                "drift_threshold": float(drift_threshold)})


def domain_incremental_stream(sequence: TaskSequence, n_domains: int = 4,
                              shift: float = 0.75,
                              seed: int = 0) -> ScenarioStream:
    """Same classes throughout, shifting nuisance transforms per domain.

    The merged dataset is subsampled into ``n_domains`` disjoint-by-draw
    slices (keyed rng per domain) and each slice — train *and* test — is
    pushed through :func:`~repro.data.synthetic.apply_domain_shift` with
    its domain index.  Domain 0 is the unshifted reference.  The eval
    panel is the domain tasks themselves: the transfer matrix reads "how
    does training on domain ``i`` move accuracy under domain ``j``'s
    transform".
    """
    if n_domains < 1:
        raise ValueError("n_domains must be >= 1")
    merged_train = sequence.merged_train
    merged_test = sequence.merged_test
    per_train = len(merged_train) // n_domains
    per_test = len(merged_test) // n_domains
    if per_train < 1 or per_test < 1:
        raise ValueError(f"{len(merged_train)}/{len(merged_test)} samples "
                         f"cannot fill {n_domains} domains")

    tasks = []
    for d in range(n_domains):
        rng = np.random.default_rng([seed, _DOMAIN_TAG, d])
        train_idx = rng.permutation(len(merged_train))[:per_train]
        test_idx = rng.permutation(len(merged_test))[:per_test]
        x_train = apply_domain_shift(merged_train.x[train_idx], d,
                                     strength=shift, seed=seed)
        x_test = apply_domain_shift(merged_test.x[test_idx], d,
                                    strength=shift, seed=seed)
        y_train = merged_train.y[train_idx]
        y_test = merged_test.y[test_idx]
        tasks.append(Task(
            task_id=d, classes=_classes_of(y_train),
            train=ArrayDataset(x_train, y_train,
                               name=f"{sequence.name}-domain{d}-train"),
            test=ArrayDataset(x_test, y_test,
                              name=f"{sequence.name}-domain{d}-test")))
    segments = tuple(StreamSegment(d, task, source_task=d, eval_alias=d)
                     for d, task in enumerate(tasks))
    return ScenarioStream(
        "domain_incremental", segments, tuple(tasks),
        params={"n_domains": int(n_domains), "shift": float(shift),
                "seed": int(seed)})


def long_sequence_stream(sequence: TaskSequence,
                         cycles: int = 4) -> ScenarioStream:
    """The base task order cycled ``cycles`` times: a 20+ segment stream.

    Segment ``k`` revisits base task ``k % n_tasks`` (same train/test
    arrays, new segment identity), so the stream exercises the guardrail,
    checkpoint, and resume machinery over many boundaries while the
    transfer matrix shows whether revisits recover forgotten tasks.
    """
    if cycles < 1:
        raise ValueError("cycles must be >= 1")
    n_tasks = len(sequence)
    segments = []
    for k in range(cycles * n_tasks):
        base = sequence[k % n_tasks]
        visit = Task(task_id=k, classes=base.classes, train=base.train,
                     test=base.test)
        segments.append(StreamSegment(k, visit, source_task=k % n_tasks,
                                      eval_alias=k % n_tasks))
    return ScenarioStream("long_sequence", tuple(segments), tuple(sequence),
                          params={"cycles": int(cycles)})
