"""Scenario matrix: settings × methods beyond sharp class-incremental.

The registry (:mod:`repro.scenarios.registry`) names five stream shapes —
``class_incremental``, ``task_free``, ``blurry``, ``domain_incremental``,
``long_sequence`` — each built by a pure function of ``(seed, params)``
(:mod:`repro.scenarios.streams`).  Any continual method runs over any
scenario via :func:`run_scenario_method`, producing the classic result
plus a first-class :class:`~repro.eval.transfer.TransferMatrix`.
Task-free streams self-trigger boundaries through the
:class:`~repro.scenarios.drift.DriftDetector`.
"""

from repro.scenarios.drift import DriftDetector
from repro.scenarios.streams import (ScenarioStream, StreamSegment,
                                     blurry_stream, class_incremental_stream,
                                     domain_incremental_stream,
                                     long_sequence_stream, task_free_stream)
from repro.scenarios.registry import (SCENARIO_REGISTRY, ScenarioSpec,
                                      build_stream, register_scenario,
                                      run_scenario_method, scenario_names)

__all__ = [
    "DriftDetector",
    "SCENARIO_REGISTRY",
    "ScenarioSpec",
    "ScenarioStream",
    "StreamSegment",
    "blurry_stream",
    "build_stream",
    "class_incremental_stream",
    "domain_incremental_stream",
    "long_sequence_stream",
    "register_scenario",
    "run_scenario_method",
    "scenario_names",
    "task_free_stream",
]
