"""Input-statistics drift heuristic for task-free streams.

Task-free streams deliver no boundary signal, but methods like EDSR need
*some* trigger for selection/consolidation.  The :class:`DriftDetector`
watches the raw input statistics of each arriving segment — per-feature
means against a running reference of the segments since the last
boundary — and declares a boundary when the normalized shift exceeds a
threshold.  Deliberately model-free: it reads only the data (no
representations, no loss), so detection order is identical on every
process and consumes no trainer RNG.

The score is ``mean |mu_seg - mu_ref| / (scale_ref + eps)`` where
``mu_ref`` is the mean of the segment means accumulated since the last
boundary and ``scale_ref`` the mean within-segment standard deviation —
an SNR-style statistic that is scale-free across image and tabular data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DriftDetector"]

_EPS = 1e-8


class DriftDetector:
    """Declares task boundaries from per-segment input statistics.

    ``observe`` returns ``True`` when the new segment drifted away from
    the running reference; the reference then restarts from that segment.
    Fully serializable (``state_dict`` / ``load_state_dict``) so the
    trainer's checkpoint and in-memory guardrail snapshots restore the
    detection trajectory bit-for-bit.
    """

    def __init__(self, threshold: float = 0.7):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = float(threshold)
        self._n_segments = 0
        self._ref_mean: np.ndarray | None = None
        self._ref_scale = 0.0

    def observe(self, x: np.ndarray) -> bool:
        """Account one segment's data; ``True`` means a boundary fired."""
        features = np.asarray(x, dtype=np.float64).reshape(len(x), -1)
        mean = features.mean(axis=0)
        scale = float(features.std(axis=0).mean())
        drifted = False
        if self._n_segments > 0:
            score = float(np.abs(mean - self._ref_mean).mean())
            drifted = score / (self._ref_scale / self._n_segments + _EPS) \
                > self.threshold
        if drifted:
            self._n_segments = 0
            self._ref_mean = None
            self._ref_scale = 0.0
        if self._n_segments == 0:
            self._ref_mean = mean
            self._ref_scale = scale
        else:
            self._ref_mean = self._ref_mean + (mean - self._ref_mean) \
                / (self._n_segments + 1)
            self._ref_scale += scale
        self._n_segments += 1
        return drifted

    # ------------------------------------------------------------------
    # Serialization (guardrail snapshots and checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "n_segments": self._n_segments,
            "ref_mean": None if self._ref_mean is None
            else self._ref_mean.copy(),
            "ref_scale": float(self._ref_scale),
        }

    def load_state_dict(self, state: dict) -> None:
        self.threshold = float(state["threshold"])
        self._n_segments = int(state["n_segments"])
        ref_mean = state["ref_mean"]
        self._ref_mean = None if ref_mean is None \
            else np.asarray(ref_mean, dtype=np.float64).copy()
        self._ref_scale = float(state["ref_scale"])

    def __repr__(self) -> str:
        return (f"DriftDetector(threshold={self.threshold}, "
                f"segments_since_boundary={self._n_segments})")
