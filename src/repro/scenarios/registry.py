"""The scenario registry: named settings × any continual method.

Mirrors the sequoia design (settings × methods → transfer-matrix results
objects): a :class:`ScenarioSpec` maps a name to a stream builder, and
:func:`run_scenario_method` applies any registered continual method to
any registered scenario, returning the classic
:class:`~repro.eval.metrics.ContinualResult` *and* the first-class
:class:`~repro.eval.transfer.TransferMatrix`.

``run_scenario_method`` replicates :func:`repro.continual.trainer.run_method`'s
construction order exactly — ``default_rng(seed)`` → objective → method →
trainer — and stream building consumes no trainer RNG, so the
``class_incremental`` scenario is byte-for-byte identical to the classic
path (pinned by ``tests/scenarios/test_parity.py``).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.continual.config import ContinualConfig, build_objective
from repro.continual.method import make_method
from repro.data.splits import TaskSequence
from repro.eval.metrics import ContinualResult
from repro.eval.transfer import TransferMatrix
from repro.scenarios.streams import (ScenarioStream, blurry_stream,
                                     class_incremental_stream,
                                     domain_incremental_stream,
                                     long_sequence_stream, task_free_stream)

__all__ = [
    "SCENARIO_REGISTRY",
    "ScenarioSpec",
    "build_stream",
    "register_scenario",
    "run_scenario_method",
    "scenario_names",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario: a name, a story, and a stream builder.

    ``build`` receives ``(sequence, config)`` and returns the
    :class:`~repro.scenarios.streams.ScenarioStream`; scenario knobs come
    from the config's scenario fields (``blur_ratio``,
    ``segments_per_task``, ``drift_threshold``, ``domain_count``,
    ``domain_shift``, ``long_cycles``, ``scenario_seed``).
    """

    name: str
    description: str
    build: Callable[[TaskSequence, ContinualConfig], ScenarioStream]


SCENARIO_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(name: str, description: str,
                      build: Callable[[TaskSequence, ContinualConfig],
                                      ScenarioStream]) -> None:
    """Add a scenario to the registry (names are unique)."""
    if name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario {name!r} is already registered")
    SCENARIO_REGISTRY[name] = ScenarioSpec(name, description, build)


def scenario_names() -> list[str]:
    """Registered scenario names, in registration order."""
    return list(SCENARIO_REGISTRY)


def build_stream(name: str, sequence: TaskSequence,
                 config: ContinualConfig) -> ScenarioStream:
    """Build scenario ``name``'s stream over ``sequence`` under ``config``."""
    try:
        spec = SCENARIO_REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; registered: "
                         f"{', '.join(scenario_names())}") from None
    return spec.build(sequence, config)


register_scenario(
    "class_incremental",
    "sharp class-incremental boundaries (the classic path, bit-identical)",
    lambda sequence, config: class_incremental_stream(sequence))
register_scenario(
    "task_free",
    "no boundary signal; small shuffled segments, drift-triggered boundaries",
    lambda sequence, config: task_free_stream(
        sequence, segments_per_task=config.segments_per_task,
        seed=config.scenario_seed, drift_threshold=config.drift_threshold))
register_scenario(
    "blurry",
    "class distributions overlap across adjacent tasks (mixing ratio)",
    lambda sequence, config: blurry_stream(
        sequence, ratio=config.blur_ratio, seed=config.scenario_seed))
register_scenario(
    "domain_incremental",
    "same classes, shifting nuisance transforms per domain",
    lambda sequence, config: domain_incremental_stream(
        sequence, n_domains=config.domain_count, shift=config.domain_shift,
        seed=config.scenario_seed))
register_scenario(
    "long_sequence",
    "the base task order cycled into a 20+ segment stream",
    lambda sequence, config: long_sequence_stream(
        sequence, cycles=config.long_cycles))


def run_scenario_method(method_name: str, sequence: TaskSequence,
                        config: ContinualConfig, seed: int = 0,
                        verbose: bool = False,
                        checkpoint_dir: str | pathlib.Path | None = None,
                        resume: bool = False,
                        guardrails=None) -> tuple[ContinualResult,
                                                  TransferMatrix]:
    """Apply ``method_name`` to ``config.scenario``'s stream over ``sequence``.

    The scenario-path twin of :func:`repro.continual.trainer.run_method`:
    same construction order, same checkpoint/resume/guardrail semantics,
    plus the transfer matrix — written next to the checkpoints on every
    boundary and restored bit-for-bit by ``resume=True``.
    """
    # Late import: the trainer itself iterates ScenarioStream objects, so
    # importing it at module scope would cycle through this package.
    from repro.continual.trainer import ContinualTrainer

    stream = build_stream(config.scenario, sequence, config)
    rng = np.random.default_rng(seed)
    objective = build_objective(config, stream.sample_shape, rng)
    method = make_method(method_name, objective, config, rng)
    trainer = ContinualTrainer(method, config, rng, verbose=verbose,
                               checkpoint_dir=checkpoint_dir,
                               guardrails=guardrails)
    result = trainer.run(stream, resume=resume)
    return result, trainer.transfer_matrix
