"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter
from repro.tensor import memplan


class Optimizer:
    """Holds a parameter list and applies per-parameter updates.

    Subclasses implement :meth:`_update` for a single parameter given its
    gradient; state (momentum buffers etc.) is kept per parameter id.
    State serialization (:meth:`state_dict` / :meth:`load_state_dict`) keys
    the per-parameter slots by *position* in the parameter list, so a resumed
    optimizer over freshly constructed parameters of the same model picks up
    its momentum/moment buffers exactly where it left off.
    """

    #: Scalar attributes included in :meth:`state_dict`; subclasses extend.
    _hyper_keys: tuple[str, ...] = ("lr",)

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self._state: dict[int, dict] = {}

    def zero_grad(self, set_to_none: bool = True) -> None:
        """Clear gradients before the next backward.

        ``set_to_none=False`` zero-fills each existing ``.grad`` array in
        place instead of dropping it, so the engine accumulates the next
        backward into the same buffers (no per-step gradient allocation).
        Note :meth:`step` then updates every parameter that has ever
        received a gradient — with sparse gradients and momentum/weight
        decay this is not equivalent to skipping grad-less parameters,
        which is why ``set_to_none=True`` stays the default.

        ``zero_grad`` is also the step boundary of the tape memory
        planner: every live replay arena is bump-reset here, so planned
        buffer contents never outlive the step that wrote them.
        """
        for p in self.parameters:
            p.zero_grad(set_to_none=set_to_none)
        memplan.on_step_boundary()

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            state = self._state.setdefault(id(p), {})
            self._update(p, state)

    def _update(self, param: Parameter, state: dict) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full optimizer state: hyper-parameters plus per-parameter slots.

        The ``state`` entry is a list aligned with ``self.parameters``;
        each element maps slot names (``momentum``, ``m``, ``v``, ``step``)
        to copied arrays/ints, so the snapshot is immune to later steps.
        """
        slots = []
        for p in self.parameters:
            slot = self._state.get(id(p), {})
            slots.append({k: v.copy() if isinstance(v, np.ndarray) else v
                          for k, v in slot.items()})
        return {
            "hyper": {key: getattr(self, key) for key in self._hyper_keys},
            "state": slots,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto this optimizer's parameters."""
        slots = state["state"]
        if len(slots) != len(self.parameters):
            raise ValueError(
                f"optimizer state holds {len(slots)} parameter slots, "
                f"this optimizer has {len(self.parameters)} parameters")
        for key, value in state["hyper"].items():
            if key not in self._hyper_keys:
                raise KeyError(f"unknown optimizer hyper-parameter {key!r}")
            setattr(self, key, value)
        self._state = {}
        for p, slot in zip(self.parameters, slots):
            if slot:
                self._state[id(p)] = {
                    k: v.copy() if isinstance(v, np.ndarray) else v
                    for k, v in slot.items()}
