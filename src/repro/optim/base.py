"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

from repro.nn.module import Parameter


class Optimizer:
    """Holds a parameter list and applies per-parameter updates.

    Subclasses implement :meth:`_update` for a single parameter given its
    gradient; state (momentum buffers etc.) is kept per parameter id.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        self._state: dict[int, dict] = {}

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None:
                continue
            state = self._state.setdefault(id(p), {})
            self._update(p, state)

    def _update(self, param: Parameter, state: dict) -> None:
        raise NotImplementedError
