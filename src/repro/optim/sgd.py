"""Stochastic gradient descent with momentum and weight decay.

The paper trains all image models with SGD (Sec. IV-A5).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class SGD(Optimizer):
    _hyper_keys = ("lr", "momentum", "weight_decay")

    def __init__(self, parameters, lr: float = 0.03, momentum: float = 0.9,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay

    def _update(self, param: Parameter, state: dict) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            buf = state.get("momentum")
            if buf is None:
                buf = np.zeros_like(param.data)
            buf = self.momentum * buf + grad
            state["momentum"] = buf
            grad = buf
        param.data = param.data - self.lr * grad
