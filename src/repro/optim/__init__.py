"""Gradient-descent optimizers and learning-rate schedules."""

from repro.optim.base import Optimizer
from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.schedule import ConstantLR, StepLR, CosineLR

__all__ = ["Optimizer", "SGD", "Adam", "ConstantLR", "StepLR", "CosineLR"]
