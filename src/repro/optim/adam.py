"""Adam (Kingma & Ba, 2015).

The paper uses Adam for the tabular experiments (Sec. IV-A5).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.optim.base import Optimizer


class Adam(Optimizer):
    _hyper_keys = ("lr", "beta1", "beta2", "eps", "weight_decay")

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def _update(self, param: Parameter, state: dict) -> None:
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        step = state.get("step", 0) + 1
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1 - self.beta1) * grad
        v = self.beta2 * v + (1 - self.beta2) * grad * grad
        state.update(step=step, m=m, v=v)
        m_hat = m / (1 - self.beta1 ** step)
        v_hat = v / (1 - self.beta2 ** step)
        param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
