"""Learning-rate schedules.

Schedules are stateless functions of the epoch index applied to an
optimizer's ``lr`` attribute; ``step(epoch)`` sets the rate for that epoch.
"""

from __future__ import annotations

import math

from repro.optim.base import Optimizer


class _Schedule:
    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self, epoch: int) -> float:
        lr = self.lr_at(epoch)
        self.optimizer.lr = lr
        return lr


class ConstantLR(_Schedule):
    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(_Schedule):
    """Multiply the rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(_Schedule):
    """Cosine annealing to ``min_lr`` over ``total_epochs`` (SimSiam default)."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        super().__init__(optimizer)
        self.total_epochs = max(total_epochs, 1)
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + math.cos(math.pi * progress))
