"""Optimizer state-management edge cases."""

import numpy as np

from repro.nn import Parameter
from repro.optim import SGD, Adam


class TestStateIsolation:
    def test_momentum_buffers_are_per_parameter(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0, 1.0]))
        opt = SGD([a, b], lr=0.1, momentum=0.9)
        a.grad = np.array([1.0])
        b.grad = np.array([2.0, 2.0])
        opt.step()
        assert opt._state[id(a)]["momentum"].shape == (1,)
        assert opt._state[id(b)]["momentum"].shape == (2,)

    def test_adam_step_counter_per_parameter(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        opt = Adam([a, b], lr=0.1)
        a.grad = np.array([1.0])
        opt.step()           # only a has a grad
        a.grad = np.array([1.0])
        b.grad = np.array([1.0])
        opt.step()
        assert opt._state[id(a)]["step"] == 2
        assert opt._state[id(b)]["step"] == 1

    def test_two_optimizers_do_not_share_state(self):
        p = Parameter(np.array([1.0]))
        first = SGD([p], lr=0.1, momentum=0.9)
        second = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        first.step()
        assert id(p) in first._state
        assert id(p) not in second._state

    def test_zero_grad_only_clears_grads_not_state(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        opt.zero_grad()
        assert p.grad is None
        assert "momentum" in opt._state[id(p)]


class TestFreshOptimizerPerTask:
    def test_trainer_pattern_resets_momentum(self):
        """The trainer builds a fresh optimizer per increment, so stale
        momentum from the previous increment cannot leak — this is the
        invariant that pattern relies on."""
        p = Parameter(np.array([0.0]))
        old = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([10.0])
        old.step()
        fresh = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([0.0]) * 0  # zero gradient
        before = p.data.copy()
        fresh.step()
        # zero grad + fresh (empty) momentum => no movement
        np.testing.assert_allclose(p.data, before)


def _grads_for(params, step):
    """Deterministic pseudo-gradients: a fixed function of data and step."""
    for i, p in enumerate(params):
        p.grad = np.sin(p.data * (i + 1)) + 0.01 * step


def _run_steps(params, opt, schedule, start, stop, trace):
    for step in range(start, stop):
        schedule.step(step)
        _grads_for(params, step)
        opt.step()
        opt.zero_grad()
        trace.append([p.data.copy() for p in params])


class TestMidScheduleResume:
    """A checkpointed optimizer resumed mid-schedule must retrace the
    uninterrupted run step for step, bit for bit."""

    def _fresh_params(self):
        rng = np.random.default_rng(123)
        return [Parameter(rng.normal(size=(3, 4))),
                Parameter(rng.normal(size=(4,)))]

    def _trajectory(self, make_opt, make_sched, break_at=None, total=10):
        params = self._fresh_params()
        opt = make_opt(params)
        sched = make_sched(opt)
        trace = []
        if break_at is None:
            _run_steps(params, opt, sched, 0, total, trace)
            return trace
        _run_steps(params, opt, sched, 0, break_at, trace)
        saved_opt = opt.state_dict()
        saved_params = [p.data.copy() for p in params]
        # Simulate a process restart: everything rebuilt from scratch.
        params = self._fresh_params()
        for p, data in zip(params, saved_params):
            p.data = data
        opt = make_opt(params)
        # The schedule captures base_lr at construction, so it must be built
        # from the freshly configured optimizer *before* load_state_dict
        # restores the mid-schedule lr.
        sched = make_sched(opt)
        opt.load_state_dict(saved_opt)
        _run_steps(params, opt, sched, break_at, total, trace)
        return trace

    def _assert_identical(self, make_opt, make_sched):
        full = self._trajectory(make_opt, make_sched)
        resumed = self._trajectory(make_opt, make_sched, break_at=4)
        assert len(full) == len(resumed)
        for step, (a, b) in enumerate(zip(full, resumed)):
            for x, y in zip(a, b):
                np.testing.assert_array_equal(x, y,
                                              err_msg=f"diverged at step {step}")

    def test_sgd_momentum_under_cosine_schedule(self):
        from repro.optim import CosineLR
        self._assert_identical(
            lambda ps: SGD(ps, lr=0.05, momentum=0.9, weight_decay=1e-4),
            lambda o: CosineLR(o, total_epochs=10))

    def test_adam_under_step_schedule(self):
        from repro.optim import StepLR
        self._assert_identical(
            lambda ps: Adam(ps, lr=0.01, weight_decay=1e-4),
            lambda o: StepLR(o, step_size=3, gamma=0.5))

    def test_adam_step_counters_survive_roundtrip(self):
        params = self._fresh_params()
        opt = Adam(params, lr=0.01)
        for step in range(3):
            _grads_for(params, step)
            opt.step()
        fresh = Adam(self._fresh_params(), lr=0.01)
        fresh.load_state_dict(opt.state_dict())
        for p in fresh.parameters:
            assert fresh._state[id(p)]["step"] == 3

    def test_slot_count_mismatch_raises(self):
        opt = SGD(self._fresh_params(), lr=0.1, momentum=0.9)
        other = SGD([Parameter(np.zeros(2))], lr=0.1, momentum=0.9)
        import pytest
        with pytest.raises(ValueError, match="parameter slots"):
            other.load_state_dict(opt.state_dict())
