"""Optimizer state-management edge cases."""

import numpy as np

from repro.nn import Parameter
from repro.optim import SGD, Adam


class TestStateIsolation:
    def test_momentum_buffers_are_per_parameter(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0, 1.0]))
        opt = SGD([a, b], lr=0.1, momentum=0.9)
        a.grad = np.array([1.0])
        b.grad = np.array([2.0, 2.0])
        opt.step()
        assert opt._state[id(a)]["momentum"].shape == (1,)
        assert opt._state[id(b)]["momentum"].shape == (2,)

    def test_adam_step_counter_per_parameter(self):
        a = Parameter(np.array([1.0]))
        b = Parameter(np.array([1.0]))
        opt = Adam([a, b], lr=0.1)
        a.grad = np.array([1.0])
        opt.step()           # only a has a grad
        a.grad = np.array([1.0])
        b.grad = np.array([1.0])
        opt.step()
        assert opt._state[id(a)]["step"] == 2
        assert opt._state[id(b)]["step"] == 1

    def test_two_optimizers_do_not_share_state(self):
        p = Parameter(np.array([1.0]))
        first = SGD([p], lr=0.1, momentum=0.9)
        second = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        first.step()
        assert id(p) in first._state
        assert id(p) not in second._state

    def test_zero_grad_only_clears_grads_not_state(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        opt.zero_grad()
        assert p.grad is None
        assert "momentum" in opt._state[id(p)]


class TestFreshOptimizerPerTask:
    def test_trainer_pattern_resets_momentum(self):
        """The trainer builds a fresh optimizer per increment, so stale
        momentum from the previous increment cannot leak — this is the
        invariant that pattern relies on."""
        p = Parameter(np.array([0.0]))
        old = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([10.0])
        old.step()
        fresh = SGD([p], lr=0.1, momentum=0.9)
        p.grad = np.array([0.0]) * 0  # zero gradient
        before = p.data.copy()
        fresh.step()
        # zero grad + fresh (empty) momentum => no movement
        np.testing.assert_allclose(p.data, before)
