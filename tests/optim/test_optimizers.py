"""Tests for SGD, Adam, and LR schedules."""

import math

import numpy as np
import pytest

from repro.nn import Linear, MLP, Parameter
from repro.optim import SGD, Adam, ConstantLR, CosineLR, StepLR
from repro.optim.base import Optimizer
from repro.tensor import Tensor


def quadratic_loss(param: Parameter) -> Tensor:
    target = Tensor(np.array([3.0, -1.0]))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_vanilla_step_formula(self):
        p = Parameter(np.array([1.0, 1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0)
        quadratic_loss(p).backward()
        grad = p.grad.copy()
        opt.step()
        np.testing.assert_allclose(p.data, np.array([1.0, 1.0]) - 0.1 * grad, rtol=1e-6)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0, 10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(p).backward()
                opt.step()
            return quadratic_loss(p).item()

        assert run(0.5) < run(0.0)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0, 0.0]))
        opt = SGD([p], lr=0.05, momentum=0.5)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -1.0], atol=1e-3)

    def test_skips_parameters_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad: no-op, no crash
        np.testing.assert_allclose(p.data, [1.0])

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0, 0.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        np.testing.assert_allclose(p.data, [3.0, -1.0], atol=1e-2)

    def test_first_step_is_lr_sized(self):
        """Adam's bias correction makes the first step ~lr * sign(grad)."""
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([5.0])
        opt.step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-3)

    def test_trains_mlp_regression(self, rng):
        mlp = MLP([3, 16, 1], batch_norm=False, rng=rng)
        opt = Adam(mlp.parameters(), lr=5e-3)
        data_rng = np.random.default_rng(0)
        x = data_rng.normal(size=(64, 3)).astype(np.float32)
        y = (x @ np.array([[1.0], [-2.0], [0.5]])).astype(np.float32)
        initial = None
        for step in range(400):
            opt.zero_grad()
            pred = mlp(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
            if initial is None:
                initial = loss.item()
        assert loss.item() < 0.1 * initial


class TestSchedules:
    def test_constant(self):
        opt = SGD([Parameter(np.zeros(1))], lr=0.5)
        schedule = ConstantLR(opt)
        assert schedule.step(0) == 0.5
        assert schedule.step(100) == 0.5

    def test_step_decay(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = StepLR(opt, step_size=10, gamma=0.1)
        assert schedule.step(0) == pytest.approx(1.0)
        assert schedule.step(10) == pytest.approx(0.1)
        assert schedule.step(25) == pytest.approx(0.01)

    def test_cosine_endpoints(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineLR(opt, total_epochs=10, min_lr=0.0)
        assert schedule.step(0) == pytest.approx(1.0)
        assert schedule.step(10) == pytest.approx(0.0, abs=1e-9)
        mid = schedule.step(5)
        assert mid == pytest.approx(0.5, abs=1e-6)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineLR(opt, total_epochs=20)
        rates = [schedule.step(e) for e in range(21)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_schedule_mutates_optimizer_lr(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        CosineLR(opt, total_epochs=2).step(1)
        assert opt.lr < 1.0


class TestOptimizerBase:
    def test_update_not_implemented(self):
        opt = Optimizer([Parameter(np.zeros(1))], lr=0.1)
        opt.parameters[0].grad = np.ones(1)
        with pytest.raises(NotImplementedError):
            opt.step()
