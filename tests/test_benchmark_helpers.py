"""Tests for the benchmark harness helpers (benchmarks/common.py)."""

import pytest

from benchmarks import common
from repro.continual import ContinualConfig


class TestConfigFor:
    def test_known_datasets_get_overrides(self):
        config = common.config_for("tiny-imagenet-like")
        assert config.noise_neighbors == 10
        assert config.memory_budget == 60

    def test_unknown_dataset_returns_base(self):
        base = ContinualConfig(epochs=3)
        assert common.config_for("mnist-like", base) is base

    def test_custom_base_preserved(self):
        base = ContinualConfig(epochs=99, objective="barlow")
        config = common.config_for("cifar10-like", base)
        assert config.epochs == 99
        assert config.objective == "barlow"
        assert config.noise_neighbors == common.DATASET_OVERRIDES["cifar10-like"]["noise_neighbors"]

    def test_every_table2_dataset_has_overrides(self):
        for dataset in ("cifar10-like", "cifar100-like", "tiny-imagenet-like",
                        "domainnet-like"):
            assert dataset in common.DATASET_OVERRIDES


class TestEmit:
    def test_emit_writes_result_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        common.emit("unit_test_block", "row1\nrow2")
        assert (tmp_path / "unit_test_block.txt").read_text() == "row1\nrow2\n"
        assert "row1" in capsys.readouterr().out
