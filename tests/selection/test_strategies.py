"""Tests for the five data-selection strategies of Table V."""

import numpy as np
import pytest

from repro.selection import (
    DistantSelection,
    HighEntropySelection,
    KMeansSelection,
    MinVarianceSelection,
    RandomSelection,
    SelectionContext,
    covariance_trace,
    kmeans,
    kmeans_plus_plus_seeds,
    make_strategy,
)


def context(rng, n=60, d=8, budget=10, **kwargs):
    reps = rng.normal(size=(n, d))
    return SelectionContext(representations=reps, budget=budget, rng=rng, **kwargs)


ALL_STRATEGIES = [RandomSelection(), KMeansSelection(), DistantSelection(),
                  HighEntropySelection()]


class TestContext:
    def test_validates_shape(self, rng):
        with pytest.raises(ValueError):
            SelectionContext(representations=np.zeros(5), budget=2, rng=rng)

    def test_validates_budget(self, rng):
        with pytest.raises(ValueError):
            SelectionContext(representations=np.zeros((5, 2)), budget=0, rng=rng)


class TestCommonContract:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_returns_budget_unique_sorted_indices(self, strategy, rng):
        ctx = context(rng, budget=12)
        chosen = strategy.select(ctx)
        assert len(chosen) == 12
        assert len(np.unique(chosen)) == 12
        assert np.all(chosen == np.sort(chosen))
        assert chosen.min() >= 0 and chosen.max() < 60

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES, ids=lambda s: s.name)
    def test_budget_clipped_to_population(self, strategy, rng):
        ctx = context(rng, n=5, budget=50)
        chosen = strategy.select(ctx)
        assert len(chosen) == 5

    def test_factory_resolves_all_names(self):
        for name in ("random", "kmeans", "min-var", "distant", "high-entropy"):
            assert make_strategy(name).name == name

    def test_factory_unknown_raises(self):
        with pytest.raises(KeyError):
            make_strategy("oracle")


class TestRandom:
    def test_seeded_reproducibility(self):
        a = RandomSelection().select(context(np.random.default_rng(1)))
        b = RandomSelection().select(context(np.random.default_rng(1)))
        np.testing.assert_array_equal(a, b)


class TestKMeansAlgorithm:
    def test_recovers_separated_clusters(self, rng):
        centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
        points = np.concatenate([c + rng.normal(scale=0.3, size=(30, 2)) for c in centers])
        centroids, assignments = kmeans(points, 3, rng)
        # every true cluster maps to exactly one learned cluster
        for start in range(0, 90, 30):
            labels = assignments[start:start + 30]
            assert len(np.unique(labels)) == 1
        assert len(np.unique(assignments)) == 3

    def test_seeding_rejects_too_many_centers(self, rng):
        with pytest.raises(ValueError):
            kmeans_plus_plus_seeds(np.zeros((3, 2)), 5, rng)

    def test_seeding_handles_duplicate_points(self, rng):
        points = np.zeros((10, 3))
        seeds = kmeans_plus_plus_seeds(points, 4, rng)
        assert len(np.unique(seeds)) == 4


class TestDistant:
    def test_picks_spread_out_points(self, rng):
        # two tight blobs far apart; budget 2 must take one from each
        points = np.concatenate([np.zeros((20, 2)), 100.0 + np.zeros((20, 2))])
        points += rng.normal(scale=0.01, size=points.shape)
        ctx = SelectionContext(representations=points, budget=2, rng=rng)
        chosen = DistantSelection().select(ctx)
        sides = {int(i < 20) for i in chosen}
        assert sides == {0, 1}


class TestMinVariance:
    def test_requires_view_variances(self, rng):
        with pytest.raises(ValueError):
            MinVarianceSelection().select(context(rng))

    def test_prefers_low_variance_samples(self, rng):
        n = 40
        reps = rng.normal(size=(n, 4))
        variances = np.linspace(0.0, 1.0, n)
        ctx = SelectionContext(representations=reps, budget=10, rng=rng,
                               view_variances=variances, n_groups=1)
        chosen = MinVarianceSelection().select(ctx)
        np.testing.assert_array_equal(chosen, np.arange(10))

    def test_variance_length_mismatch_raises(self, rng):
        ctx = context(rng, view_variances=np.zeros(3))
        with pytest.raises(ValueError):
            MinVarianceSelection().select(ctx)

    def test_splits_budget_across_groups(self, rng):
        # two far blobs; low-variance samples exist in both
        reps = np.concatenate([rng.normal(size=(20, 2)), 50 + rng.normal(size=(20, 2))])
        variances = rng.uniform(size=40)
        ctx = SelectionContext(representations=reps, budget=10, rng=rng,
                               view_variances=variances, n_groups=2)
        chosen = MinVarianceSelection().select(ctx)
        first_blob = (chosen < 20).sum()
        assert 3 <= first_blob <= 7  # roughly even split


class TestHighEntropy:
    def test_beats_random_on_covariance_trace(self, rng):
        """The selection objective (Eq. 15): Tr(Cov) of the chosen subset
        should exceed a random subset's on anisotropic data."""
        reps = rng.normal(size=(100, 6)) * np.array([5.0, 3.0, 1.0, 0.5, 0.1, 0.1])
        ctx = SelectionContext(representations=reps, budget=10, rng=rng)
        entropy_choice = HighEntropySelection().select(ctx)
        random_traces = []
        for seed in range(20):
            r = np.random.default_rng(seed).choice(100, size=10, replace=False)
            random_traces.append(covariance_trace(reps[r] - reps[r].mean(0)))
        chosen_trace = covariance_trace(reps[entropy_choice] - reps[entropy_choice].mean(0))
        assert chosen_trace > np.mean(random_traces)

    def test_covers_all_principal_directions(self, rng):
        """With budget == rank, the selection must span the data."""
        basis = np.eye(4)
        points = np.concatenate([basis * 10, rng.normal(scale=0.01, size=(40, 4))])
        ctx = SelectionContext(representations=points, budget=4, rng=rng)
        chosen = HighEntropySelection(center=False).select(ctx)
        # the four large basis-aligned points dominate all four directions
        assert set(chosen.tolist()) == {0, 1, 2, 3}

    def test_budget_beyond_rank_restarts_sweep(self, rng):
        # rank-2 data, budget 6: must not crash, must return 6 unique
        low_rank = rng.normal(size=(30, 2)) @ rng.normal(size=(2, 8))
        ctx = SelectionContext(representations=low_rank, budget=6, rng=rng)
        chosen = HighEntropySelection().select(ctx)
        assert len(np.unique(chosen)) == 6

    def test_deterministic(self, rng):
        reps = np.random.default_rng(7).normal(size=(50, 5))
        ctx1 = SelectionContext(representations=reps, budget=8, rng=np.random.default_rng(0))
        ctx2 = SelectionContext(representations=reps, budget=8, rng=np.random.default_rng(99))
        np.testing.assert_array_equal(HighEntropySelection().select(ctx1),
                                      HighEntropySelection().select(ctx2))
