"""Property-based validation of the Sec. III-A theory.

The paper's selection chain: maximize mutual information == maximize memory
entropy == maximize coding-length entropy ~ maximize Tr(Cov).  These tests
validate the claims the derivation relies on: superset monotonicity of the
trace objective, the determinant identity, and the correlation between the
exact entropy and the trace surrogate.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.selection import HighEntropySelection, SelectionContext, coding_length_entropy, covariance_trace


def rep_matrices(min_rows=2, max_rows=12, dims=4):
    shapes = st.tuples(st.integers(min_rows, max_rows), st.just(dims))
    return hnp.arrays(np.float64, shapes,
                      elements=st.floats(-3.0, 3.0, allow_nan=False, width=64))


class TestCodingLength:
    def test_empty_is_zero(self):
        assert coding_length_entropy(np.zeros((0, 4))) == 0.0

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            coding_length_entropy(np.zeros(5))

    def test_determinant_identity(self):
        """det(I_d + cA^TA) == det(I_N + cAA^T) — the identity that lets the
        implementation work in the smaller dimension."""
        rng = np.random.default_rng(0)
        a = rng.normal(size=(6, 3))
        c = 0.7
        lhs = np.linalg.det(np.eye(3) + c * a.T @ a)
        rhs = np.linalg.det(np.eye(6) + c * a @ a.T)
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_small_dimension_branch_matches_direct_formula(self):
        """The n > d shortcut must equal the direct d x d computation."""
        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 4))  # n > d triggers the d-branch
        eps = 0.5
        n, d = a.shape
        scale = d / (n * eps * eps)
        direct = 0.5 * (n + d) * np.linalg.slogdet(np.eye(d) + scale * a.T @ a)[1]
        assert coding_length_entropy(a, eps=eps) == pytest.approx(direct, rel=1e-9)
        # and the n < d branch too
        b = rng.normal(size=(3, 8))
        n, d = b.shape
        scale = d / (n * eps * eps)
        direct_b = 0.5 * (n + d) * np.linalg.slogdet(np.eye(d) + scale * b.T @ b)[1]
        assert coding_length_entropy(b, eps=eps) == pytest.approx(direct_b, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(rep_matrices())
    def test_trace_superset_monotonicity(self, reps):
        """Tr(Cov(M')) <= Tr(Cov(M'')) for M' subset of M'' — the paper's
        stated property under Cov(A) = A^T A."""
        subset = reps[: len(reps) // 2 + 1]
        assert covariance_trace(subset) <= covariance_trace(reps) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(rep_matrices(min_rows=3))
    def test_gram_logdet_superset_monotonicity(self, reps):
        """At a fixed coding scale, adding a row never decreases
        logdet(I + c A^T A) — the spectrum only grows.  (The full entropy is
        not superset-monotone because its scale d/(n eps^2) shrinks with n;
        the paper's monotonicity statement concerns the trace surrogate.)"""
        c = 0.5
        d = reps.shape[1]
        full = np.linalg.slogdet(np.eye(d) + c * reps.T @ reps)[1]
        subset = reps[:-1]
        sub = np.linalg.slogdet(np.eye(d) + c * subset.T @ subset)[1]
        assert sub <= full + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(rep_matrices(min_rows=4))
    def test_entropy_nonnegative(self, reps):
        assert coding_length_entropy(reps) >= -1e-9

    def test_trace_correlates_with_entropy_across_subsets(self):
        """The Eq. 14 surrogate: among equal-size subsets, higher Tr(Cov)
        should tend to mean higher exact coding-length entropy."""
        rng = np.random.default_rng(1)
        reps = rng.normal(size=(40, 5)) * np.array([3.0, 2.0, 1.0, 0.5, 0.2])
        traces, entropies = [], []
        for seed in range(40):
            idx = np.random.default_rng(seed).choice(40, size=8, replace=False)
            traces.append(covariance_trace(reps[idx]))
            entropies.append(coding_length_entropy(reps[idx]))
        correlation = np.corrcoef(traces, entropies)[0, 1]
        assert correlation > 0.6

    def test_high_entropy_selection_maximizes_exact_entropy_vs_random(self):
        """End-to-end: the strategy built on the trace surrogate should beat
        random selection on the exact entropy it approximates."""
        rng = np.random.default_rng(2)
        reps = rng.normal(size=(80, 6)) * np.array([4.0, 2.0, 1.0, 0.5, 0.25, 0.1])
        ctx = SelectionContext(representations=reps, budget=10,
                               rng=np.random.default_rng(0))
        chosen = HighEntropySelection().select(ctx)
        selected_entropy = coding_length_entropy(reps[chosen])
        random_entropies = [
            coding_length_entropy(reps[np.random.default_rng(s).choice(80, 10, replace=False)])
            for s in range(25)
        ]
        assert selected_entropy > np.mean(random_entropies)
