"""Property-based tests for clustering and selection (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.selection import (
    HighEntropySelection,
    SelectionContext,
    kmeans,
    kmeans_plus_plus_seeds,
    make_strategy,
)


def point_clouds(max_points=40, dims=3):
    shapes = st.tuples(st.integers(4, max_points), st.just(dims))
    return hnp.arrays(np.float64, shapes,
                      elements=st.floats(-5.0, 5.0, allow_nan=False, width=64))


@settings(max_examples=15, deadline=None)
@given(point_clouds(), st.integers(1, 4), st.integers(0, 100))
def test_kmeans_assignments_are_locally_optimal(points, k, seed):
    """Every point must be assigned to a nearest centroid on exit.

    Compared by *distance*, not index: with duplicate points several
    centroids can tie and any of them is a valid assignment."""
    k = min(k, len(points))
    centroids, assignments = kmeans(points, k, np.random.default_rng(seed))
    d2 = ((points[:, None, :] - centroids[None]) ** 2).sum(axis=2)
    assigned = d2[np.arange(len(points)), assignments]
    np.testing.assert_allclose(assigned, d2.min(axis=1), atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(point_clouds(), st.integers(1, 4), st.integers(0, 100))
def test_kmeans_seeding_returns_valid_unique_indices(points, k, seed):
    k = min(k, len(points))
    seeds = kmeans_plus_plus_seeds(points, k, np.random.default_rng(seed))
    assert len(seeds) == k
    assert len(np.unique(seeds)) == k
    assert seeds.min() >= 0 and seeds.max() < len(points)


@settings(max_examples=15, deadline=None)
@given(point_clouds(), st.integers(1, 10),
       st.sampled_from(["random", "distant", "high-entropy", "kmeans"]),
       st.integers(0, 100))
def test_every_strategy_returns_valid_selection(points, budget, name, seed):
    context = SelectionContext(representations=points, budget=budget,
                               rng=np.random.default_rng(seed))
    chosen = make_strategy(name).select(context)
    assert len(chosen) == min(budget, len(points))
    assert len(np.unique(chosen)) == len(chosen)
    assert chosen.min() >= 0 and chosen.max() < len(points)


def test_high_entropy_trace_at_least_random_mean():
    """The greedy maximizer should beat the random-selection average on
    centered Tr(Cov).

    This bound is statistical, not universal: the greedy maximizes the
    coding-length entropy (Eq. 15), not the trace itself, and adversarial
    duplicate-heavy clouds exist where a random subset has slightly higher
    within-subset variance (e.g. 4 near-orthogonal unit vectors with
    budget 3).  The corpus is therefore pinned explicitly with seeded
    numpy Generators rather than drawn through hypothesis: even
    ``derandomize=True`` generation drifts when unrelated source changes
    alter hypothesis's constant pool, which turns a statistical bound
    into a flaky one.  Typical Gaussian clouds are exactly the regime the
    property describes (same determinism discipline DET001 enforces on
    the library itself)."""
    for case_seed in range(10):
        case_rng = np.random.default_rng(case_seed)
        n_points = int(case_rng.integers(6, 30))
        budget = min(int(case_rng.integers(2, 6)), n_points)
        points = case_rng.normal(size=(n_points, 3)) * case_rng.uniform(0.5, 3.0, size=3)
        context = SelectionContext(representations=points, budget=budget,
                                   rng=np.random.default_rng(case_seed))
        chosen = HighEntropySelection().select(context)

        def centered_trace(idx):
            subset = points[idx] - points[idx].mean(axis=0)
            return (subset * subset).sum()

        random_mean = np.mean([
            centered_trace(np.random.default_rng(s).choice(n_points, budget, replace=False))
            for s in range(10)
        ])
        assert centered_trace(chosen) >= random_mean - 1e-9, case_seed
