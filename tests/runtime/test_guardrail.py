"""Tests for guardrail policy, event log, and failure reports."""

import json

import numpy as np
import pytest

from repro.nn import Parameter
from repro.runtime import (
    GuardrailPolicy,
    RunLog,
    build_failure_report,
    clip_detail,
    global_grad_norm,
)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = GuardrailPolicy()
        assert policy.max_loss == 1e6
        assert policy.anomaly_mode

    @pytest.mark.parametrize("kwargs", [
        {"max_loss": 0.0},
        {"max_loss": -1.0},
        {"max_grad_norm": 0.0},
        {"max_skips_per_task": -1},
        {"lr_backoff": 0.0},
        {"lr_backoff": 1.5},
        {"max_restores_per_task": -1},
    ])
    def test_invalid_settings_raise(self, kwargs):
        with pytest.raises(ValueError):
            GuardrailPolicy(**kwargs)

    def test_none_disables_thresholds(self):
        policy = GuardrailPolicy(max_loss=None, max_grad_norm=None)
        assert policy.max_loss is None
        assert policy.max_grad_norm is None

    def test_policy_is_frozen(self):
        with pytest.raises(AttributeError):
            GuardrailPolicy().max_loss = 1.0


class TestGradNorm:
    def test_l2_over_all_parameters(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(3))
        a.grad = np.array([3.0, 0.0])
        b.grad = np.array([0.0, 4.0, 0.0])
        assert global_grad_norm([a, b]) == pytest.approx(5.0)

    def test_missing_grads_contribute_zero(self):
        a = Parameter(np.zeros(2))
        b = Parameter(np.zeros(2))
        a.grad = np.array([1.0, 0.0])
        assert global_grad_norm([a, b]) == pytest.approx(1.0)

    def test_empty_list_is_zero(self):
        assert global_grad_norm([]) == 0.0


class TestClipDetail:
    def test_short_text_untouched(self):
        assert clip_detail("short") == "short"

    def test_long_text_truncated_with_count(self):
        out = clip_detail("x" * 700)
        assert len(out) < 700
        assert "100 chars truncated" in out


class TestRunLog:
    def test_memory_only_accumulates(self):
        log = RunLog()
        log.append("anomaly", task_index=2)
        assert log.path is None
        assert log.events[0]["kind"] == "anomaly"
        assert log.events[0]["task_index"] == 2

    def test_file_mode_appends_jsonl(self, tmp_path):
        path = tmp_path / "run" / "events.jsonl"
        log = RunLog(path)
        log.append("skip", reason="nan")
        log.append("restore", restores=1)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "skip" and first["reason"] == "nan"
        assert "time" in first

    def test_tail_returns_last_n(self):
        log = RunLog()
        for i in range(30):
            log.append("e", i=i)
        tail = log.tail(5)
        assert [e["i"] for e in tail] == [25, 26, 27, 28, 29]

    def test_failure_report_written_next_to_log(self, tmp_path):
        log = RunLog(tmp_path / "events.jsonl")
        target = log.write_failure_report({"message": "boom"})
        assert target == tmp_path / "failure-report.json"
        assert json.loads(target.read_text())["message"] == "boom"

    def test_failure_report_memory_mode_returns_none(self):
        assert RunLog().write_failure_report({"m": 1}) is None


class TestFailureReport:
    def test_report_structure(self):
        log = RunLog()
        log.append("anomaly", detail="NaN in mul")
        policy = GuardrailPolicy(max_restores_per_task=1)
        report = build_failure_report("edsr", 3, 1, policy, log)
        assert report["method"] == "edsr"
        assert report["task_index"] == 3
        assert report["restores"] == 1
        assert report["policy"]["max_restores_per_task"] == 1
        assert report["recent_events"][0]["detail"] == "NaN in mul"
        assert "diverged on task 3" in report["message"]
        json.dumps(report)  # must be plain JSON
