"""Every live state_dict in the codebase must satisfy the checkpoint contract.

This is the runtime half of SER001: the lint rule statically screens
``state_dict`` implementations, these tests feed the *actual* trained state
of every method, optimizer, buffer, and result through
:func:`repro.runtime.check_serializable` (i.e. full flattening), then verify
method state round-trips onto a freshly built method.
"""

import numpy as np
import pytest

from repro.continual import ContinualTrainer, build_objective, make_method
from repro.memory import MemoryBuffer, MemoryRecord
from repro.nn import Parameter
from repro.optim import SGD, Adam
from repro.runtime import check_serializable
from repro.utils import get_rng_state

ALL_METHODS = ["finetune", "si", "der", "lump", "cassle", "edsr",
               "lin", "pfr", "curl"]


def config_for(name, config):
    """curl (generative replay) needs the VAE objective."""
    if name == "curl":
        import dataclasses
        return dataclasses.replace(config, objective="vae")
    return config


def trained_method(name, config, sequence, seed=3):
    """Run one full task so buffers/snapshots/importances are populated."""
    config = config_for(name, config)
    rng = np.random.default_rng(seed)
    objective = build_objective(config, sequence[0].train.x.shape[1:], rng)
    method = make_method(name, objective, config, rng)
    trainer = ContinualTrainer(method, config, rng, verbose=False)
    trainer.run(sequence[:2])
    return method, rng


class TestMethodStateSerializable:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_trained_state_flattens(self, name, fast_config, tiny_sequence):
        method, _rng = trained_method(name, fast_config, tiny_sequence)
        check_serializable(method.state_dict())

    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_state_roundtrips_onto_fresh_method(self, name, fast_config,
                                                tiny_sequence):
        config = config_for(name, fast_config)
        method, _ = trained_method(name, fast_config, tiny_sequence)
        state = method.state_dict()
        rng = np.random.default_rng(99)
        objective = build_objective(config,
                                    tiny_sequence[0].train.x.shape[1:], rng)
        fresh = make_method(name, objective, config, rng)
        fresh.load_state_dict(state)
        for (n, a), (_n, b) in zip(fresh.objective.named_parameters(),
                                   method.objective.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=n)
        # The restored state must itself be checkpointable again.
        check_serializable(fresh.state_dict())


class TestOtherStateSerializable:
    def test_optimizer_states_flatten(self):
        params = [Parameter(np.ones((2, 2))), Parameter(np.ones(2))]
        for opt in (SGD(params, lr=0.1, momentum=0.9), Adam(params, lr=0.01)):
            for p in params:
                p.grad = np.ones_like(p.data)
            opt.step()
            check_serializable(opt.state_dict())

    def test_buffer_state_flattens(self):
        buffer = MemoryBuffer(50, 5)
        buffer.add(MemoryRecord(task_id=0, samples=np.zeros((5, 4)),
                                noise_scales=np.ones(5),
                                labels=np.zeros(5, dtype=np.int64)))
        check_serializable(buffer.state_dict())

    def test_rng_state_flattens(self):
        # PCG64 state contains arbitrary-precision ints; the manifest is JSON
        # so they serialize exactly.
        check_serializable({"rng": get_rng_state(np.random.default_rng(5))})
