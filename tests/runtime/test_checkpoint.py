"""Tests for the atomic checkpoint layer (flattening + manager)."""

import json

import numpy as np
import pytest

from repro.faults import plane
from repro.runtime import (
    CheckpointManager,
    check_serializable,
    flatten_state,
    unflatten_state,
)


def sample_state():
    return {
        "weights": np.arange(6, dtype=np.float32).reshape(2, 3),
        "nested": {
            "momentum": np.zeros(4),
            "step": 7,
            "name": "sgd",
            "nothing": None,
        },
        "rows": [np.ones(2), {"inner": np.full(3, 2.0)}, 1.5],
        "flag": True,
    }


class TestFlatten:
    def test_roundtrip_preserves_tree_and_arrays(self):
        state = sample_state()
        tree, arrays = flatten_state(state)
        restored = unflatten_state(tree, arrays)
        assert restored["nested"]["step"] == 7
        assert restored["nested"]["name"] == "sgd"
        assert restored["nested"]["nothing"] is None
        assert restored["flag"] is True
        np.testing.assert_array_equal(restored["weights"], state["weights"])
        np.testing.assert_array_equal(restored["rows"][1]["inner"],
                                      state["rows"][1]["inner"])

    def test_tree_is_json_serializable(self):
        tree, _arrays = flatten_state(sample_state())
        json.dumps(tree)  # must not raise

    def test_tuples_come_back_as_lists(self):
        tree, arrays = flatten_state({"t": (1, 2)})
        restored = unflatten_state(tree, arrays)
        assert restored["t"] == [1, 2]

    def test_numpy_scalars_become_python_scalars(self):
        tree, _ = flatten_state({"a": np.int64(3), "b": np.float32(1.5),
                                 "c": np.bool_(True)})
        assert tree["a"] == 3 and isinstance(tree["a"], int)
        assert tree["b"] == pytest.approx(1.5) and isinstance(tree["b"], float)
        assert tree["c"] is True

    def test_object_array_rejected_with_path(self):
        bad = {"buf": {"records": [np.array([object()], dtype=object)]}}
        with pytest.raises(TypeError, match=r"state/buf/records/0"):
            flatten_state(bad)

    def test_non_string_key_rejected(self):
        with pytest.raises(TypeError, match="not a string"):
            flatten_state({"state": {3: np.zeros(1)}})

    def test_reserved_key_rejected(self):
        with pytest.raises(TypeError, match="reserved"):
            flatten_state({"__ndarray__": "x"})

    def test_unserializable_leaf_rejected_with_path(self):
        with pytest.raises(TypeError, match=r"state/cb.*function"):
            flatten_state({"cb": lambda: None})

    def test_check_serializable_passes_good_state(self):
        check_serializable(sample_state())

    def test_check_serializable_names_bad_path(self):
        with pytest.raises(TypeError, match=r"state/rng"):
            check_serializable({"rng": np.random.default_rng(0)})


class TestCheckpointManager:
    def test_save_and_load_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        state = sample_state()
        manager.save(3, state)
        loaded = manager.load_latest()
        assert loaded is not None
        assert loaded.task_index == 3
        assert loaded.skipped == []
        np.testing.assert_array_equal(loaded.state["weights"], state["weights"])
        assert loaded.state["nested"]["step"] == 7

    def test_load_latest_returns_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([0.0])})
        manager.save(1, {"v": np.array([1.0])})
        loaded = manager.load_latest()
        assert loaded.task_index == 1
        np.testing.assert_array_equal(loaded.state["v"], [1.0])

    def test_empty_directory_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None

    def test_corrupt_newest_falls_back_to_older(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([0.0])})
        newest = manager.save(1, {"v": np.array([1.0])})
        newest.write_text("{not json", encoding="utf-8")
        loaded = manager.load_latest()
        assert loaded.task_index == 0
        assert len(loaded.skipped) == 1
        assert "ckpt-00001.json" in loaded.skipped[0]

    def test_truncated_npz_is_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([0.0])})
        manager.save(1, {"v": np.array([1.0])})
        npz = tmp_path / "ckpt-00001.npz"
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        loaded = manager.load_latest()
        assert loaded.task_index == 0

    def test_flipped_bits_fail_checksum(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([0.0])})
        manager.save(1, {"v": np.arange(64, dtype=np.float64)})
        manifest = json.loads((tmp_path / "ckpt-00001.json").read_text())
        # Point the manifest at a checksum the data can no longer satisfy.
        key = next(iter(manifest["checksums"]))
        manifest["checksums"][key] = "0" * 64
        (tmp_path / "ckpt-00001.json").write_text(json.dumps(manifest))
        loaded = manager.load_latest()
        assert loaded.task_index == 0
        assert "checksum mismatch" in loaded.skipped[0]

    def test_missing_array_file_is_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([0.0])})
        manager.save(1, {"v": np.array([1.0])})
        (tmp_path / "ckpt-00001.npz").unlink()
        assert manager.load_latest().task_index == 0

    def test_schema_version_mismatch_is_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([0.0])})
        manifest_path = tmp_path / "ckpt-00000.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        assert manager.load_latest() is None

    def test_prune_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for i in range(5):
            manager.save(i, {"v": np.array([float(i)])})
        names = [p.name for p in manager.manifest_paths()]
        assert names == ["ckpt-00003.json", "ckpt-00004.json"]
        assert not (tmp_path / "ckpt-00000.npz").exists()
        assert (tmp_path / "ckpt-00004.npz").exists()

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)

    def test_no_temp_files_left_behind(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, sample_state())
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []

    def test_rewriting_same_index_overwrites(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([1.0])})
        manager.save(0, {"v": np.array([2.0])})
        loaded = manager.load_latest()
        np.testing.assert_array_equal(loaded.state["v"], [2.0])
        assert len(manager.manifest_paths()) == 1


def torn_manifest_save(manager, task_index, state):
    """Save with the manifest write torn (truncated bytes at the final path)."""
    plan = plane.FaultPlan(
        seed=0, scenario="torn-manifest",
        events=(plane.FaultEvent(site="ckpt.manifest.torn",
                                 kind="torn_write"),))
    with plane.armed(plan), pytest.raises(plane.InjectedTornWrite):
        manager.save(task_index, state)


class TestPartialStates:
    """Crash residue: stale temps, half-written pairs, torn manifests."""

    def test_stale_tmp_files_swept_on_init(self, tmp_path):
        stale = tmp_path / "ckpt-00002.npz.tmp-4242"
        stale.write_bytes(b"partial write residue")
        CheckpointManager(tmp_path)
        assert not stale.exists()

    def test_sweep_orphans_reports_removed_names(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        stale = tmp_path / "ckpt-00001.json.tmp-99"
        stale.write_text("{", encoding="utf-8")
        assert manager.sweep_orphans() == [stale.name]
        assert not stale.exists()

    def test_manifest_without_npz_never_counts_toward_keep(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for index in range(3):
            manager.save(index, {"v": np.array([float(index)])})
        # Crash residue: checkpoint 2 lost its arrays between the writes.
        (tmp_path / "ckpt-00002.npz").unlink()
        manager.save(3, {"v": np.array([3.0])})
        names = [path.name for path in manager.manifest_paths()]
        assert names == ["ckpt-00001.json", "ckpt-00003.json"]
        assert manager.load_latest().task_index == 3

    def test_npz_without_manifest_is_pruned_as_an_orphan(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(0, {"v": np.array([0.0])})
        manager.save(1, {"v": np.array([1.0])})
        # Crash residue: arrays committed, manifest never made it.
        (tmp_path / "ckpt-00001.json").unlink()
        manager.save(2, {"v": np.array([2.0])})
        remaining = sorted(path.name for path in tmp_path.glob("ckpt-*"))
        assert remaining == ["ckpt-00002.json", "ckpt-00002.npz"]
        assert manager.load_latest().task_index == 2

    def test_load_latest_skips_torn_manifest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(0, {"v": np.array([0.0])})
        torn_manifest_save(manager, 1, {"v": np.array([1.0])})
        loaded = manager.load_latest()
        assert loaded.task_index == 0
        assert len(loaded.skipped) == 1

    def test_torn_pairs_cannot_evict_the_last_good_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=1)
        manager.save(0, {"v": np.array([0.0])})
        for index in (1, 2):
            torn_manifest_save(manager, index, {"v": np.array([float(index)])})
        # Retention counts *valid* checkpoints: the two torn newcomers
        # are removed, task 0 survives as the keep=1 retained set.
        manager._prune()
        assert [p.name for p in manager.manifest_paths()] == ["ckpt-00000.json"]
        loaded = manager.load_latest()
        assert loaded.task_index == 0
        assert loaded.skipped == []
