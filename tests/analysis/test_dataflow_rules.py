"""Golden tests for the whole-program dataflow rules (DET002/TAPE002/MP002/SER002).

Each fixture module under ``fixtures/`` seeds deliberate violations and
marks the expected line with a trailing ``# expect: CODE`` comment — the
golden list is read from the fixture itself, so the fixture and its
expectations cannot drift apart.  Everything *not* marked must stay
quiet, which pins the precision half of each rule (sanitizers, exemption
idioms, parameter pass-throughs) as tightly as the recall half.
"""

import re
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.rules import rules_by_code

FIXTURES = Path(__file__).resolve().parent / "fixtures"
_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9]+)")


def golden(path: Path) -> set[tuple[int, str]]:
    """(line, code) pairs from ``# expect: CODE`` markers in the fixture."""
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            out.add((lineno, match.group(1)))
    return out


def found(path: Path, code: str) -> set[tuple[int, str]]:
    violations = run_lint([path], rules_by_code([code]))
    return {(v.line, v.code) for v in violations}


@pytest.mark.parametrize("fixture, code", [
    ("det002_augassign.py", "DET002"),
    ("det002_walrus.py", "DET002"),
    ("det002_comprehension.py", "DET002"),
    ("det002_tryfinally.py", "DET002"),
    ("det002_nested.py", "DET002"),
    ("tape002_branch.py", "TAPE002"),
    ("mp002_worker.py", "MP002"),
    ("ser002_ckpt.py", "SER002"),
    ("perf002_replay.py", "PERF002"),
])
def test_fixture_matches_golden_list(fixture, code):
    path = FIXTURES / fixture
    expected = golden(path)
    assert expected, f"fixture {fixture} has no # expect markers"
    assert found(path, code) == expected


def test_every_fixture_is_covered():
    """A fixture added without a golden parametrization should fail loudly."""
    listed = {"det002_augassign.py", "det002_walrus.py",
              "det002_comprehension.py", "det002_tryfinally.py",
              "det002_nested.py", "tape002_branch.py", "mp002_worker.py",
              "ser002_ckpt.py", "perf002_replay.py"}
    on_disk = {p.name for p in FIXTURES.glob("*.py")
               if p.name != "__init__.py"}
    assert on_disk == listed


def test_det002_message_names_source_and_sink():
    violations = run_lint([FIXTURES / "det002_walrus.py"],
                          rules_by_code(["DET002"]))
    assert len(violations) == 1
    message = violations[0].message
    assert "numpy RNG" in message
    assert "engine op dispatch" in message
    assert "seeded" in message


def test_tape002_message_suggests_mark_unsafe():
    violations = run_lint([FIXTURES / "tape002_branch.py"],
                          rules_by_code(["TAPE002"]))
    assert violations
    assert all("mark_unsafe" in v.message for v in violations)


def test_suppression_silences_project_rules(tmp_path):
    src = (FIXTURES / "mp002_worker.py").read_text()
    src = src.replace("_STEP_COUNT = 0  # expect: MP002",
                      "_STEP_COUNT = 0  # repro-lint: disable=MP002")
    target = tmp_path / "mp002_worker.py"
    target.write_text(src)
    lines = {v.line for v in run_lint([target], rules_by_code(["MP002"]))}
    suppressed_line = next(
        i for i, text in enumerate(src.splitlines(), start=1)
        if "disable=MP002" in text)
    assert suppressed_line not in lines
    assert lines  # the other seeded violations still fire
