"""RB001 — robustness I/O hygiene rule tests.

Half one scopes to the ``runtime`` package: any write-mode ``open()`` or
``Path.write_text``/``write_bytes`` outside ``atomic_write_bytes`` can be
torn by a crash mid-write — the corrupt-hybrid state the crash sweep
exists to rule out.  Half two scopes to ``parallel``: a ``.recv()`` in a
function that never polls with a deadline hangs the trainer on a dead
peer instead of surfacing a ``WorkerFailure``.
"""

import textwrap

from repro.analysis import lint_file
from repro.analysis.rules import RobustIORule


def write(path, source):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes(violations):
    return [v.code for v in violations]


class TestScope:
    def test_writes_outside_runtime_are_ignored(self, tmp_path):
        path = write(tmp_path / "utils" / "report.py", """\
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
        """)
        assert lint_file(path, [RobustIORule()]) == []

    def test_receives_outside_parallel_are_ignored(self, tmp_path):
        path = write(tmp_path / "utils" / "net.py", """\
            def wait(conn):
                return conn.recv()
        """)
        assert lint_file(path, [RobustIORule()]) == []


class TestRuntimeWrites:
    def test_fires_on_write_mode_open(self, tmp_path):
        path = write(tmp_path / "runtime" / "state.py", """\
            def save(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
        """)
        found = lint_file(path, [RobustIORule()])
        assert codes(found) == ["RB001"]
        assert "atomic_write_bytes" in found[0].message

    def test_fires_on_append_and_mode_keyword(self, tmp_path):
        path = write(tmp_path / "runtime" / "log.py", """\
            def log(path, line):
                with open(path, mode="a") as handle:
                    handle.write(line)
        """)
        assert codes(lint_file(path, [RobustIORule()])) == ["RB001"]

    def test_read_mode_open_is_clean(self, tmp_path):
        path = write(tmp_path / "runtime" / "state.py", """\
            def load(path):
                with open(path, "rb") as handle:
                    return handle.read()
        """)
        assert lint_file(path, [RobustIORule()]) == []

    def test_fires_on_path_write_helpers(self, tmp_path):
        path = write(tmp_path / "runtime" / "state.py", """\
            def save(path, text, blob):
                path.write_text(text)
                path.write_bytes(blob)
        """)
        assert codes(lint_file(path, [RobustIORule()])) == ["RB001", "RB001"]

    def test_atomic_writer_body_is_exempt(self, tmp_path):
        path = write(tmp_path / "runtime" / "checkpoint.py", """\
            def atomic_write_bytes(path, data):
                tmp = path.with_name(path.name + ".tmp")
                with open(tmp, "wb") as handle:
                    handle.write(data)
        """)
        assert lint_file(path, [RobustIORule()]) == []

    def test_suppression_comment_is_honoured(self, tmp_path):
        path = write(tmp_path / "runtime" / "log.py", """\
            def log(path, line):
                with open(path, "a") as handle:  # repro-lint: disable=RB001
                    handle.write(line)
        """)
        assert lint_file(path, [RobustIORule()]) == []


class TestParallelReceives:
    def test_fires_on_deadline_less_recv(self, tmp_path):
        path = write(tmp_path / "parallel" / "pool.py", """\
            def collect(conn):
                return conn.recv()
        """)
        found = lint_file(path, [RobustIORule()])
        assert codes(found) == ["RB001"]
        assert "poll" in found[0].message

    def test_recv_after_poll_is_clean(self, tmp_path):
        path = write(tmp_path / "parallel" / "pool.py", """\
            def collect(conn, timeout):
                if conn.poll(timeout):
                    return conn.recv()
                return None
        """)
        assert lint_file(path, [RobustIORule()]) == []

    def test_each_deadline_less_recv_reported_once(self, tmp_path):
        path = write(tmp_path / "parallel" / "worker.py", """\
            def drain(a, b):
                first = a.recv()
                second = b.recv()
                return first, second
        """)
        assert codes(lint_file(path, [RobustIORule()])) == ["RB001", "RB001"]

    def test_suppression_comment_is_honoured(self, tmp_path):
        path = write(tmp_path / "parallel" / "worker.py", """\
            def serve(conn):
                return conn.recv()  # repro-lint: disable=RB001
        """)
        assert lint_file(path, [RobustIORule()]) == []


class TestLivePackagesAreClean:
    def test_shipping_runtime_and_parallel_modules_pass(self):
        import pathlib

        import repro.parallel
        import repro.runtime

        rule = RobustIORule()
        for package in (repro.runtime, repro.parallel):
            package_dir = pathlib.Path(package.__file__).parent
            for module in sorted(package_dir.glob("*.py")):
                assert lint_file(module, [rule]) == [], module.name
