"""ProjectIndex construction, call-graph resolution, and the incremental cache."""

import json
import textwrap
import time
from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.cache import (LintCache, file_digest, project_fingerprint,
                                  rules_fingerprint)
from repro.analysis.index import ProjectIndex, module_name_for, parse_sources
from repro.analysis.linter import LintStats, ModuleSource
from repro.analysis.rules import default_rules, rules_by_code

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src" / "repro"


def write(path, source):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestModuleNaming:
    def test_anchored_at_repro(self):
        assert module_name_for(Path("src/repro/nn/conv.py")) == "repro.nn.conv"

    def test_package_init_names_the_package(self):
        assert module_name_for(Path("src/repro/nn/__init__.py")) == "repro.nn"

    def test_tests_tree(self):
        assert module_name_for(Path("tests/analysis/test_x.py")) == \
            "tests.analysis.test_x"


class TestImportResolution:
    def test_aliased_and_from_imports(self, tmp_path):
        path = write(tmp_path / "repro" / "mod.py", """\
            import numpy as np
            from numpy.random import default_rng
            from repro.tensor import engine
        """)
        index = ProjectIndex.build([ModuleSource.parse(path)])
        module = index.modules["repro.mod"]
        import ast
        assert module.resolve(ast.parse("np.random.rand", mode="eval").body) \
            == "numpy.random.rand"
        assert module.resolve(ast.parse("default_rng", mode="eval").body) \
            == "numpy.random.default_rng"
        assert module.resolve(ast.parse("engine.apply", mode="eval").body) \
            == "repro.tensor.engine.apply"

    def test_relative_import(self, tmp_path):
        path = write(tmp_path / "repro" / "pkg" / "mod.py", """\
            from .sibling import helper
        """)
        index = ProjectIndex.build([ModuleSource.parse(path)])
        module = index.modules["repro.pkg.mod"]
        assert module.imports["helper"] == "repro.pkg.sibling.helper"


class TestCallGraph:
    def test_self_method_and_reachability(self, tmp_path):
        path = write(tmp_path / "repro" / "mod.py", """\
            class Runner:
                def entry(self):
                    return self.inner()

                def inner(self):
                    return leaf()

            def leaf():
                return 1

            def unrelated():
                return 2
        """)
        index = ProjectIndex.build([ModuleSource.parse(path)])
        reachable = index.reachable_from({"repro.mod.Runner.entry"})
        assert "repro.mod.Runner.inner" in reachable
        assert "repro.mod.leaf" in reachable
        assert "repro.mod.unrelated" not in reachable

    def test_attr_type_through_conditional(self, tmp_path):
        path = write(tmp_path / "repro" / "mod.py", """\
            class Wrapped:
                def __call__(self):
                    return target()

            def target():
                return 1

            class Holder:
                def __init__(self, flag):
                    self.fn = Wrapped() if flag else target

                def run(self):
                    return self.fn()
        """)
        index = ProjectIndex.build([ModuleSource.parse(path)])
        reachable = index.reachable_from({"repro.mod.Holder.run"})
        assert "repro.mod.Wrapped.__call__" in reachable
        assert "repro.mod.target" in reachable

    def test_worker_capture_chain_in_real_tree(self):
        """The chain MP002 depends on: worker_main -> ... -> tape.capture."""
        sources = parse_sources(sorted(SRC_ROOT.rglob("*.py")))
        index = ProjectIndex.build(sources)
        reachable = index.reachable_from({"repro.parallel.worker.worker_main"})
        assert "repro.tensor.tape.TapedFunction.__call__" in reachable
        assert "repro.tensor.tape.capture" in reachable


class TestParallelParse:
    def test_jobs_two_matches_serial_order(self):
        files = sorted(SRC_ROOT.rglob("*.py"))[:20]
        serial = parse_sources(files, jobs=1)
        parallel = parse_sources(files, jobs=2)
        assert [s.path for s in serial] == [s.path for s in parallel]
        assert [s.text for s in serial] == [s.text for s in parallel]

    def test_run_lint_jobs_two_matches_serial(self, tmp_path):
        for i in range(14):  # above the parallel-parse threshold
            write(tmp_path / f"m{i:02d}.py", f"""\
                import numpy as np
                x{i} = np.random.default_rng()
            """)
        serial = run_lint([tmp_path], rules_by_code(["DET001"]), jobs=1)
        parallel = run_lint([tmp_path], rules_by_code(["DET001"]), jobs=2)
        assert [(v.path, v.line, v.code) for v in serial] == \
            [(v.path, v.line, v.code) for v in parallel]
        assert len(serial) == 14


class TestCache:
    def _violating(self, tmp_path, name="mod.py"):
        return write(tmp_path / name, """\
            import numpy as np
            rng = np.random.default_rng()
        """)

    def test_warm_run_hits_and_agrees(self, tmp_path):
        path = self._violating(tmp_path)
        cache_path = tmp_path / "cache.json"
        rules = default_rules
        cold = run_lint([path], rules(), cache=LintCache(cache_path))
        warm_cache = LintCache(cache_path)
        warm = run_lint([path], rules(), cache=warm_cache)
        assert [(v.line, v.code) for v in cold] == \
            [(v.line, v.code) for v in warm]
        assert warm_cache.hits > 0
        assert warm_cache.misses == 0

    def test_edit_invalidates_only_that_file(self, tmp_path):
        a = self._violating(tmp_path, "a.py")
        b = write(tmp_path / "b.py", "x = 1\n")
        cache_path = tmp_path / "cache.json"
        run_lint([tmp_path], rules_by_code(["DET001"]),
                 cache=LintCache(cache_path))
        b.write_text("y = 2\n")
        warm = LintCache(cache_path)
        run_lint([tmp_path], rules_by_code(["DET001"]), cache=warm)
        assert warm.hits == 1   # a.py unchanged
        assert warm.misses >= 1  # b.py re-linted

    def test_project_results_invalidate_on_any_edit(self, tmp_path):
        path = write(tmp_path / "w.py", """\
            _STATE = {}

            def worker_main(conn):
                _STATE["k"] = conn.recv()
        """)
        other = write(tmp_path / "other.py", "x = 1\n")
        cache_path = tmp_path / "cache.json"
        rules = lambda: rules_by_code(["MP002"])
        first = run_lint([tmp_path], rules(), cache=LintCache(cache_path))
        assert [v.code for v in first] == ["MP002"]
        # Editing *any* file must re-run whole-program rules: introduce a
        # new worker-reachable mutation from the other module.
        other.write_text(textwrap.dedent("""\
            from repro.w import _STATE  # noqa: F401 (fixture)

            def helper():
                _STATE.clear()
        """))
        path.write_text(path.read_text().replace(
            "_STATE[\"k\"] = conn.recv()",
            "_STATE[\"k\"] = conn.recv()\n    helper()"))
        second = run_lint([tmp_path], rules(), cache=LintCache(cache_path))
        assert len(second) >= 1

    def test_rule_edit_invalidates_via_fingerprint(self):
        base = rules_fingerprint(rules_by_code(["DET001"]))
        more = rules_fingerprint(rules_by_code(["DET001", "MP002"]))
        assert base != more

    def test_corrupt_cache_starts_cold(self, tmp_path):
        path = self._violating(tmp_path)
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        violations = run_lint([path], rules_by_code(["DET001"]),
                              cache=LintCache(cache_path))
        assert [v.code for v in violations] == ["DET001"]
        json.loads(cache_path.read_text())  # rewritten valid

    def test_fingerprints_are_content_keyed(self, tmp_path):
        assert file_digest(b"abc") != file_digest(b"abd")
        assert project_fingerprint({"a": "1"}) != \
            project_fingerprint({"a": "2"})


class TestWarmSpeedup:
    def test_warm_cache_is_at_least_5x_faster_on_src(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        stats_cold = LintStats()
        run_lint([SRC_ROOT], default_rules(), cache=LintCache(cache_path),
                 stats=stats_cold)
        stats_warm = LintStats()
        run_lint([SRC_ROOT], default_rules(), cache=LintCache(cache_path),
                 stats=stats_warm)
        assert stats_warm.cache_hit_rate == 1.0
        assert stats_cold.elapsed_seconds >= 5 * stats_warm.elapsed_seconds, (
            f"cold {stats_cold.elapsed_seconds:.3f}s vs "
            f"warm {stats_warm.elapsed_seconds:.3f}s")
