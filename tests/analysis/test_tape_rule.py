"""TAPE001 — apply_ctx-bypass rule tests.

The rule flags bare ``_REGISTRY`` subscripts and direct ``.forward`` /
``.backward`` calls on registry lookups anywhere except the engine and the
tape replayer themselves (the two files that *are* the choke point).
"""

import textwrap

from repro.analysis import lint_file
from repro.analysis.rules import TapeBypassRule


def write(path, source):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes(violations):
    return [v.code for v in violations]


class TestRegistrySubscript:
    def test_fires_on_bare_name_subscript(self, tmp_path):
        path = write(tmp_path / "mod.py", """\
            def dispatch(name, x):
                op = _REGISTRY[name]
                return op
        """)
        found = lint_file(path, [TapeBypassRule()])
        assert codes(found) == ["TAPE001"]
        assert found[0].line == 2
        assert "get_op" in found[0].message

    def test_fires_on_attribute_subscript(self, tmp_path):
        path = write(tmp_path / "mod.py", """\
            from repro.tensor import engine

            def dispatch(name):
                return engine._REGISTRY[name]
        """)
        assert codes(lint_file(path, [TapeBypassRule()])) == ["TAPE001"]


class TestDirectForward:
    def test_fires_on_get_op_forward(self, tmp_path):
        path = write(tmp_path / "mod.py", """\
            from repro.tensor.engine import Context, get_op

            def sneaky(name, x):
                ctx = Context()
                return get_op(name).forward(ctx, x)
        """)
        found = lint_file(path, [TapeBypassRule()])
        assert codes(found) == ["TAPE001"]
        assert "tape" in found[0].message

    def test_fires_on_engine_get_op_forward(self, tmp_path):
        path = write(tmp_path / "mod.py", """\
            from repro.tensor import engine

            def sneaky(name, ctx, x):
                return engine.get_op(name).forward(ctx, x)
        """)
        assert codes(lint_file(path, [TapeBypassRule()])) == ["TAPE001"]

    def test_fires_on_registry_subscript_backward(self, tmp_path):
        path = write(tmp_path / "mod.py", """\
            def sneaky(name, ctx, grad):
                return _REGISTRY[name].backward(ctx, grad)
        """)
        # both the subscript and the direct backward call are reported
        assert codes(lint_file(path, [TapeBypassRule()])) == ["TAPE001", "TAPE001"]

    def test_quiet_on_module_forward(self, tmp_path):
        # Module.forward / self.forward are the nn API, not dispatch bypass
        path = write(tmp_path / "mod.py", """\
            class Layer:
                def __call__(self, x):
                    return self.forward(x)

            def run(layer, x):
                return layer.forward(x)
        """)
        assert lint_file(path, [TapeBypassRule()]) == []


class TestScoping:
    def test_engine_and_tape_modules_are_exempt(self, tmp_path):
        source = """\
            def dispatch(name, ctx, x):
                return _REGISTRY[name].forward(ctx, x)
        """
        for name in ("engine.py", "tape.py"):
            path = write(tmp_path / "tensor" / name, source)
            assert lint_file(path, [TapeBypassRule()]) == []
        # same code outside tensor/ is not exempt
        path = write(tmp_path / "nn" / "engine.py", source)
        assert codes(lint_file(path, [TapeBypassRule()])) == ["TAPE001", "TAPE001"]

    def test_suppression_comment(self, tmp_path):
        path = write(tmp_path / "mod.py", """\
            def dispatch(name):
                return _REGISTRY[name]  # repro-lint: disable=TAPE001
        """)
        assert lint_file(path, [TapeBypassRule()]) == []
