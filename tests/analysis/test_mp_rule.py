"""MP001 — shard-reduction bypass rule tests.

The rule scopes itself to the ``parallel`` package (minus ``reduce.py``,
which *is* the sanctioned reduction helper) and flags ad-hoc summation:
``sum``/``np.sum``/``np.add``/``.sum()`` calls, ``+=`` on gradient-named
targets, and ``+`` over gradient-named operands — any of which would break
the fixed-order tree reduction that bit-for-bit parity rests on.
"""

import textwrap

from repro.analysis import lint_file
from repro.analysis.rules import ShardReductionRule


def write(path, source):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def codes(violations):
    return [v.code for v in violations]


class TestScope:
    def test_ignores_files_outside_the_parallel_package(self, tmp_path):
        path = write(tmp_path / "optim" / "sgd.py", """\
            def total(grads):
                return sum(grads)
        """)
        assert lint_file(path, [ShardReductionRule()]) == []

    def test_reduce_module_itself_is_exempt(self, tmp_path):
        path = write(tmp_path / "parallel" / "reduce.py", """\
            import numpy as np

            def tree_reduce(values):
                return np.add(values[0], values[1])
        """)
        assert lint_file(path, [ShardReductionRule()]) == []


class TestReductionCalls:
    def test_fires_on_builtin_sum(self, tmp_path):
        path = write(tmp_path / "parallel" / "pool.py", """\
            def collect(shard_grads):
                return sum(shard_grads)
        """)
        found = lint_file(path, [ShardReductionRule()])
        assert codes(found) == ["MP001"]
        assert "tree_reduce" in found[0].message

    def test_fires_on_np_sum_and_np_add(self, tmp_path):
        path = write(tmp_path / "parallel" / "step.py", """\
            import numpy as np

            def collect(stack, a, b):
                first = np.sum(stack, axis=0)
                return np.add(first, b)
        """)
        assert codes(lint_file(path, [ShardReductionRule()])) == ["MP001", "MP001"]

    def test_fires_on_sum_method(self, tmp_path):
        path = write(tmp_path / "parallel" / "worker.py", """\
            def collect(stacked):
                return stacked.sum(axis=0)
        """)
        assert codes(lint_file(path, [ShardReductionRule()])) == ["MP001"]


class TestGradientAdditions:
    def test_fires_on_grad_augassign(self, tmp_path):
        path = write(tmp_path / "parallel" / "step.py", """\
            def merge(param, shard_grad):
                param.grad += shard_grad
        """)
        found = lint_file(path, [ShardReductionRule()])
        assert codes(found) == ["MP001"]
        assert "param.grad" in found[0].message

    def test_fires_on_grad_binop(self, tmp_path):
        path = write(tmp_path / "parallel" / "step.py", """\
            def merge(total_grad, shard_grad):
                return total_grad + shard_grad
        """)
        assert codes(lint_file(path, [ShardReductionRule()])) == ["MP001"]

    def test_ignores_non_gradient_arithmetic(self, tmp_path):
        path = write(tmp_path / "parallel" / "pool.py", """\
            def deadline(now, timeout, losses):
                both = losses[0] * 0.5
                return now + timeout, both
        """)
        assert lint_file(path, [ShardReductionRule()]) == []

    def test_suppression_comment_is_honoured(self, tmp_path):
        path = write(tmp_path / "parallel" / "step.py", """\
            def merge(param, shard_grad):
                param.grad += shard_grad  # repro-lint: disable=MP001
        """)
        assert lint_file(path, [ShardReductionRule()]) == []


class TestLiveParallelPackageIsClean:
    def test_shipping_parallel_modules_pass(self):
        import pathlib

        import repro.parallel

        package_dir = pathlib.Path(repro.parallel.__file__).parent
        rule = ShardReductionRule()
        for module in sorted(package_dir.glob("*.py")):
            assert lint_file(module, [rule]) == [], module.name
