"""SER001 — state_dict serializability rule, positive and negative cases."""

import textwrap

from repro.analysis import lint_file
from repro.analysis.rules import StateDictSerializableRule


def write(path, source):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def lint(tmp_path, source):
    path = write(tmp_path / "mod.py", source)
    return lint_file(path, [StateDictSerializableRule()])


def codes(violations):
    return [v.code for v in violations]


class TestSER001Fires:
    def test_lambda_value(self, tmp_path):
        found = lint(tmp_path, """\
            class M:
                def state_dict(self):
                    return {"factory": lambda: 1}
        """)
        assert codes(found) == ["SER001"]
        assert "lambda" in found[0].message

    def test_set_literal_value(self, tmp_path):
        found = lint(tmp_path, """\
            class M:
                def state_dict(self):
                    return {"ids": {1, 2, 3}}
        """)
        assert codes(found) == ["SER001"]
        assert "set" in found[0].message

    def test_generator_expression_value(self, tmp_path):
        found = lint(tmp_path, """\
            class M:
                def state_dict(self):
                    state = {}
                    state["rows"] = (r for r in self.rows)
                    return state
        """)
        assert codes(found) == ["SER001"]

    def test_bytes_value(self, tmp_path):
        found = lint(tmp_path, """\
            class M:
                def state_dict(self):
                    return {"blob": b"raw"}
        """)
        assert codes(found) == ["SER001"]

    def test_id_call_value(self, tmp_path):
        found = lint(tmp_path, """\
            class M:
                def state_dict(self):
                    return {"param_key": id(self.param)}
        """)
        assert codes(found) == ["SER001"]
        assert "process-local" in found[0].message

    def test_bare_rng_reference(self, tmp_path):
        found = lint(tmp_path, """\
            class M:
                def state_dict(self):
                    return {"rng": self.rng}
        """)
        assert codes(found) == ["SER001"]
        assert "get_rng_state" in found[0].message

    def test_rng_via_update_call(self, tmp_path):
        found = lint(tmp_path, """\
            class M:
                def state_dict(self):
                    state = {}
                    state.update({"gen": rng})
                    return state
        """)
        assert codes(found) == ["SER001"]


class TestSER001StaysQuiet:
    def test_plain_arrays_and_scalars(self, tmp_path):
        assert lint(tmp_path, """\
            class M:
                def state_dict(self):
                    return {
                        "weights": self.weights.copy(),
                        "step": int(self.step),
                        "name": "sgd",
                        "maybe": None,
                        "rows": [r.state_dict() for r in self.records],
                    }
        """) == []

    def test_rng_captured_through_helper(self, tmp_path):
        assert lint(tmp_path, """\
            from repro.utils import get_rng_state

            class M:
                def state_dict(self):
                    return {"rng": get_rng_state(self.rng)}
        """) == []

    def test_super_state_dict_spread(self, tmp_path):
        assert lint(tmp_path, """\
            class M(Base):
                def state_dict(self):
                    state = super().state_dict()
                    state["extra"] = self.extra.copy()
                    return state
        """) == []

    def test_other_function_names_ignored(self, tmp_path):
        assert lint(tmp_path, """\
            class M:
                def snapshot(self):
                    return {"factory": lambda: 1, "rng": self.rng}
        """) == []

    def test_plain_return_expression_not_recursed(self, tmp_path):
        # `return super().state_dict()` must not be treated as a value.
        assert lint(tmp_path, """\
            class M(Base):
                def state_dict(self):
                    return super().state_dict()
        """) == []
