"""Output formats (json/SARIF) and the baseline ratchet."""

import json
import textwrap
from pathlib import Path

from repro.analysis.linter import Violation
from repro.analysis.output import Baseline, to_json, to_sarif
from repro.analysis.rules import default_rules


def v(path="src/mod.py", line=3, code="DET001", message="seedless rng"):
    return Violation(path=Path(path), line=line, code=code, message=message)


class TestSarif:
    def test_document_shape_is_sarif_2_1_0(self):
        doc = to_sarif([v()], default_rules())
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        codes = [r["id"] for r in driver["rules"]]
        assert codes == sorted(codes)
        assert {"DET002", "TAPE002", "MP002", "SER002"} <= set(codes)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] == "error"

    def test_result_location_and_rule_index(self):
        doc = to_sarif([v(line=7)], default_rules())
        result = doc["runs"][0]["results"][0]
        assert result["ruleId"] == "DET001"
        assert result["level"] == "error"
        assert result["message"]["text"] == "seedless rng"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/mod.py"
        assert location["region"]["startLine"] == 7
        driver_rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert driver_rules[result["ruleIndex"]]["id"] == "DET001"

    def test_serializes(self):
        json.dumps(to_sarif([v()], default_rules()))


class TestJson:
    def test_shape(self):
        doc = to_json([v()], {"files": 1})
        assert doc["count"] == 1
        assert doc["violations"][0]["code"] == "DET001"
        assert doc["stats"] == {"files": 1}
        assert "stats" not in to_json([])


class TestBaseline:
    def test_fingerprint_is_line_independent(self, tmp_path):
        baseline = Baseline(tmp_path / "b.json")
        assert baseline.fingerprint(v(line=3)) == baseline.fingerprint(v(line=99))
        assert baseline.fingerprint(v()) != baseline.fingerprint(v(code="AD001"))
        assert baseline.fingerprint(v()) != baseline.fingerprint(v(message="x"))

    def test_paths_relative_to_baseline_dir(self, tmp_path):
        baseline = Baseline(tmp_path / "b.json")
        key = baseline.fingerprint(v(path=tmp_path / "pkg" / "mod.py"))
        assert key.startswith("pkg/mod.py:")

    def test_roundtrip_and_ratchet(self, tmp_path):
        path = tmp_path / "b.json"
        baseline = Baseline(path)
        baseline.update([v(), v(line=9)])  # two occurrences of one print
        baseline.write()

        loaded = Baseline.load(path)
        # Same two occurrences (lines moved): accepted.
        new, fixed = loaded.partition([v(line=5), v(line=50)])
        assert new == [] and fixed == []
        # A third occurrence breaks the ratchet.
        new, _ = loaded.partition([v(line=1), v(line=2), v(line=3)])
        assert len(new) == 1
        # A different violation is always new.
        new, _ = loaded.partition([v(), v(line=9), v(code="AD001")])
        assert [x.code for x in new] == ["AD001"]

    def test_fixed_entries_reported_and_dropped_on_update(self, tmp_path):
        path = tmp_path / "b.json"
        baseline = Baseline(path)
        baseline.update([v(), v(code="AD001")])
        baseline.write()
        loaded = Baseline.load(path)
        new, fixed = loaded.partition([v()])
        assert new == [] and len(fixed) == 1
        loaded.update([v()])
        loaded.write()
        assert len(Baseline.load(path).entries) == 1

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        new, fixed = baseline.partition([v()])
        assert len(new) == 1 and fixed == []


class TestCliFormats:
    def _violating_tree(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent("""\
            import numpy as np
            rng = np.random.default_rng()
        """))
        return mod

    def _main(self, argv):
        from repro.analysis import main
        return main(argv + ["--no-coverage", "--no-cache"])

    def test_json_format(self, tmp_path, capsys):
        mod = self._violating_tree(tmp_path)
        status = self._main([str(mod), "--format", "json", "--stats"])
        doc = json.loads(capsys.readouterr().out)
        assert status == 1
        assert doc["count"] == 1
        assert doc["stats"]["per_rule"]["DET001"] == 1

    def test_sarif_format(self, tmp_path, capsys):
        mod = self._violating_tree(tmp_path)
        status = self._main([str(mod), "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert status == 1
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "DET001"

    def test_update_baseline_then_ratchet(self, tmp_path, capsys, monkeypatch):
        mod = self._violating_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        status = self._main([str(mod), "--baseline", str(baseline),
                             "--update-baseline"])
        assert status == 0
        assert baseline.is_file()
        capsys.readouterr()

        # Baselined: clean exit, message mentions the accepted count.
        status = self._main([str(mod), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert status == 0
        assert "1 baselined" in out

        # A new violation beyond the baseline fails.
        mod.write_text(mod.read_text() + "extra = np.random.default_rng()\n")
        status = self._main([str(mod), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert status == 1
        assert "DET001" in out

    def test_fixed_baseline_entry_reported(self, tmp_path, capsys):
        mod = self._violating_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        self._main([str(mod), "--baseline", str(baseline),
                    "--update-baseline"])
        mod.write_text("x = 1\n")
        capsys.readouterr()
        status = self._main([str(mod), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert status == 0
        assert "no longer occurs" in out
